//! Live executor: runs a workflow on real OS threads.
//!
//! Where [`crate::exec_sim`] models time, this executor spends it. It
//! exists for two reasons:
//!
//! 1. **Correctness cross-check** — both executors must produce identical
//!    data outputs for any workflow (the integration suite asserts this).
//! 2. **Engine-overhead benchmarking** — Criterion benches drive it to
//!    measure the real cost of the pipelined architecture on the host.
//!
//! Two execution modes are available (see [`ExecMode`]):
//!
//! * **Pooled** (default): a fixed-size worker pool schedules
//!   operator-worker *tasks* from a run queue, in the style of Databend's
//!   `PipelineExecutor`. Edges are bounded mailboxes with backpressure,
//!   and payloads travel as [`SharedBatch`]es — `Arc`-shared immutable
//!   tuple batches, so broadcast and multi-consumer edges share one
//!   allocation instead of deep-cloning every tuple per worker.
//!   Partitioners are compiled once per edge at DAG-build time
//!   ([`crate::dag::Workflow::partitioner`]), and routing *moves* tuples
//!   into reusable per-worker scatter buffers — the hot path performs no
//!   per-tuple name lookups and no per-tuple allocation.
//! * **ThreadPerWorker**: the original executor — one OS thread per
//!   operator worker, unbounded channels, per-tuple deep-clone routing.
//!   Retained as the benchmark baseline the pooled executor is measured
//!   against.
//!
//! # Scheduling and deadlock freedom (pooled mode)
//!
//! Pool threads never block on a data channel. A producer whose
//! destination mailbox is full parks the message in its own outbox,
//! registers itself as a waiter on that mailbox, and yields its pool
//! thread; the consumer wakes all registered waiters whenever it frees
//! mailbox space. Messages gated behind a blocking port (e.g. probe-side
//! input while a hash join's build port is still open) are moved to an
//! unbounded hold buffer so mailboxes always drain. With an acyclic DAG,
//! sinks that always accept input, and consumers that always drain, every
//! blocked producer is eventually woken — bounded channels cannot wedge
//! the pool, which the diamond-DAG regression test exercises.
//!
//! # Observability (pooled mode)
//!
//! Pooled runs feed a [`LiveTracer`] from per-task hooks: operator
//! lifecycle transitions, input/output tuple counters, per-worker busy
//! time, mailbox depth, and backpressure stalls — all relaxed atomics,
//! so tracing never takes a lock on the hot path. With
//! [`LiveExecutor::with_trace`] a sampler thread turns those counters
//! into the same [`ProgressTrace`]/[`crate::trace::OperatorSnapshot`]
//! shape the simulated executor emits, so [`crate::gui`] and
//! [`crate::trace::render_timeline`] replay live and simulated runs
//! identically (the paper's Fig. 9 display, on real threads). Even
//! without an interval, every pooled run ends with one terminal sample,
//! and [`LiveExecutor::run_observed`] hands the trace back on failures
//! too.
//!
//! # Failure semantics (pooled mode)
//!
//! Any operator failure — an organic error, an injected
//! [`crate::fault::FaultPlan`] fault, or a captured worker panic — puts
//! the owning task into **drain mode** instead of aborting the pool: the
//! task discards its remaining input, propagates EOS downstream exactly
//! once (marking direct consumers [`OperatorState::Degraded`] — their
//! input is truncated), keeps its mailbox draining so upstream never
//! blocks, and finishes once every input port has closed. The rest of
//! the pipeline runs to completion on whatever data made it through, the
//! run returns `Err` carrying the first failure, every pool thread
//! joins, and the partial trace survives. A worker panic is caught in
//! the pool thread's loop and surfaces as a `Failed` operator in the
//! same way. If a fault starves the pipeline of EOS entirely (a dropped
//! end-of-stream), the last idle pool thread detects quiescence and
//! synthesizes the missing markers so the run still terminates.
//!
//! With a [`crate::retry::RetryPolicy`] ([`LiveExecutor::with_retry`]),
//! a faulted quantum is first charged against the operator's retry
//! budget: the pool sleeps the backoff and replays the quantum's held
//! input batch — exactly once per tuple — surfacing
//! [`OperatorState::Retrying`] in the trace. Only an exhausted budget
//! falls through to the drain path above.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use scriptflow_datakit::{ColumnarBatch, SharedBatch, Tuple};
use scriptflow_simcluster::{Language, SimDuration, SimTime};

use crate::dag::{OpId, Workflow};
use crate::fault::{CompiledFaults, FaultPlan, TupleAction, TupleTrigger};
use crate::metrics::{OperatorMetrics, OperatorState, RunMetrics};
use crate::operator::{Operator, OutputCollector, WorkflowError, WorkflowResult};
use crate::partition::CompiledPartitioner;
use crate::retry::{RetryConfig, RetryPolicy};
use crate::trace::{OperatorSnapshot, ProgressTrace};
use crate::trace_live::LiveTracer;

/// Which concurrency model [`LiveExecutor::run`] uses.
///
/// # Examples
///
/// ```
/// use scriptflow_workflow::{ExecMode, LiveExecutor};
///
/// // The default executor is pooled; the baseline is opt-in.
/// let baseline = LiveExecutor::new(64).with_mode(ExecMode::ThreadPerWorker);
/// # let _ = baseline;
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// One OS thread per operator worker, unbounded channels, deep-clone
    /// routing — the original executor, kept as the bench baseline.
    ThreadPerWorker,
    /// Fixed-size pool scheduling operator-worker tasks from a run queue,
    /// bounded mailboxes with backpressure, `Arc`-shared batch routing.
    Pooled,
}

/// Counters from a pooled run (absent in thread-per-worker mode).
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use scriptflow_datakit::{Batch, DataType, Schema, Value};
/// use scriptflow_workflow::ops::{ScanOp, SinkOp};
/// use scriptflow_workflow::{LiveExecutor, PartitionStrategy, WorkflowBuilder};
///
/// let schema = Schema::of(&[("id", DataType::Int)]);
/// let batch = Batch::from_rows(schema, (0..10).map(|i| vec![Value::Int(i)]).collect()).unwrap();
/// let mut b = WorkflowBuilder::new();
/// let scan = b.add(Arc::new(ScanOp::new("scan", batch)), 1);
/// let sink = b.add(Arc::new(SinkOp::new("sink")), 1);
/// b.connect(scan, sink, 0, PartitionStrategy::Single);
/// let wf = b.build().unwrap();
///
/// let res = LiveExecutor::new(4).with_pool_size(2).run(&wf).unwrap();
/// let stats = res.pool.expect("pooled mode reports stats");
/// assert_eq!(stats.pool_threads, 2);
/// assert_eq!(stats.tasks, wf.total_workers());
/// assert!(stats.batches_sent > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// OS threads in the pool.
    pub pool_threads: usize,
    /// Operator-worker tasks scheduled over the pool.
    pub tasks: usize,
    /// Total task run quanta executed.
    pub task_runs: u64,
    /// Times a producer found a destination mailbox full and yielded.
    pub backpressure_stalls: u64,
    /// Batches successfully delivered into mailboxes.
    pub batches_sent: u64,
    /// High-water mark of messages queued at any single operator's
    /// worker mailboxes.
    pub peak_mailbox_depth: usize,
    /// Injected faults that actually fired ([`crate::fault::FaultPlan`]
    /// triggers; 0 without a plan).
    pub faults_injected: u64,
    /// Times the pool's quiescence detector had to recover a stalled
    /// pipeline by synthesizing missing EOS markers (dropped-EOS faults).
    pub stall_recoveries: u64,
    /// Faulted run quanta replayed under a [`crate::retry::RetryPolicy`]
    /// budget (0 without a policy).
    pub retries_attempted: u64,
    /// Tasks that replayed at least one faulted quantum and still
    /// finished cleanly (their operators end `Completed`, not `Failed`).
    pub retries_succeeded: u64,
    /// Whole input batches dropped by zone-map checks across all
    /// operators (0 unless [`LiveExecutor::with_columnar`] is enabled
    /// and a batch's statistics proved no row could pass).
    pub batches_skipped: u64,
    /// Compressed blocks written to the spill store across all operators
    /// (0 unless a memory budget forced a blocking operator to spill).
    pub spilled_blocks: u64,
    /// Compressed bytes across all spilled blocks.
    pub spilled_bytes: u64,
    /// Spilled blocks read back (partition joins, run merges).
    pub spill_reads: u64,
    /// Operators served from the result cache — each served operator
    /// counts once (0 unless [`LiveExecutor::with_result_cache`]).
    pub cache_hits: u64,
    /// Operators that ran under a result cache, missed, and recorded
    /// their output for publication.
    pub cache_misses: u64,
    /// Compressed bytes decoded from the cache across all served
    /// operators.
    pub cache_bytes: u64,
    /// Cache entries evicted when this run's recordings were committed
    /// (0 unless the cache has a byte budget and this run's publications
    /// displaced earlier entries).
    pub cache_evictions: u64,
}

/// Result of a live run.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use scriptflow_datakit::{Batch, DataType, Schema, Value};
/// use scriptflow_workflow::ops::{ScanOp, SinkOp};
/// use scriptflow_workflow::{LiveExecutor, PartitionStrategy, WorkflowBuilder};
///
/// let schema = Schema::of(&[("id", DataType::Int)]);
/// let batch = Batch::from_rows(schema, (0..8).map(|i| vec![Value::Int(i)]).collect()).unwrap();
/// let mut b = WorkflowBuilder::new();
/// let scan = b.add(Arc::new(ScanOp::new("scan", batch)), 1);
/// let sink = b.add(Arc::new(SinkOp::new("sink")), 1);
/// b.connect(scan, sink, 0, PartitionStrategy::Single);
/// let wf = b.build().unwrap();
///
/// let res = LiveExecutor::new(4).run(&wf).unwrap();
/// assert_eq!(res.metrics.by_name("sink").unwrap().input_tuples, 8);
/// assert!(!res.trace.is_empty(), "pooled runs always carry a final sample");
/// ```
#[derive(Debug, Clone)]
pub struct LiveRunResult {
    /// Wall-clock execution time.
    pub elapsed: Duration,
    /// Instrumentation counters (`makespan` mirrors `elapsed`).
    pub metrics: RunMetrics,
    /// Pool scheduling counters; `None` in thread-per-worker mode.
    pub pool: Option<PoolStats>,
    /// Per-operator progress samples (pooled mode). Always holds at
    /// least the terminal sample; interval samples require
    /// [`LiveExecutor::with_trace`]. Empty in thread-per-worker mode.
    pub trace: ProgressTrace,
    /// Compressed bytes this run added to the result cache (0 without
    /// [`LiveExecutor::with_result_cache`], and 0 for runs that faulted
    /// or retried — only clean runs publish their recordings).
    pub cache_published: u64,
}

/// The real-thread workflow executor.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use scriptflow_datakit::{Batch, DataType, Schema, Value};
/// use scriptflow_workflow::ops::{ScanOp, SinkOp};
/// use scriptflow_workflow::{LiveExecutor, PartitionStrategy, WorkflowBuilder};
///
/// let schema = Schema::of(&[("id", DataType::Int)]);
/// let batch = Batch::from_rows(schema, (0..5).map(|i| vec![Value::Int(i)]).collect()).unwrap();
/// let mut b = WorkflowBuilder::new();
/// let scan = b.add(Arc::new(ScanOp::new("scan", batch)), 1);
/// let sink = b.add(Arc::new(SinkOp::new("sink")), 1);
/// b.connect(scan, sink, 0, PartitionStrategy::Single);
/// let wf = b.build().unwrap();
///
/// let res = LiveExecutor::default().run(&wf).unwrap();
/// assert_eq!(res.metrics.by_name("scan").unwrap().output_tuples, 5);
/// ```
pub struct LiveExecutor {
    batch_size: usize,
    mode: ExecMode,
    pool_size: Option<usize>,
    channel_capacity: usize,
    trace_interval: Option<Duration>,
    faults: Option<FaultPlan>,
    retry: RetryConfig,
    columnar: bool,
    memory_budget: Option<usize>,
    result_cache: Option<Arc<crate::cache::ResultCache>>,
}

impl Default for LiveExecutor {
    fn default() -> Self {
        LiveExecutor::new(256)
    }
}

impl LiveExecutor {
    /// Pooled executor with the given edge batch size.
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::LiveExecutor;
    /// let exec = LiveExecutor::new(128);
    /// # let _ = exec;
    /// ```
    pub fn new(batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        LiveExecutor {
            batch_size,
            mode: ExecMode::Pooled,
            pool_size: None,
            channel_capacity: 64,
            trace_interval: None,
            faults: None,
            retry: RetryConfig::default(),
            columnar: false,
            memory_budget: None,
            result_cache: None,
        }
    }

    /// The original thread-per-worker executor (benchmark baseline).
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::LiveExecutor;
    /// let baseline = LiveExecutor::thread_per_worker(128);
    /// # let _ = baseline;
    /// ```
    pub fn thread_per_worker(batch_size: usize) -> Self {
        LiveExecutor::new(batch_size).with_mode(ExecMode::ThreadPerWorker)
    }

    /// Select the concurrency model.
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::{ExecMode, LiveExecutor};
    /// let exec = LiveExecutor::new(64).with_mode(ExecMode::Pooled);
    /// # let _ = exec;
    /// ```
    pub fn with_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Pool thread count (pooled mode; default = host cores).
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::LiveExecutor;
    /// let exec = LiveExecutor::new(64).with_pool_size(2);
    /// # let _ = exec;
    /// ```
    pub fn with_pool_size(mut self, threads: usize) -> Self {
        assert!(threads > 0, "pool size must be positive");
        self.pool_size = Some(threads);
        self
    }

    /// Mailbox capacity in messages per worker (pooled mode). Smaller
    /// values bound memory harder at the cost of more scheduling churn.
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::LiveExecutor;
    /// let exec = LiveExecutor::new(64).with_channel_capacity(8);
    /// # let _ = exec;
    /// ```
    pub fn with_channel_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "channel capacity must be positive");
        self.channel_capacity = capacity;
        self
    }

    /// Sample per-operator progress on this wall-clock interval (pooled
    /// mode). A sampler thread snapshots the tracer at the start of the
    /// run and every `interval` thereafter; without this the trace holds
    /// only the terminal sample.
    ///
    /// # Examples
    ///
    /// ```
    /// use std::time::Duration;
    /// use scriptflow_workflow::LiveExecutor;
    /// let exec = LiveExecutor::new(64).with_trace(Duration::from_millis(5));
    /// # let _ = exec;
    /// ```
    pub fn with_trace(mut self, interval: Duration) -> Self {
        assert!(!interval.is_zero(), "trace interval must be positive");
        self.trace_interval = Some(interval);
        self
    }

    /// Inject a deterministic [`FaultPlan`] into the pooled run (see
    /// [`crate::fault`]). The named operators fail as planned, the pool
    /// drains, and the run returns `Err` with the partial trace intact.
    /// Thread-per-worker mode ignores fault plans. A plan naming an
    /// operator the workflow doesn't have fails the run upfront with
    /// [`crate::WorkflowError::InvalidDag`].
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::fault::{random_chain, FaultPlan};
    /// use scriptflow_workflow::{LiveExecutor, OperatorState};
    ///
    /// let (wf, _handle, _names) = random_chain(5);
    /// let plan = FaultPlan::new(5).kill_worker("f0", 10);
    /// let (trace, result) = LiveExecutor::new(8)
    ///     .with_pool_size(1)
    ///     .with_faults(plan)
    ///     .run_observed(&wf);
    /// assert!(result.is_err());
    /// let (_, last) = trace.samples.last().unwrap();
    /// let f0 = last.iter().find(|s| s.name == "f0").unwrap();
    /// assert_eq!(f0.state, OperatorState::Failed);
    /// ```
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Per-operator retry budgets for faulted run quanta (pooled mode;
    /// see [`crate::retry`]). When a quantum faults — a caught panic, a
    /// killed worker, a poisoned mailbox payload, a decode error — and
    /// the operator's [`RetryPolicy`] has budget left, the pool sleeps
    /// the backoff and replays the quantum's held input batch instead of
    /// flipping the operator to sticky `Failed`; tuples are delivered
    /// exactly once across replays. Only an exhausted budget degrades to
    /// the drain path. The default configuration is disabled, which is
    /// byte-identical to the pre-retry executor.
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::fault::{random_chain, FaultPlan};
    /// use scriptflow_workflow::retry::{RetryConfig, RetryPolicy};
    /// use scriptflow_workflow::{LiveExecutor, OperatorState};
    ///
    /// let (wf, _handle, _names) = random_chain(5);
    /// let plan = FaultPlan::new(5).kill_worker("f0", 10);
    /// let res = LiveExecutor::new(8)
    ///     .with_pool_size(1)
    ///     .with_faults(plan)
    ///     .with_retry(RetryConfig::uniform(RetryPolicy::default()))
    ///     .run(&wf)
    ///     .expect("the retry budget absorbs the injected kill");
    /// assert_eq!(res.metrics.by_name("f0").unwrap().state, OperatorState::Completed);
    /// assert!(res.pool.unwrap().retries_succeeded >= 1);
    /// ```
    pub fn with_retry(mut self, retry: RetryConfig) -> Self {
        self.retry = retry;
        self
    }

    /// Seal edge batches as [`ColumnarBatch`]es with per-column min/max
    /// statistics (pooled mode). Downstream operators consume them
    /// through [`crate::Operator::on_batch`], which lets the relational
    /// kernels skip whole batches whose zone maps prove no row can pass.
    /// Results are pinned to the row path by the backend parity suite;
    /// only throughput and the `batches_skipped` counters change.
    /// Batches with an armed fault trigger still take the row path so
    /// the truncation/replay machinery is exercised unchanged.
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::LiveExecutor;
    /// let exec = LiveExecutor::new(64).with_columnar(true);
    /// # let _ = exec;
    /// ```
    pub fn with_columnar(mut self, enabled: bool) -> Self {
        self.columnar = enabled;
        self
    }

    /// Bound every blocking operator's in-memory state to `bytes` (see
    /// [`crate::spill`]). Past the budget an operator hash-partitions
    /// its buffered state into compressed spill blocks and finishes the
    /// work partition-by-partition; results are identical to the
    /// unbounded run, only the `spilled_*` counters and throughput
    /// change. `None` (the default) keeps execution fully in memory.
    /// An operator carrying its own budget override (e.g.
    /// [`crate::ops::HashJoinOp::with_memory_budget`]) ignores this
    /// engine-level value.
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::LiveExecutor;
    /// let exec = LiveExecutor::new(64).with_memory_budget(Some(1 << 20));
    /// # let _ = exec;
    /// ```
    pub fn with_memory_budget(mut self, bytes: Option<usize>) -> Self {
        self.memory_budget = bytes;
        self
    }

    /// Memoize sealed operator outputs in `cache`, keyed by content
    /// fingerprint (see [`crate::cache`]). Before a pooled run the
    /// executor replans the DAG: fingerprints already in the cache are
    /// served by replay sources and their unedited upstream cone is
    /// skipped; misses run normally and record their output, published
    /// to the cache when the run finishes cleanly (no faults, no
    /// retries). `None` (the default) executes every operator.
    /// Thread-per-worker mode ignores the cache.
    ///
    /// # Examples
    ///
    /// ```
    /// use std::sync::Arc;
    /// use scriptflow_workflow::{LiveExecutor, ResultCache};
    /// let exec = LiveExecutor::new(64).with_result_cache(Arc::new(ResultCache::new()));
    /// # let _ = exec;
    /// ```
    pub fn with_result_cache(mut self, cache: Arc<crate::cache::ResultCache>) -> Self {
        self.result_cache = Some(cache);
        self
    }

    /// Execute `wf`; blocks until completion.
    ///
    /// # Examples
    ///
    /// ```
    /// use std::sync::Arc;
    /// use scriptflow_datakit::{Batch, DataType, Schema, Value};
    /// use scriptflow_workflow::ops::{ScanOp, SinkOp};
    /// use scriptflow_workflow::{LiveExecutor, PartitionStrategy, WorkflowBuilder};
    ///
    /// let schema = Schema::of(&[("id", DataType::Int)]);
    /// let batch =
    ///     Batch::from_rows(schema, (0..6).map(|i| vec![Value::Int(i)]).collect()).unwrap();
    /// let mut b = WorkflowBuilder::new();
    /// let scan = b.add(Arc::new(ScanOp::new("scan", batch)), 1);
    /// let sink = b.add(Arc::new(SinkOp::new("sink")), 1);
    /// b.connect(scan, sink, 0, PartitionStrategy::Single);
    /// let wf = b.build().unwrap();
    ///
    /// let res = LiveExecutor::new(4).run(&wf).unwrap();
    /// assert_eq!(res.metrics.by_name("sink").unwrap().input_tuples, 6);
    /// ```
    pub fn run(&self, wf: &Workflow) -> WorkflowResult<LiveRunResult> {
        self.run_observed(wf).1
    }

    /// Execute `wf`, returning the progress trace alongside the result.
    ///
    /// Unlike [`LiveExecutor::run`] — whose trace travels inside
    /// [`LiveRunResult`] and is therefore lost on `Err` — this always
    /// hands the trace back, so a failed run can still be replayed to
    /// see which operator reached [`crate::OperatorState::Failed`]. In
    /// thread-per-worker mode the trace is empty.
    ///
    /// # Examples
    ///
    /// ```
    /// use std::sync::Arc;
    /// use scriptflow_datakit::{Batch, DataType, Schema, Value};
    /// use scriptflow_workflow::ops::{FilterOp, ScanOp, SinkOp};
    /// use scriptflow_workflow::{
    ///     LiveExecutor, OperatorState, PartitionStrategy, WorkflowBuilder,
    /// };
    ///
    /// let schema = Schema::of(&[("id", DataType::Int)]);
    /// let batch =
    ///     Batch::from_rows(schema, (0..6).map(|i| vec![Value::Int(i)]).collect()).unwrap();
    /// let mut b = WorkflowBuilder::new();
    /// let scan = b.add(Arc::new(ScanOp::new("scan", batch)), 1);
    /// let bad = b.add(
    ///     Arc::new(FilterOp::new("bad", |t| {
    ///         t.get_int("missing")?; // no such column: the operator fails
    ///         Ok(true)
    ///     })),
    ///     1,
    /// );
    /// let sink = b.add(Arc::new(SinkOp::new("sink")), 1);
    /// b.connect(scan, bad, 0, PartitionStrategy::RoundRobin);
    /// b.connect(bad, sink, 0, PartitionStrategy::Single);
    /// let wf = b.build().unwrap();
    ///
    /// let (trace, result) = LiveExecutor::new(4).run_observed(&wf);
    /// assert!(result.is_err());
    /// let (_, last) = trace.samples.last().unwrap();
    /// assert!(last.iter().any(|s| s.state == OperatorState::Failed));
    /// ```
    pub fn run_observed(&self, wf: &Workflow) -> (ProgressTrace, WorkflowResult<LiveRunResult>) {
        match self.mode {
            ExecMode::Pooled => {
                let Some(cache) = self.result_cache.clone() else {
                    return self.run_pooled(wf);
                };
                // The replay-read charge only prices the simulator's
                // virtual clock; live replay cost is real wall-clock.
                let plan = crate::cache::prepare(wf, &cache, SimDuration::ZERO);
                let (mut trace, result) = self.run_pooled(&plan.wf);
                let result = result.map(|mut res| {
                    // Publish only recordings from clean runs: a faulted
                    // or replayed quantum may have teed partial output.
                    let clean = res
                        .pool
                        .is_some_and(|p| p.faults_injected == 0 && p.retries_attempted == 0);
                    if clean {
                        let stats =
                            crate::cache::commit_recordings_as(&plan.recordings, &cache, None);
                        res.cache_published = stats.published;
                        if let Some(pool) = res.pool.as_mut() {
                            pool.cache_evictions = stats.evictions;
                        }
                        crate::cache::apply_evictions_to_metrics(&stats, &mut res.metrics);
                        crate::cache::apply_evictions_to_trace(&stats, &mut res.trace);
                        crate::cache::apply_evictions_to_trace(&stats, &mut trace);
                    }
                    res
                });
                (trace, result)
            }
            ExecMode::ThreadPerWorker => (ProgressTrace::default(), self.run_threads(wf)),
        }
    }

    /// Assemble metrics for a pooled run from the tracer's probes.
    fn result_pooled(
        wf: &Workflow,
        elapsed: Duration,
        tracer: &LiveTracer,
        pool: PoolStats,
        trace: ProgressTrace,
    ) -> LiveRunResult {
        assemble_live_result(
            &ops_meta(wf),
            wf.total_workers(),
            elapsed,
            tracer,
            pool,
            trace,
        )
    }

    /// Assemble metrics for a thread-per-worker run from raw counters.
    fn result_threads(
        wf: &Workflow,
        elapsed: Duration,
        in_counts: &[AtomicU64],
        out_counts: &[AtomicU64],
    ) -> LiveRunResult {
        let operators: Vec<OperatorMetrics> = wf
            .ops()
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let mut m =
                    OperatorMetrics::new(n.factory.name(), n.factory.language(), n.parallelism);
                m.input_tuples = in_counts[i].load(Ordering::Relaxed);
                m.output_tuples = out_counts[i].load(Ordering::Relaxed);
                m.state = OperatorState::Completed;
                m
            })
            .collect();
        LiveRunResult {
            elapsed,
            metrics: RunMetrics {
                makespan: makespan_of(elapsed),
                operators,
                total_workers: wf.total_workers(),
                events: 0,
            },
            pool: None,
            trace: ProgressTrace::default(),
            cache_published: 0,
        }
    }
}

fn makespan_of(elapsed: Duration) -> SimTime {
    SimTime::ZERO + SimDuration::from_micros(elapsed.as_micros().min(u128::from(u64::MAX)) as u64)
}

/// Everything metrics assembly needs from one workflow node, captured
/// so a run finalized long after submission (service mode) does not
/// have to hold the DAG. Includes the planner's cache markers: a served
/// operator's instances never execute, so its hit counters can only
/// come from the factory, at capture time.
pub(crate) struct OpMeta {
    pub(crate) name: String,
    pub(crate) language: Language,
    pub(crate) workers: usize,
    pub(crate) cache_hits: u64,
    pub(crate) cache_misses: u64,
    pub(crate) cache_bytes: u64,
}

/// Capture an [`OpMeta`] per operator.
pub(crate) fn ops_meta(wf: &Workflow) -> Vec<OpMeta> {
    wf.ops()
        .iter()
        .map(|n| {
            let (cache_hits, cache_bytes) = match n.factory.cache_replay() {
                Some((_blocks, bytes)) => (1, bytes),
                None => (0, 0),
            };
            OpMeta {
                name: n.factory.name().to_owned(),
                language: n.factory.language(),
                workers: n.parallelism,
                cache_hits,
                cache_misses: u64::from(n.factory.cache_recording()),
                cache_bytes,
            }
        })
        .collect()
}

/// Assemble a [`LiveRunResult`] from a finished run core's probes.
/// Shared by the single-run pooled path and the multi-tenant service's
/// per-run finalizer.
pub(crate) fn assemble_live_result(
    ops: &[OpMeta],
    total_workers: usize,
    elapsed: Duration,
    tracer: &LiveTracer,
    mut pool: PoolStats,
    trace: ProgressTrace,
) -> LiveRunResult {
    pool.cache_hits = ops.iter().map(|o| o.cache_hits).sum();
    pool.cache_misses = ops.iter().map(|o| o.cache_misses).sum();
    pool.cache_bytes = ops.iter().map(|o| o.cache_bytes).sum();
    let operators: Vec<OperatorMetrics> = ops
        .iter()
        .enumerate()
        .map(|(i, meta)| {
            let probe = tracer.probe(i);
            let mut m = OperatorMetrics::new(meta.name.clone(), meta.language, meta.workers);
            m.input_tuples = probe.input_tuples();
            m.output_tuples = probe.output_tuples();
            m.batches_skipped = probe.batches_skipped();
            m.spilled_blocks = probe.spilled_blocks();
            m.spilled_bytes = probe.spilled_bytes();
            m.spill_reads = probe.spill_reads();
            m.cache_hits = meta.cache_hits;
            m.cache_misses = meta.cache_misses;
            m.cache_bytes = meta.cache_bytes;
            m.busy = probe.busy();
            m.state = probe.state();
            m
        })
        .collect();
    LiveRunResult {
        elapsed,
        metrics: RunMetrics {
            makespan: makespan_of(elapsed),
            operators,
            total_workers,
            events: 0,
        },
        pool: Some(pool),
        trace,
        cache_published: 0,
    }
}

// ---------------------------------------------------------------------------
// Pooled executor
// ---------------------------------------------------------------------------

/// Message flowing into a worker task's mailbox.
enum Msg {
    /// Data tuples for an input port, shared rather than copied.
    Batch { port: usize, batch: SharedBatch },
    /// One upstream producer worker is done with this edge.
    Eos { port: usize },
    /// A corrupted payload planted by a fault plan; consuming it fails
    /// the operator (exercises the "garbage in the mailbox" path).
    Poison { port: usize },
}

/// Task state machine (Databend-style): a task is scheduled at most once
/// concurrently; schedule requests arriving mid-run dirty the state so the
/// pool re-queues the task when the run finishes.
const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
const RUNNING_DIRTY: u8 = 3;

/// Messages a task may process per run quantum before re-queuing itself,
/// so one busy task cannot monopolize a pool thread.
const QUANTUM: usize = 64;

/// One compiled out-edge of a task: where its output goes and how.
#[derive(Clone)]
struct EdgeOut {
    to_port: usize,
    partitioner: CompiledPartitioner,
    /// Global task ids of the consumer's workers, by local index.
    dests: Vec<usize>,
}

/// Static (shared, read-only) description of one operator-worker task.
struct TaskStatic {
    /// Operator index (for the metric counters).
    op: usize,
    downstream: Vec<EdgeOut>,
    blocking: Vec<usize>,
    batch_size: usize,
    /// Injected latency per forwarded batch group (slow-edge fault).
    slow_edge: Option<Duration>,
    /// Retry budget for faulted run quanta (resolved per operator).
    retry: RetryPolicy,
    /// Seal outgoing edge batches as columnar payloads with zone-map
    /// statistics (every partitioning strategy; scatter edges seal each
    /// per-destination chunk after routing).
    columnar: bool,
}

/// A faulted quantum's input, stashed so the replayed quantum can
/// re-process it (see [`crate::retry`]).
struct ReplayBatch {
    port: usize,
    /// The tuples to re-process: the full batch for an organic
    /// `on_tuple` error (whose partial output was discarded), or the
    /// truncated-off remainder for an injected panic/kill (whose prefix
    /// was already processed and forwarded).
    tuples: Vec<Tuple>,
    /// Whether `on_input` already counted these tuples.
    counted: bool,
}

/// Mutable task state; locked only by the single pool thread running the
/// task (the state machine guarantees no concurrent runs).
struct TaskInner {
    instance: Box<dyn Operator>,
    collector: OutputCollector,
    /// Routing sequence per out-edge.
    seqs: Vec<u64>,
    /// Reusable per-out-edge, per-destination-worker scatter buffers.
    scatter: Vec<Vec<Vec<Tuple>>>,
    /// Routed messages awaiting delivery; kept FIFO so per-destination
    /// ordering (data before EOS) is preserved under backpressure.
    outbox: VecDeque<(usize, Msg)>,
    /// Remaining EOS per input port before the port completes.
    eos_remaining: Vec<usize>,
    port_done: Vec<bool>,
    /// Messages gated behind a blocking port (unbounded by design: holding
    /// them is what keeps mailboxes draining and the pool deadlock-free).
    held: VecDeque<Msg>,
    /// Released held messages, processed ahead of new mailbox arrivals.
    pending: VecDeque<Msg>,
    /// Pre-chunked own data (source workers only).
    source: Option<VecDeque<Vec<Tuple>>>,
    eos_queued: bool,
    done: bool,
    /// The task failed (organic error, injected fault, or captured
    /// panic): subsequent quanta run the drain path instead of the
    /// normal one.
    failed: bool,
    /// Fault plan: suppress this worker's EOS markers entirely.
    drop_eos: bool,
    /// Fault plan: run quanta left to burn before sending EOS.
    eos_delay: u32,
    /// Input of the last faulted quantum, awaiting replay.
    replay: Option<ReplayBatch>,
    /// Quantum replays consumed from the task's retry budget.
    retries_used: u32,
    /// The task replayed at least one faulted quantum (feeds
    /// [`PoolStats::retries_succeeded`] if it still finishes cleanly).
    retried: bool,
    /// Deferred retry backoff (shared-pool mode): the task must not run
    /// again before this instant. `None` everywhere else — single-run
    /// pools sleep the backoff inside the quantum instead.
    park_until: Option<Instant>,
}

/// Bounded mailbox feeding one task.
struct Inbox {
    queue: Mutex<VecDeque<Msg>>,
    capacity: usize,
}

pub(crate) struct Task {
    meta: TaskStatic,
    inner: Mutex<TaskInner>,
    inbox: Inbox,
    /// Producer tasks to wake when this mailbox frees space.
    waiters: Mutex<Vec<usize>>,
    state: AtomicU8,
}

enum RunOutcome {
    /// The task has more work immediately available: re-queue it.
    More,
    /// The task is waiting on input or on a full destination mailbox.
    Yield,
    /// The task finished and sent its EOS markers.
    Done,
}

/// Scheduler half of a run executing on a *shared* worker pool (see
/// [`crate::service`]). A [`Pool`] constructed with
/// [`Pool::for_service`] owns no worker threads and no run queue of its
/// own: ready tasks, deferred-retry parks, and run completion are
/// reported here, and the process-wide service decides which run's
/// quantum each shared worker executes next.
pub(crate) trait QuantumScheduler: Send + Sync {
    /// Task `tid` of run `run` is ready to execute a quantum.
    fn task_ready(&self, run: u64, tid: usize);
    /// Task `tid` of run `run` must not run again before `until` — a
    /// retry backoff served by the timer instead of a sleeping worker.
    fn task_parked(&self, run: u64, tid: usize, until: Instant);
    /// Every task of run `run` reached `Done`; the run can be finalized.
    fn run_finished(&self, run: u64);
}

pub(crate) struct Pool {
    tasks: Vec<Task>,
    run_queue: Mutex<VecDeque<usize>>,
    cv: Condvar,
    shutdown: AtomicBool,
    error: Mutex<Option<WorkflowError>>,
    active: AtomicUsize,
    /// Compiled fault plan consulted on the hot path (None = no faults).
    faults: Option<CompiledFaults>,
    /// Worker-thread count, for the quiescence (stall) detector.
    pool_threads: usize,
    /// Pool threads currently parked on the run-queue condvar.
    idle_threads: AtomicUsize,
    /// Times `recover_stall` ran (dropped-EOS recovery).
    stall_recoveries: AtomicU64,
    /// Per-operator observability counters (tuple counts, states, busy
    /// time, mailbox depth, stalls) — fed inline by the hooks below.
    tracer: LiveTracer,
    task_runs: AtomicU64,
    batches_sent: AtomicU64,
    /// Faulted quanta replayed under a retry budget.
    retries_attempted: AtomicU64,
    /// Retried tasks that still finished cleanly.
    retries_succeeded: AtomicU64,
    /// Seat for the sampler thread; the condvar lets the pool cut the
    /// sampler's final interval short at shutdown.
    sampler_seat: Mutex<()>,
    sampler_cv: Condvar,
    /// Shared-pool mode: scheduling events route to the service
    /// scheduler under this run id instead of the local run queue. The
    /// `Weak` breaks the service ↔ run reference cycle.
    sched: Option<(Weak<dyn QuantumScheduler>, u64)>,
    /// Convert retry backoffs into timed parks instead of sleeping the
    /// worker thread (shared-pool mode: a worker sleeping one tenant's
    /// backoff would stall every other tenant's quanta).
    defer_retries: bool,
}

impl Pool {
    fn enqueue(&self, tid: usize) {
        if let Some((sched, run)) = &self.sched {
            if let Some(s) = sched.upgrade() {
                s.task_ready(*run, tid);
            }
            return;
        }
        self.run_queue.lock().push_back(tid);
        self.cv.notify_one();
    }

    /// Account one task reaching `Done`. The last one flips the run's
    /// shutdown flag and notifies whoever owns the worker threads: the
    /// local pool's condvars, or the service scheduler.
    fn task_done(&self) {
        if self.active.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.shutdown.store(true, Ordering::Release);
            if let Some((sched, run)) = &self.sched {
                if let Some(s) = sched.upgrade() {
                    s.run_finished(*run);
                }
            } else {
                self.cv.notify_all();
                self.sampler_cv.notify_all();
            }
        }
    }

    /// Build a pool core for one run executing on the *shared* service
    /// pool: no local worker threads, no local run queue — every
    /// scheduling event routes to `sched` under `run`, and retry
    /// backoffs become timed parks instead of worker sleeps.
    /// `pool_threads` records the shared pool's width (it feeds
    /// [`PoolStats`] and the stall detector's quiescence math, which
    /// the service replicates externally via [`Pool::has_active_tasks`]).
    pub(crate) fn for_service(
        tasks: Vec<Task>,
        faults: Option<CompiledFaults>,
        pool_threads: usize,
        tracer: LiveTracer,
        sched: Weak<dyn QuantumScheduler>,
        run: u64,
    ) -> Self {
        let n_tasks = tasks.len();
        Pool {
            tasks,
            run_queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            error: Mutex::new(None),
            active: AtomicUsize::new(n_tasks),
            faults,
            pool_threads,
            idle_threads: AtomicUsize::new(0),
            stall_recoveries: AtomicU64::new(0),
            tracer,
            task_runs: AtomicU64::new(0),
            batches_sent: AtomicU64::new(0),
            retries_attempted: AtomicU64::new(0),
            retries_succeeded: AtomicU64::new(0),
            sampler_seat: Mutex::new(()),
            sampler_cv: Condvar::new(),
            sched: Some((sched, run)),
            defer_retries: true,
        }
    }

    /// Mark every task `QUEUED` and return the task ids, in order. The
    /// service feeds them straight into the run's ready list (the local
    /// executor seeds its own run queue under the queue lock instead).
    pub(crate) fn seed_all(&self) -> Vec<usize> {
        for task in &self.tasks {
            task.state.store(QUEUED, Ordering::Release);
        }
        (0..self.tasks.len()).collect()
    }

    /// Number of tasks in this run.
    pub(crate) fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Every task reached `Done` (the shutdown flag flipped).
    pub(crate) fn finished(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Tasks still nominally active — used by the service's quiescence
    /// detector: a run with active tasks, an empty ready list, and no
    /// running quanta has stalled (dropped EOS) and needs
    /// [`Pool::recover_stall`].
    pub(crate) fn has_active_tasks(&self) -> bool {
        self.active.load(Ordering::Acquire) > 0
    }

    /// Take the run's first recorded error, if any.
    pub(crate) fn take_error(&self) -> Option<WorkflowError> {
        self.error.lock().take()
    }

    /// The run's live observability probes.
    pub(crate) fn tracer(&self) -> &LiveTracer {
        &self.tracer
    }

    /// Assemble the run's terminal [`ProgressTrace`]. Service runs are
    /// not interval-sampled (the terminal sample still captures final
    /// states and counters); pass any interval samples collected.
    pub(crate) fn finish_trace(
        &self,
        samples: Vec<(SimTime, Vec<OperatorSnapshot>)>,
    ) -> ProgressTrace {
        self.tracer.finish(samples)
    }

    /// Snapshot the run's executor counters into [`PoolStats`].
    pub(crate) fn stats(&self) -> PoolStats {
        PoolStats {
            pool_threads: self.pool_threads,
            tasks: self.tasks.len(),
            task_runs: self.task_runs.load(Ordering::Relaxed),
            backpressure_stalls: self.tracer.total_stalls(),
            batches_sent: self.batches_sent.load(Ordering::Relaxed),
            peak_mailbox_depth: self.tracer.peak_mailbox_depth(),
            faults_injected: self.faults.as_ref().map_or(0, |f| f.triggered()),
            stall_recoveries: self.stall_recoveries.load(Ordering::Relaxed),
            retries_attempted: self.retries_attempted.load(Ordering::Relaxed),
            retries_succeeded: self.retries_succeeded.load(Ordering::Relaxed),
            batches_skipped: self.tracer.total_batches_skipped(),
            spilled_blocks: self.tracer.total_spilled_blocks(),
            spilled_bytes: self.tracer.total_spilled_bytes(),
            spill_reads: self.tracer.total_spill_reads(),
            // Cache counters live on the planner's factory markers, not
            // in the pool; `assemble_live_result` fills them from the
            // captured OpMeta.
            cache_hits: 0,
            cache_misses: 0,
            cache_bytes: 0,
            // Evictions happen at commit time, after the pool is done;
            // the committing caller sets them.
            cache_evictions: 0,
        }
    }

    /// Drain the quantum's spill counters into the tracer. Called on
    /// every successful processing step; faulting paths discard the
    /// counters instead (`collector.take_spill()`), mirroring how the
    /// quantum's partial output is discarded before a replay.
    fn drain_spill(&self, op: usize, collector: &mut OutputCollector) {
        let (blocks, bytes, reads) = collector.take_spill();
        self.tracer.on_spill(op, blocks, bytes, reads);
    }

    /// Request that `tid` runs (again) soon. Idempotent; safe from any
    /// thread. Duplicate queue entries are filtered by the CAS on pop.
    fn schedule(&self, tid: usize) {
        let state = &self.tasks[tid].state;
        loop {
            match state.load(Ordering::Acquire) {
                IDLE => {
                    if state
                        .compare_exchange(IDLE, QUEUED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        self.enqueue(tid);
                        return;
                    }
                }
                RUNNING => {
                    if state
                        .compare_exchange(
                            RUNNING,
                            RUNNING_DIRTY,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        return;
                    }
                }
                // Already queued or already dirtied: nothing to do.
                _ => return,
            }
        }
    }

    /// Record a failure against operator `op`: sticky `Failed` state plus
    /// the run's first error. The pool keeps running — draining (rather
    /// than aborting) is what preserves the partial trace and lets the
    /// untainted part of the pipeline finish.
    fn fail_op(&self, op: usize, e: WorkflowError) {
        self.tracer.on_failed(op);
        let mut g = self.error.lock();
        if g.is_none() {
            *g = Some(e);
        }
    }

    /// Fail the task currently being run: record the error and flip the
    /// task into drain mode for its next quantum.
    fn fail_task(&self, op: usize, inner: &mut TaskInner, e: WorkflowError) {
        self.fail_op(op, e);
        inner.failed = true;
    }

    /// True when the task may still replay a faulted quantum. Checked
    /// *before* faulting paths clone their input for replay, so a
    /// disabled policy (`max_attempts = 0`, the default) adds one
    /// integer compare to the hot path and nothing else.
    fn budget_left(&self, meta: &TaskStatic, inner: &TaskInner) -> bool {
        inner.retries_used < meta.retry.max_attempts
    }

    /// Consume one replay from the task's retry budget for a faulted
    /// quantum: serve the backoff (see below), surface
    /// [`OperatorState::Retrying`], and return `true` — the caller
    /// replays instead of failing. Returns `false` with the budget
    /// untouched once it is exhausted: the fault degrades to the drain
    /// path exactly as it would without a policy.
    ///
    /// On a run-private pool the backoff is slept inside the task's own
    /// quantum (the rest of the pool keeps running). On a shared service
    /// pool sleeping would hand one tenant's backoff to every tenant, so
    /// the task is *parked* instead: the quantum finishes, the service
    /// timer re-queues the task once the backoff elapses, and the shared
    /// workers stay available throughout.
    fn try_retry(&self, meta: &TaskStatic, inner: &mut TaskInner) -> bool {
        if !self.budget_left(meta, inner) {
            return false;
        }
        let delay = meta.retry.backoff.delay(inner.retries_used);
        inner.retries_used += 1;
        inner.retried = true;
        self.retries_attempted.fetch_add(1, Ordering::Relaxed);
        self.tracer.on_retrying(meta.op);
        if !delay.is_zero() {
            if self.defer_retries {
                let until = Instant::now() + delay;
                inner.park_until = Some(inner.park_until.map_or(until, |u| u.max(until)));
            } else {
                std::thread::sleep(delay);
            }
        }
        true
    }

    fn wake_waiters(&self, tid: usize) {
        let waiters = std::mem::take(&mut *self.tasks[tid].waiters.lock());
        for w in waiters {
            self.schedule(w);
        }
    }

    /// A finished task that still receives messages (possible only after
    /// a forced finish) throws them away, keeping the mailbox-depth
    /// accounting consistent and its producers unwedged.
    fn discard_inbox(&self, tid: usize) {
        let task = &self.tasks[tid];
        let mut consumed = false;
        while task.inbox.queue.lock().pop_front().is_some() {
            consumed = true;
            self.tracer.on_mailbox_pop(task.meta.op);
        }
        if consumed {
            self.wake_waiters(tid);
        }
    }

    /// Deliver `msg` to `dest`'s mailbox, or hand it back if the mailbox
    /// is full. On the full path the sender is registered as a waiter
    /// first and the mailbox re-checked, so a concurrent drain cannot
    /// strand the sender without a wakeup.
    fn try_send(&self, from: usize, dest: usize, msg: Msg) -> Result<(), Msg> {
        let inbox = &self.tasks[dest].inbox;
        let batch_port = match &msg {
            Msg::Batch { port, .. } => Some(*port),
            _ => None,
        };
        {
            let mut q = inbox.queue.lock();
            if q.len() < inbox.capacity {
                q.push_back(msg);
                // Hooked before the lock drops so the matching pop hook
                // (which runs after a later lock acquisition) can never
                // observe the push-count behind the pop-count.
                self.tracer.on_mailbox_push(self.tasks[dest].meta.op);
                self.poison_after_push(dest, batch_port, &mut q);
                drop(q);
                if batch_port.is_some() {
                    self.batches_sent.fetch_add(1, Ordering::Relaxed);
                }
                self.schedule(dest);
                return Ok(());
            }
        }
        self.tasks[dest].waiters.lock().push(from);
        {
            let mut q = inbox.queue.lock();
            if q.len() < inbox.capacity {
                q.push_back(msg);
                // Hooked before the lock drops so the matching pop hook
                // (which runs after a later lock acquisition) can never
                // observe the push-count behind the pop-count.
                self.tracer.on_mailbox_push(self.tasks[dest].meta.op);
                self.poison_after_push(dest, batch_port, &mut q);
                drop(q);
                if batch_port.is_some() {
                    self.batches_sent.fetch_add(1, Ordering::Relaxed);
                }
                self.schedule(dest);
                return Ok(());
            }
        }
        Err(msg)
    }

    /// Poison-mailbox fault: counted on *successful* batch deliveries
    /// only (a backpressure retry must not advance the count), planting
    /// the poison right behind the armed batch — one slot of capacity
    /// overshoot, same lock hold.
    fn poison_after_push(&self, dest: usize, batch_port: Option<usize>, q: &mut VecDeque<Msg>) {
        let Some(port) = batch_port else { return };
        let dest_op = self.tasks[dest].meta.op;
        if self
            .faults
            .as_ref()
            .is_some_and(|f| f.check_poison(dest_op))
        {
            q.push_back(Msg::Poison { port });
            self.tracer.on_mailbox_push(dest_op);
        }
    }

    /// Drain the task's outbox in FIFO order. Returns `false` (and counts
    /// a stall) if the head message's destination is full — the task must
    /// yield and will be re-scheduled by the consumer.
    fn flush_outbox(&self, tid: usize, inner: &mut TaskInner) -> bool {
        while let Some((dest, msg)) = inner.outbox.pop_front() {
            match self.try_send(tid, dest, msg) {
                Ok(()) => {}
                Err(msg) => {
                    // The stall is charged to the operator whose mailbox
                    // is full — the backpressure *source*, not its victim.
                    self.tracer.on_stall(self.tasks[dest].meta.op);
                    inner.outbox.push_front((dest, msg));
                    return false;
                }
            }
        }
        true
    }

    /// Route `tuples` along every out-edge into the outbox.
    ///
    /// Broadcast edges chunk once and clone only the `Arc` per
    /// destination; single-consumer edges skip routing entirely; scattered
    /// edges *move* each tuple into a reusable per-worker buffer — no
    /// per-tuple clone anywhere except genuine multi-edge fan-out.
    fn forward(
        &self,
        meta: &TaskStatic,
        inner: &mut TaskInner,
        tuples: Vec<Tuple>,
    ) -> WorkflowResult<()> {
        self.tracer.on_output(meta.op, tuples.len() as u64);
        if meta.downstream.is_empty() || tuples.is_empty() {
            return Ok(());
        }
        let TaskInner {
            seqs,
            scatter,
            outbox,
            ..
        } = inner;
        let last = meta.downstream.len() - 1;
        let mut remaining = Some(tuples);
        for (d, edge) in meta.downstream.iter().enumerate() {
            let owned = if d == last {
                remaining.take().expect("taken only on the last edge")
            } else {
                remaining
                    .as_ref()
                    .expect("present until the last edge")
                    .clone()
            };
            if edge.partitioner.is_broadcast() {
                chunk_owned(owned, meta.batch_size, |chunk| {
                    let batch = seal_chunk(meta.columnar, chunk);
                    for &dest in &edge.dests {
                        outbox.push_back((
                            dest,
                            Msg::Batch {
                                port: edge.to_port,
                                batch: batch.clone(),
                            },
                        ));
                    }
                });
            } else if edge.dests.len() == 1 {
                let dest = edge.dests[0];
                chunk_owned(owned, meta.batch_size, |chunk| {
                    outbox.push_back((
                        dest,
                        Msg::Batch {
                            port: edge.to_port,
                            batch: seal_chunk(meta.columnar, chunk),
                        },
                    ));
                });
            } else {
                edge.partitioner
                    .scatter(owned, &mut seqs[d], &mut scatter[d])?;
                for w in 0..edge.dests.len() {
                    if scatter[d][w].is_empty() {
                        continue;
                    }
                    let buf = std::mem::take(&mut scatter[d][w]);
                    let dest = edge.dests[w];
                    chunk_owned(buf, meta.batch_size, |chunk| {
                        outbox.push_back((
                            dest,
                            Msg::Batch {
                                port: edge.to_port,
                                batch: seal_chunk(meta.columnar, chunk),
                            },
                        ));
                    });
                }
            }
        }
        Ok(())
    }

    /// Fire a tuple-counted fault trigger: panic (captured by the pool
    /// thread's `catch_unwind`, which consults the retry budget) or kill
    /// the task — cleanly absorbed by a replay when budget remains,
    /// otherwise flipping the task into drain mode.
    fn spring_trigger(
        &self,
        meta: &TaskStatic,
        inner: &mut TaskInner,
        t: TupleTrigger,
    ) -> RunOutcome {
        let name = self.tracer.probe(meta.op).name().to_owned();
        match t.action {
            TupleAction::Panic => panic!(
                "injected fault: operator `{name}` panicked at tuple {}",
                t.at
            ),
            TupleAction::Kill => {
                if self.try_retry(meta, inner) {
                    // The kill cost this quantum, not the operator: the
                    // stashed remainder (or re-queued source chunk)
                    // replays on the next quantum.
                    return RunOutcome::More;
                }
                self.fail_task(
                    meta.op,
                    inner,
                    WorkflowError::OperatorFailed {
                        operator: name,
                        message: format!(
                            "worker killed mid-quantum at tuple {} (injected fault)",
                            t.at
                        ),
                    },
                );
                RunOutcome::More
            }
        }
    }

    /// One cooperative run quantum of task `tid`.
    fn run_task(&self, tid: usize) -> RunOutcome {
        let task = &self.tasks[tid];
        let meta = &task.meta;
        let mut guard = task.inner.lock();
        let inner = &mut *guard;

        if inner.done {
            self.discard_inbox(tid);
            return RunOutcome::Yield;
        }
        if inner.failed {
            return self.drain_failed(tid, meta, inner);
        }

        // Deliver whatever a previous quantum could not.
        if !self.flush_outbox(tid, inner) {
            return RunOutcome::Yield;
        }

        // Source emission: forward pre-chunked own data.
        if inner.source.is_some() {
            let mut emitted = 0usize;
            loop {
                if emitted >= QUANTUM {
                    return RunOutcome::More;
                }
                let mut chunk = match inner.source.as_mut().expect("checked above").pop_front() {
                    Some(c) => c,
                    None => break,
                };
                emitted += 1;
                let trigger = self
                    .faults
                    .as_ref()
                    .and_then(|f| f.check_tuples(meta.op, chunk.len() as u64));
                if let Some(t) = &trigger {
                    if self.budget_left(meta, inner) {
                        // Under a retry budget the tuples behind the
                        // fault are not lost: the remainder goes back to
                        // the head of the source queue and replays next
                        // quantum (the trigger's atomics fired exactly
                        // once, so re-chunking cannot re-fire it).
                        let rest = chunk.split_off((t.keep as usize).min(chunk.len()));
                        if !rest.is_empty() {
                            inner
                                .source
                                .as_mut()
                                .expect("checked above")
                                .push_front(rest);
                        }
                    } else {
                        chunk.truncate(t.keep as usize);
                    }
                }
                if let Err(e) = self.forward(meta, inner, chunk) {
                    self.fail_task(meta.op, inner, e);
                    return RunOutcome::More;
                }
                if !self.flush_outbox(tid, inner) {
                    // Fire even on a full downstream mailbox — the
                    // trigger counter already advanced, and the drain
                    // path clears the stuck outbox anyway.
                    if let Some(t) = trigger {
                        return self.spring_trigger(meta, inner, t);
                    }
                    return RunOutcome::Yield;
                }
                if let Some(t) = trigger {
                    return self.spring_trigger(meta, inner, t);
                }
                if let Some(d) = meta.slow_edge {
                    std::thread::sleep(d);
                }
            }
        }

        // A replayed quantum (see `crate::retry`): re-process the
        // faulted quantum's stashed input ahead of any new message.
        // Injected triggers are not re-consulted — their atomics already
        // fired — so the replay delivers each tuple exactly once.
        if let Some(replay) = inner.replay.take() {
            if !replay.counted {
                self.tracer.on_input(meta.op, replay.tuples.len() as u64);
            }
            // Keep a copy only while a further replay is still possible.
            let backup = if self.budget_left(meta, inner) {
                replay.tuples.clone()
            } else {
                Vec::new()
            };
            let port = replay.port;
            for t in replay.tuples {
                if let Err(e) = inner.instance.on_tuple(t, port, &mut inner.collector) {
                    let _ = inner.collector.take();
                    let _ = inner.collector.take_spill();
                    if self.try_retry(meta, inner) {
                        inner.replay = Some(ReplayBatch {
                            port,
                            tuples: backup,
                            counted: true,
                        });
                        return RunOutcome::More;
                    }
                    self.fail_task(meta.op, inner, e);
                    return RunOutcome::More;
                }
            }
            self.drain_spill(meta.op, &mut inner.collector);
            if !inner.collector.is_empty() {
                let out = inner.collector.take();
                if let Err(e) = self.forward(meta, inner, out) {
                    self.fail_task(meta.op, inner, e);
                    return RunOutcome::More;
                }
            }
            if !self.flush_outbox(tid, inner) {
                return RunOutcome::Yield;
            }
        }

        // Consume released-held messages first, then the mailbox.
        let mut consumed_inbox = false;
        let mut processed = 0usize;
        let early = 'consume: loop {
            if processed >= QUANTUM {
                break 'consume Some(RunOutcome::More);
            }
            let msg = match inner.pending.pop_front() {
                Some(m) => m,
                None => match task.inbox.queue.lock().pop_front() {
                    Some(m) => {
                        consumed_inbox = true;
                        self.tracer.on_mailbox_pop(meta.op);
                        m
                    }
                    None => break 'consume None,
                },
            };
            processed += 1;
            if matches!(msg, Msg::Poison { .. }) {
                // Poison bypasses the blocking gate: corruption in the
                // mailbox fails the operator wherever it sits. A retry
                // budget absorbs it — the corrupted payload carries no
                // data, so discarding it and moving on loses nothing.
                if self.try_retry(meta, inner) {
                    continue;
                }
                let name = self.tracer.probe(meta.op).name().to_owned();
                self.fail_task(
                    meta.op,
                    inner,
                    WorkflowError::OperatorFailed {
                        operator: name,
                        message: "poisoned mailbox payload (injected fault)".to_owned(),
                    },
                );
                break 'consume Some(RunOutcome::More);
            }
            let port = match &msg {
                Msg::Batch { port, .. } | Msg::Eos { port } | Msg::Poison { port } => *port,
            };
            let gate_open = meta.blocking.iter().all(|&p| inner.port_done[p]);
            if !gate_open && !meta.blocking.contains(&port) {
                inner.held.push_back(msg);
                continue;
            }
            match msg {
                Msg::Batch { port, batch } => {
                    let n = batch.len() as u64;
                    let trigger = self
                        .faults
                        .as_ref()
                        .and_then(|f| f.check_tuples(meta.op, n));
                    // Columnar fast path: hand the sealed batch to the
                    // operator's `on_batch` kernel whole, so zone maps
                    // can drop it without touching the rows. Fault-armed
                    // batches fall through to the row path — truncation
                    // and replay reason about tuple positions.
                    if trigger.is_none() {
                        if let Some(cb) = batch.columnar().cloned() {
                            self.tracer.on_input(meta.op, n);
                            if let Err(e) = inner.instance.on_batch(&cb, port, &mut inner.collector)
                            {
                                let _ = inner.collector.take();
                                let _ = inner.collector.take_batches_skipped();
                                let _ = inner.collector.take_spill();
                                if self.try_retry(meta, inner) {
                                    inner.replay = Some(ReplayBatch {
                                        port,
                                        tuples: cb.to_tuples(),
                                        counted: true,
                                    });
                                    break 'consume Some(RunOutcome::More);
                                }
                                self.fail_task(meta.op, inner, e);
                                break 'consume Some(RunOutcome::More);
                            }
                            let skipped = inner.collector.take_batches_skipped();
                            if skipped > 0 {
                                self.tracer.on_batches_skipped(meta.op, skipped);
                            }
                            self.drain_spill(meta.op, &mut inner.collector);
                            if !inner.collector.is_empty() {
                                let out = inner.collector.take();
                                if let Err(e) = self.forward(meta, inner, out) {
                                    self.fail_task(meta.op, inner, e);
                                    break 'consume Some(RunOutcome::More);
                                }
                                if !self.flush_outbox(tid, inner) {
                                    break 'consume Some(RunOutcome::Yield);
                                }
                            }
                            if let Some(d) = meta.slow_edge {
                                std::thread::sleep(d);
                            }
                            continue;
                        }
                    }
                    // A fired trigger truncates the batch: only the
                    // tuples before the fault position count as input.
                    let keep = trigger.as_ref().map_or(n, |t| t.keep);
                    self.tracer.on_input(meta.op, keep);
                    // Sole-owner batches reclaim their tuples without
                    // copying; shared (broadcast) batches clone here, once
                    // per consumer that actually mutates them.
                    let mut tuples = batch.into_tuples();
                    if trigger.is_some() && self.budget_left(meta, inner) {
                        // Under a retry budget the tuples behind the
                        // injected fault are stashed for the replayed
                        // quantum instead of being dropped.
                        let rest = tuples.split_off((keep as usize).min(tuples.len()));
                        inner.replay = Some(ReplayBatch {
                            port,
                            tuples: rest,
                            counted: false,
                        });
                    } else {
                        tuples.truncate(keep as usize);
                    }
                    // Kept only while an organic error could still be
                    // retried (a pending trigger replays its own stash).
                    let backup = if trigger.is_none() && self.budget_left(meta, inner) {
                        tuples.clone()
                    } else {
                        Vec::new()
                    };
                    for t in tuples {
                        if let Err(e) = inner.instance.on_tuple(t, port, &mut inner.collector) {
                            if trigger.is_none() {
                                let _ = inner.collector.take();
                                let _ = inner.collector.take_spill();
                                if self.try_retry(meta, inner) {
                                    inner.replay = Some(ReplayBatch {
                                        port,
                                        tuples: backup,
                                        counted: true,
                                    });
                                    break 'consume Some(RunOutcome::More);
                                }
                            }
                            self.fail_task(meta.op, inner, e);
                            break 'consume Some(RunOutcome::More);
                        }
                    }
                    self.drain_spill(meta.op, &mut inner.collector);
                    if !inner.collector.is_empty() {
                        let out = inner.collector.take();
                        if let Err(e) = self.forward(meta, inner, out) {
                            self.fail_task(meta.op, inner, e);
                            break 'consume Some(RunOutcome::More);
                        }
                        if !self.flush_outbox(tid, inner) {
                            if let Some(t) = trigger {
                                break 'consume Some(self.spring_trigger(meta, inner, t));
                            }
                            break 'consume Some(RunOutcome::Yield);
                        }
                    }
                    if let Some(t) = trigger {
                        break 'consume Some(self.spring_trigger(meta, inner, t));
                    }
                    if let Some(d) = meta.slow_edge {
                        std::thread::sleep(d);
                    }
                }
                Msg::Eos { port } => {
                    inner.eos_remaining[port] = inner.eos_remaining[port].saturating_sub(1);
                    if inner.eos_remaining[port] == 0 && !inner.port_done[port] {
                        inner.port_done[port] = true;
                        if let Err(e) = inner.instance.on_port_complete(port, &mut inner.collector)
                        {
                            self.fail_task(meta.op, inner, e);
                            break 'consume Some(RunOutcome::More);
                        }
                        self.drain_spill(meta.op, &mut inner.collector);
                        if !inner.collector.is_empty() {
                            let out = inner.collector.take();
                            if let Err(e) = self.forward(meta, inner, out) {
                                self.fail_task(meta.op, inner, e);
                                break 'consume Some(RunOutcome::More);
                            }
                            if !self.flush_outbox(tid, inner) {
                                break 'consume Some(RunOutcome::Yield);
                            }
                        }
                        let gate_now = meta.blocking.iter().all(|&p| inner.port_done[p]);
                        if gate_now && !inner.held.is_empty() {
                            while let Some(m) = inner.held.pop_front() {
                                inner.pending.push_back(m);
                            }
                        }
                    }
                }
                Msg::Poison { .. } => unreachable!("poison handled before the gate"),
            }
        };
        if consumed_inbox {
            self.wake_waiters(tid);
        }
        if let Some(outcome) = early {
            return outcome;
        }

        // Everything available has been processed: complete if no more
        // input can ever arrive (per-channel FIFO means EOS is final).
        let source_drained = inner.source.as_ref().map_or(true, |s| s.is_empty());
        let ports_done = inner.port_done.iter().all(|d| *d);
        if source_drained
            && ports_done
            && inner.pending.is_empty()
            && inner.held.is_empty()
            && task.inbox.queue.lock().is_empty()
        {
            if inner.eos_delay > 0 {
                // Delayed-EOS fault: burn a run quantum before closing.
                inner.eos_delay -= 1;
                return RunOutcome::More;
            }
            if inner.drop_eos {
                // Dropped-EOS fault: finish without telling downstream.
                // The pool's stall detector eventually synthesizes the
                // missing markers; the drop itself is the recorded
                // failure.
                if self
                    .faults
                    .as_ref()
                    .is_some_and(|f| f.report_eos_drop(meta.op))
                {
                    let name = self.tracer.probe(meta.op).name().to_owned();
                    self.fail_op(
                        meta.op,
                        WorkflowError::OperatorFailed {
                            operator: name,
                            message: "end-of-stream markers dropped (injected fault)".to_owned(),
                        },
                    );
                }
                inner.done = true;
                return RunOutcome::Done;
            }
            if !inner.eos_queued {
                inner.eos_queued = true;
                // An operator that itself ran on truncated input passes
                // the taint downstream with its EOS.
                let tainted = matches!(
                    self.tracer.probe(meta.op).state(),
                    OperatorState::Degraded | OperatorState::Failed
                );
                for edge in &meta.downstream {
                    for &dest in &edge.dests {
                        if tainted {
                            self.tracer.on_degraded(self.tasks[dest].meta.op);
                        }
                        inner
                            .outbox
                            .push_back((dest, Msg::Eos { port: edge.to_port }));
                    }
                }
            }
            if !self.flush_outbox(tid, inner) {
                return RunOutcome::Yield;
            }
            inner.done = true;
            return RunOutcome::Done;
        }
        RunOutcome::Yield
    }

    /// Run quantum for a failed task: abandon its own output, close its
    /// downstream edges exactly once (marking direct consumers
    /// [`OperatorState::Degraded`] — their input is truncated), and keep
    /// consuming input so upstream producers never wedge on a dead
    /// consumer. Done once every input port has closed.
    fn drain_failed(&self, tid: usize, meta: &TaskStatic, inner: &mut TaskInner) -> RunOutcome {
        let task = &self.tasks[tid];
        inner.source = None;
        inner.replay = None;
        // EOS parked in the hold/pending buffers — including markers the
        // stall detector synthesized — still counts toward closing the
        // ports. Blindly clearing these buffers livelocked combined
        // kill+drop-EOS plans: every recovery pass re-synthesized the
        // markers into `pending`, every drain quantum discarded them,
        // and `eos_remaining` never reached zero.
        for msg in inner.pending.drain(..).chain(inner.held.drain(..)) {
            if let Msg::Eos { port } = msg {
                inner.eos_remaining[port] = inner.eos_remaining[port].saturating_sub(1);
                if inner.eos_remaining[port] == 0 {
                    inner.port_done[port] = true;
                }
            }
        }
        if !inner.eos_queued {
            inner.eos_queued = true;
            inner.outbox.clear();
            for edge in &meta.downstream {
                for &dest in &edge.dests {
                    self.tracer.on_degraded(self.tasks[dest].meta.op);
                    inner
                        .outbox
                        .push_back((dest, Msg::Eos { port: edge.to_port }));
                }
            }
        }
        if !self.flush_outbox(tid, inner) {
            return RunOutcome::Yield;
        }
        let mut consumed = false;
        loop {
            let msg = match task.inbox.queue.lock().pop_front() {
                Some(m) => m,
                None => break,
            };
            consumed = true;
            self.tracer.on_mailbox_pop(meta.op);
            // Data and poison are discarded unprocessed; EOS still
            // counts toward closing the port.
            if let Msg::Eos { port } = msg {
                inner.eos_remaining[port] = inner.eos_remaining[port].saturating_sub(1);
                if inner.eos_remaining[port] == 0 {
                    inner.port_done[port] = true;
                }
            }
        }
        if consumed {
            self.wake_waiters(tid);
        }
        if inner.port_done.iter().all(|d| *d) {
            inner.done = true;
            return RunOutcome::Done;
        }
        RunOutcome::Yield
    }

    /// Last-resort recovery, run by the final pool thread to go idle
    /// while tasks are still active: some EOS markers were dropped (a
    /// [`crate::fault::FaultKind::DropEos`] fault), so starving consumers
    /// are handed synthesized EOS and marked [`OperatorState::Degraded`].
    /// If there is nothing to synthesize, the stragglers are
    /// force-finished so the run still terminates — once the pipeline is
    /// wedged, termination beats completeness. On a run-private pool the
    /// last idle worker calls this; on a shared service pool the service
    /// invokes it for each wedged run once the whole pool goes quiet.
    pub(crate) fn recover_stall(&self) {
        self.stall_recoveries.fetch_add(1, Ordering::Relaxed);
        let mut progressed = false;
        for (tid, task) in self.tasks.iter().enumerate() {
            let mut guard = task.inner.lock();
            let inner = &mut *guard;
            if inner.done {
                continue;
            }
            let missing: usize = inner
                .port_done
                .iter()
                .zip(&inner.eos_remaining)
                .filter(|(done, _)| !**done)
                .map(|(_, remaining)| *remaining)
                .sum();
            if missing == 0 {
                continue;
            }
            for p in 0..inner.port_done.len() {
                if inner.port_done[p] {
                    continue;
                }
                for _ in 0..inner.eos_remaining[p] {
                    inner.pending.push_back(Msg::Eos { port: p });
                }
            }
            self.tracer.on_degraded(task.meta.op);
            drop(guard);
            self.schedule(tid);
            progressed = true;
        }
        if progressed {
            return;
        }
        // Nothing to synthesize — the wedge is structural. Force the
        // stragglers over the line so every thread still joins.
        for task in &self.tasks {
            let mut inner = task.inner.lock();
            if inner.done {
                continue;
            }
            inner.done = true;
            drop(inner);
            let name = self.tracer.probe(task.meta.op).name().to_owned();
            // A force-finished task never saw EOS: its input is
            // truncated, so it must surface as `Degraded` — neither a
            // clean `Completed` (which `on_worker_done` below would
            // otherwise promote) nor `Failed` (the fault lies upstream).
            // The stall itself is still recorded as the run's error.
            self.tracer.on_degraded(task.meta.op);
            let mut g = self.error.lock();
            if g.is_none() {
                *g = Some(WorkflowError::OperatorFailed {
                    operator: name,
                    message: "pipeline stalled; task force-finished".to_owned(),
                });
            }
            drop(g);
            self.tracer.on_worker_done(task.meta.op);
            self.task_done();
        }
    }

    fn worker_loop(&self) {
        loop {
            let tid = {
                let mut q = self.run_queue.lock();
                loop {
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    if let Some(t) = q.pop_front() {
                        break t;
                    }
                    // Quiescence check: every pool thread parked, nothing
                    // queued, tasks still nominally active — the pipeline
                    // has stalled (a dropped EOS). The last thread to
                    // park recovers it, outside the queue lock.
                    let idle = self.idle_threads.fetch_add(1, Ordering::AcqRel) + 1;
                    if idle == self.pool_threads
                        && self.active.load(Ordering::Acquire) > 0
                        && q.is_empty()
                    {
                        self.idle_threads.fetch_sub(1, Ordering::AcqRel);
                        drop(q);
                        self.recover_stall();
                        q = self.run_queue.lock();
                        continue;
                    }
                    self.cv.wait(&mut q);
                    self.idle_threads.fetch_sub(1, Ordering::AcqRel);
                }
            };
            self.step(tid);
        }
    }

    /// Execute one scheduling round of task `tid`: claim it
    /// (`QUEUED → RUNNING`), run one quantum with panic capture, and
    /// dispatch the outcome — re-queue, park (deferred retry backoff),
    /// idle, or completion accounting. Stale queue entries (the task was
    /// already claimed or re-queued) are skipped. Shared by the local
    /// [`Pool::worker_loop`] and the service's pool-wide workers.
    pub(crate) fn step(&self, tid: usize) {
        let task = &self.tasks[tid];
        if task
            .state
            .compare_exchange(QUEUED, RUNNING, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return;
        }
        let quantum_start = Instant::now();
        // A panic inside the quantum — organic or injected — costs
        // one operator, not the pool: capture it here, mark the
        // owner `Failed`, and let the task drain like any other
        // failure. This is what keeps a scoped-thread join from
        // tearing the whole run down.
        let outcome =
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.run_task(tid))) {
                Ok(o) => o,
                Err(payload) => {
                    let mut inner = task.inner.lock();
                    if self.try_retry(&task.meta, &mut inner) {
                        // The faulted quantum's partial output is
                        // discarded; the stashed replay (or re-queued
                        // source chunk) regenerates it.
                        let _ = inner.collector.take();
                        let _ = inner.collector.take_spill();
                    } else {
                        let name = self.tracer.probe(task.meta.op).name().to_owned();
                        self.fail_task(
                            task.meta.op,
                            &mut inner,
                            WorkflowError::OperatorFailed {
                                operator: name,
                                message: format!("worker panicked: {}", panic_text(payload)),
                            },
                        );
                    }
                    RunOutcome::More
                }
            };
        self.tracer.on_busy(task.meta.op, quantum_start.elapsed());
        self.task_runs.fetch_add(1, Ordering::Relaxed);
        match outcome {
            RunOutcome::More => {
                task.state.store(QUEUED, Ordering::Release);
                // A deferred retry parks the task until its backoff
                // elapses instead of re-queuing it immediately. The
                // QUEUED state it keeps while parked means later
                // `schedule` calls treat it as already queued.
                let park = task.inner.lock().park_until.take();
                match (park, &self.sched) {
                    (Some(until), Some((sched, run))) => {
                        if let Some(s) = sched.upgrade() {
                            s.task_parked(*run, tid, until);
                        }
                    }
                    _ => self.enqueue(tid),
                }
            }
            RunOutcome::Yield => {
                // A schedule request that arrived mid-run dirtied the
                // state; honor it by re-queuing instead of idling.
                if task
                    .state
                    .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    task.state.store(QUEUED, Ordering::Release);
                    self.enqueue(tid);
                }
            }
            RunOutcome::Done => {
                task.state.store(IDLE, Ordering::Release);
                {
                    let inner = task.inner.lock();
                    if inner.retried && !inner.failed {
                        self.retries_succeeded.fetch_add(1, Ordering::Relaxed);
                    }
                }
                self.tracer.on_worker_done(task.meta.op);
                self.task_done();
            }
        }
    }
}

/// Best-effort text of a panic payload (the `&str`/`String` cases the
/// standard `panic!` macro produces).
fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(p) => match p.downcast::<&'static str>() {
            Ok(s) => (*s).to_owned(),
            Err(_) => "non-string panic payload".to_owned(),
        },
    }
}

/// Seal one non-empty edge chunk as a [`SharedBatch`]: columnar (with
/// per-column min/max statistics computed once here, on the producer
/// side) when the executor runs in columnar mode, plain shared rows
/// otherwise.
fn seal_chunk(columnar: bool, chunk: Vec<Tuple>) -> SharedBatch {
    if columnar {
        let schema = chunk[0].schema().clone();
        SharedBatch::from_columnar(ColumnarBatch::from_tuples(schema, &chunk))
    } else {
        SharedBatch::new(chunk)
    }
}

/// Split an owned tuple vector into `size`-bounded chunks without copying
/// tuple data (each chunk is carved off by `split_off`).
fn chunk_owned(mut tuples: Vec<Tuple>, size: usize, mut emit: impl FnMut(Vec<Tuple>)) {
    debug_assert!(size > 0);
    while tuples.len() > size {
        let rest = tuples.split_off(size);
        let head = std::mem::replace(&mut tuples, rest);
        emit(head);
    }
    if !tuples.is_empty() {
        emit(tuples);
    }
}

pub(crate) fn default_pool_size() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Build the per-(operator, worker) task set for `wf`: routing tables,
/// mailboxes, pre-chunked source partitions, and the fault/retry knobs
/// baked into each task's static half. Shared by the single-run pooled
/// executor and the multi-tenant service (which builds tasks at submit
/// time, before the run is admitted to the shared pool).
pub(crate) fn build_tasks(
    wf: &Workflow,
    batch_size: usize,
    channel_capacity: usize,
    faults: Option<&CompiledFaults>,
    retry: &RetryConfig,
    columnar: bool,
    memory_budget: Option<usize>,
) -> Vec<Task> {
    // Global task id per (operator, local worker).
    let mut task_of: Vec<Vec<usize>> = Vec::with_capacity(wf.ops().len());
    let mut next = 0usize;
    for node in wf.ops() {
        task_of.push((next..next + node.parallelism).collect());
        next += node.parallelism;
    }

    let mut tasks: Vec<Task> = Vec::with_capacity(next);
    for (i, node) in wf.ops().iter().enumerate() {
        let op = OpId(i);
        let downstream: Vec<EdgeOut> = wf
            .out_edges(op)
            .into_iter()
            .map(|(eid, e)| EdgeOut {
                to_port: e.to_port,
                partitioner: wf.partitioner(eid).clone(),
                dests: task_of[e.to.0].clone(),
            })
            .collect();
        let ports = node.factory.input_ports();
        let mut expected_eos = vec![0usize; ports];
        for (_, e) in wf.in_edges(op) {
            expected_eos[e.to_port] += wf.op(e.from).parallelism;
        }
        let blocking = node.factory.blocking_ports();
        for local in 0..node.parallelism {
            let source = if ports == 0 {
                let parts = node
                    .factory
                    .source_partitions(node.parallelism)
                    .expect("validated at build time");
                let mine = parts.into_iter().nth(local).unwrap_or_default();
                let mut chunks = VecDeque::new();
                chunk_owned(mine, batch_size, |c| chunks.push_back(c));
                Some(chunks)
            } else {
                None
            };
            tasks.push(Task {
                meta: TaskStatic {
                    op: i,
                    downstream: downstream.clone(),
                    blocking: blocking.clone(),
                    batch_size,
                    slow_edge: faults.and_then(|f| f.slow_edge(i)),
                    retry: *retry.policy_for(node.factory.name()),
                    columnar,
                },
                inner: Mutex::new(TaskInner {
                    instance: {
                        let mut inst = node.factory.create();
                        inst.set_memory_budget(memory_budget);
                        inst
                    },
                    collector: OutputCollector::with_capacity(batch_size),
                    seqs: vec![0; downstream.len()],
                    scatter: downstream
                        .iter()
                        .map(|e| vec![Vec::new(); e.dests.len()])
                        .collect(),
                    outbox: VecDeque::new(),
                    eos_remaining: expected_eos.clone(),
                    port_done: vec![false; ports],
                    held: VecDeque::new(),
                    pending: VecDeque::new(),
                    source,
                    eos_queued: false,
                    done: false,
                    failed: false,
                    drop_eos: faults.is_some_and(|f| f.drops_eos(i)),
                    eos_delay: faults.map_or(0, |f| f.eos_delay(i)),
                    replay: None,
                    retries_used: 0,
                    retried: false,
                    park_until: None,
                }),
                inbox: Inbox {
                    queue: Mutex::new(VecDeque::new()),
                    capacity: channel_capacity,
                },
                waiters: Mutex::new(Vec::new()),
                state: AtomicU8::new(IDLE),
            });
        }
    }
    tasks
}

impl LiveExecutor {
    fn run_pooled(&self, wf: &Workflow) -> (ProgressTrace, WorkflowResult<LiveRunResult>) {
        let start = Instant::now();

        // A fault plan naming an unknown operator is a harness bug:
        // refuse the run before spawning anything.
        let faults = match &self.faults {
            Some(plan) => match CompiledFaults::compile(plan, wf) {
                Ok(f) => Some(f),
                Err(e) => return (ProgressTrace::default(), Err(e)),
            },
            None => None,
        };

        let tasks = build_tasks(
            wf,
            self.batch_size,
            self.channel_capacity,
            faults.as_ref(),
            &self.retry,
            self.columnar,
            self.memory_budget,
        );

        let n_tasks = tasks.len();
        let pool_threads = self.pool_size.unwrap_or_else(default_pool_size).max(1);
        let names: Vec<String> = wf
            .ops()
            .iter()
            .map(|n| n.factory.name().to_owned())
            .collect();
        let workers: Vec<usize> = wf.ops().iter().map(|n| n.parallelism).collect();
        let pool = Pool {
            tasks,
            run_queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            error: Mutex::new(None),
            active: AtomicUsize::new(n_tasks),
            faults,
            pool_threads,
            idle_threads: AtomicUsize::new(0),
            stall_recoveries: AtomicU64::new(0),
            tracer: LiveTracer::new(names, &workers),
            task_runs: AtomicU64::new(0),
            batches_sent: AtomicU64::new(0),
            retries_attempted: AtomicU64::new(0),
            retries_succeeded: AtomicU64::new(0),
            sampler_seat: Mutex::new(()),
            sampler_cv: Condvar::new(),
            sched: None,
            defer_retries: false,
        };

        // Seed: every task gets one initial run (sources start emitting,
        // consumers find empty mailboxes and go idle until woken).
        {
            let mut q = pool.run_queue.lock();
            for (tid, task) in pool.tasks.iter().enumerate() {
                task.state.store(QUEUED, Ordering::Release);
                q.push_back(tid);
            }
        }

        // Interval samples collected by the sampler thread; the terminal
        // sample is appended by `finish` after the pool drains.
        let samples = Mutex::new(Vec::new());
        let joined = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crossbeam::thread::scope(|scope| {
                for _ in 0..pool_threads {
                    scope.spawn(|_| pool.worker_loop());
                }
                if let Some(interval) = self.trace_interval {
                    samples.lock().push(pool.tracer.snapshot());
                    let (pool, samples) = (&pool, &samples);
                    scope.spawn(move |_| {
                        let mut seat = pool.sampler_seat.lock();
                        while !pool.shutdown.load(Ordering::Acquire) {
                            // Either the interval elapses (sample and loop) or
                            // shutdown notifies the condvar (re-check and exit);
                            // a missed notify costs at most one extra interval.
                            pool.sampler_cv.wait_for(&mut seat, interval);
                            if pool.shutdown.load(Ordering::Acquire) {
                                break;
                            }
                            samples.lock().push(pool.tracer.snapshot());
                        }
                    });
                }
            })
        }));
        // Task panics are captured inside `worker_loop`, so reaching this
        // arm means the pool infrastructure itself panicked mid-join.
        // Record it as the run's error instead of propagating the abort;
        // the trace assembled below is still intact.
        if !matches!(&joined, Ok(Ok(()))) {
            let mut g = pool.error.lock();
            if g.is_none() {
                *g = Some(WorkflowError::OperatorFailed {
                    operator: "<pool>".to_owned(),
                    message: "a pool thread panicked outside task execution".to_owned(),
                });
            }
        }

        let trace = pool.tracer.finish(samples.into_inner());

        if let Some(e) = pool.error.lock().take() {
            return (trace, Err(e));
        }

        let elapsed = start.elapsed();
        let result = Self::result_pooled(wf, elapsed, &pool.tracer, pool.stats(), trace.clone());
        (trace, Ok(result))
    }
}

// ---------------------------------------------------------------------------
// Thread-per-worker executor (baseline)
// ---------------------------------------------------------------------------

/// Message on a legacy channel: tuples are owned and deep-cloned per
/// routed destination — the cost the pooled executor eliminates.
enum LegacyMsg {
    Batch { port: usize, tuples: Vec<Tuple> },
    Eos { port: usize },
}

impl LiveExecutor {
    fn run_threads(&self, wf: &Workflow) -> WorkflowResult<LiveRunResult> {
        let start = Instant::now();

        // Channel per (op, worker): all upstream workers share one sender.
        let mut txs: Vec<Vec<Sender<LegacyMsg>>> = Vec::new();
        let mut rxs: Vec<Vec<Option<Receiver<LegacyMsg>>>> = Vec::new();
        for node in wf.ops() {
            let mut t = Vec::new();
            let mut r = Vec::new();
            for _ in 0..node.parallelism {
                let (tx, rx) = unbounded::<LegacyMsg>();
                t.push(tx);
                r.push(Some(rx));
            }
            txs.push(t);
            rxs.push(r);
        }

        let error: Arc<Mutex<Option<WorkflowError>>> = Arc::new(Mutex::new(None));
        let in_counts: Vec<AtomicU64> = wf.ops().iter().map(|_| AtomicU64::new(0)).collect();
        let out_counts: Vec<AtomicU64> = wf.ops().iter().map(|_| AtomicU64::new(0)).collect();

        crossbeam::thread::scope(|scope| {
            for (i, node) in wf.ops().iter().enumerate() {
                let op = OpId(i);
                // Downstream senders per out-edge: (to_port, strategy,
                // senders to each downstream worker).
                let downstream: Vec<_> = wf
                    .out_edges(op)
                    .into_iter()
                    .map(|(_, e)| (e.to_port, e.partition.clone(), txs[e.to.0].clone()))
                    .collect();
                // Expected EOS per port = sum of upstream parallelism.
                let ports = node.factory.input_ports();
                let mut expected_eos = vec![0usize; ports.max(1)];
                for (_, e) in wf.in_edges(op) {
                    expected_eos[e.to_port] += wf.op(e.from).parallelism;
                }
                let blocking = node.factory.blocking_ports();

                #[allow(clippy::needless_range_loop)]
                for local in 0..node.parallelism {
                    let rx = rxs[i][local].take();
                    let factory = node.factory.as_ref();
                    let downstream = downstream.clone();
                    let expected_eos = expected_eos.clone();
                    let blocking = blocking.clone();
                    let error = error.clone();
                    let in_counts = &in_counts;
                    let out_counts = &out_counts;
                    let batch_size = self.batch_size;
                    let parallelism = node.parallelism;
                    let memory_budget = self.memory_budget;

                    scope.spawn(move |_| {
                        let mut instance = factory.create();
                        instance.set_memory_budget(memory_budget);
                        let mut seqs = vec![0u64; downstream.len()];
                        let mut collector = OutputCollector::new();
                        let fail = |e: WorkflowError, error: &Mutex<Option<WorkflowError>>| {
                            let mut g = error.lock();
                            if g.is_none() {
                                *g = Some(e);
                            }
                        };

                        // Forward helper: route + send collector contents.
                        let forward =
                            |tuples: Vec<Tuple>,
                             seqs: &mut [u64],
                             error: &Mutex<Option<WorkflowError>>| {
                                out_counts[i].fetch_add(tuples.len() as u64, Ordering::Relaxed);
                                for (d, (to_port, strategy, senders)) in
                                    downstream.iter().enumerate()
                                {
                                    let mut routed: Vec<Vec<Tuple>> =
                                        vec![Vec::new(); senders.len()];
                                    for t in &tuples {
                                        match strategy.route(t, seqs[d], senders.len()) {
                                            Ok(ws) => {
                                                for w in ws {
                                                    routed[w].push(t.clone());
                                                }
                                            }
                                            Err(e) => {
                                                fail(e, error);
                                                return;
                                            }
                                        }
                                        seqs[d] += 1;
                                    }
                                    for (w, chunk) in routed.into_iter().enumerate() {
                                        for part in chunk.chunks(batch_size) {
                                            // A closed channel means the consumer
                                            // died after an error; stop quietly.
                                            let _ = senders[w].send(LegacyMsg::Batch {
                                                port: *to_port,
                                                tuples: part.to_vec(),
                                            });
                                        }
                                    }
                                }
                            };

                        if factory.input_ports() == 0 {
                            // Source worker: emit own partition.
                            let parts = factory
                                .source_partitions(parallelism)
                                .expect("validated at build time");
                            let mine = parts.into_iter().nth(local).unwrap_or_default();
                            for chunk in mine.chunks(batch_size) {
                                forward(chunk.to_vec(), &mut seqs, &error);
                            }
                        } else if let Some(rx) = rx {
                            let mut eos_remaining = expected_eos.clone();
                            let mut port_done = vec![false; eos_remaining.len()];
                            let mut held: Vec<LegacyMsg> = Vec::new();
                            let gate_open = |done: &[bool]| blocking.iter().all(|&p| done[p]);
                            let mut pending: VecDeque<LegacyMsg> = Default::default();
                            'recv: loop {
                                let msg = if let Some(m) = pending.pop_front() {
                                    m
                                } else {
                                    match rx.recv() {
                                        Ok(m) => m,
                                        Err(_) => break 'recv,
                                    }
                                };
                                let msg_port = match &msg {
                                    LegacyMsg::Batch { port, .. } | LegacyMsg::Eos { port } => {
                                        *port
                                    }
                                };
                                if !gate_open(&port_done) && !blocking.contains(&msg_port) {
                                    held.push(msg);
                                    continue;
                                }
                                match msg {
                                    LegacyMsg::Batch { port, tuples } => {
                                        in_counts[i]
                                            .fetch_add(tuples.len() as u64, Ordering::Relaxed);
                                        for t in tuples {
                                            if let Err(e) =
                                                instance.on_tuple(t, port, &mut collector)
                                            {
                                                fail(e, &error);
                                                break 'recv;
                                            }
                                        }
                                        if !collector.is_empty() {
                                            forward(collector.take(), &mut seqs, &error);
                                        }
                                    }
                                    LegacyMsg::Eos { port } => {
                                        eos_remaining[port] = eos_remaining[port].saturating_sub(1);
                                        if eos_remaining[port] == 0 && !port_done[port] {
                                            port_done[port] = true;
                                            if let Err(e) =
                                                instance.on_port_complete(port, &mut collector)
                                            {
                                                fail(e, &error);
                                                break 'recv;
                                            }
                                            if !collector.is_empty() {
                                                forward(collector.take(), &mut seqs, &error);
                                            }
                                            if gate_open(&port_done) && !held.is_empty() {
                                                for m in held.drain(..) {
                                                    pending.push_back(m);
                                                }
                                            }
                                        }
                                        if port_done.iter().all(|d| *d) && pending.is_empty() {
                                            break 'recv;
                                        }
                                    }
                                }
                            }
                        }

                        // Tell every downstream worker this producer is done.
                        for (to_port, _, senders) in &downstream {
                            for s in senders {
                                let _ = s.send(LegacyMsg::Eos { port: *to_port });
                            }
                        }
                        // Dropping our senders lets consumers drain and exit.
                    });
                }
            }
            // Drop the scope-owned senders so sinks see disconnect once all
            // producers exit.
            drop(txs);
        })
        .expect("a workflow worker thread panicked");

        if let Some(e) = error.lock().take() {
            return Err(e);
        }

        let elapsed = start.elapsed();
        Ok(Self::result_threads(wf, elapsed, &in_counts, &out_counts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::EngineConfig;
    use crate::dag::WorkflowBuilder;
    use crate::exec_sim::SimExecutor;
    use crate::ops::{FilterOp, HashJoinOp, ScanOp, SinkOp};
    use crate::partition::PartitionStrategy;
    use scriptflow_datakit::{Batch, DataType, Schema, Value};
    use scriptflow_simcluster::ClusterSpec;

    fn int_batch(n: i64) -> Batch {
        let schema = Schema::of(&[("id", DataType::Int)]);
        Batch::from_rows(schema, (0..n).map(|i| vec![Value::Int(i)]).collect()).unwrap()
    }

    fn build_filter_wf(n: i64, sink_handle: &mut Option<crate::ops::SinkHandle>) -> Workflow {
        let mut b = WorkflowBuilder::new();
        let scan = b.add(Arc::new(ScanOp::new("scan", int_batch(n))), 2);
        let filt = b.add(
            Arc::new(FilterOp::new("mod7", |t| Ok(t.get_int("id")? % 7 == 0))),
            3,
        );
        let sink_op = SinkOp::new("sink");
        *sink_handle = Some(sink_op.handle());
        let sink = b.add(Arc::new(sink_op), 1);
        b.connect(scan, filt, 0, PartitionStrategy::RoundRobin);
        b.connect(filt, sink, 0, PartitionStrategy::Single);
        b.build().unwrap()
    }

    #[test]
    fn live_run_produces_correct_results() {
        let mut handle = None;
        let wf = build_filter_wf(700, &mut handle);
        let res = LiveExecutor::default().run(&wf).unwrap();
        let handle = handle.unwrap();
        assert_eq!(handle.len(), 100);
        assert_eq!(res.metrics.by_name("mod7").unwrap().input_tuples, 700);
        assert_eq!(res.metrics.by_name("mod7").unwrap().output_tuples, 100);
    }

    #[test]
    fn live_columnar_matches_row_results_and_counts_skips() {
        use scriptflow_datakit::CmpOp;
        let run = |columnar: bool| {
            let mut b = WorkflowBuilder::new();
            let scan = b.add(Arc::new(ScanOp::new("scan", int_batch(800))), 1);
            // Ascending ids, single worker, batch size 16: every sealed
            // batch except the last two has max(id) < 770.
            let filt = b.add(
                Arc::new(FilterOp::cmp("sel", "id", CmpOp::Ge, Value::Int(770))),
                1,
            );
            let sink_op = SinkOp::new("sink");
            let handle = sink_op.handle();
            let sink = b.add(Arc::new(sink_op), 1);
            b.connect(scan, filt, 0, PartitionStrategy::RoundRobin);
            b.connect(filt, sink, 0, PartitionStrategy::Single);
            let wf = b.build().unwrap();
            let res = LiveExecutor::new(16)
                .with_pool_size(2)
                .with_columnar(columnar)
                .run(&wf)
                .unwrap();
            let mut rows: Vec<String> = handle.results().iter().map(|t| t.to_string()).collect();
            rows.sort();
            (rows, res)
        };
        let (rows_row, res_row) = run(false);
        let (rows_col, res_col) = run(true);
        assert_eq!(rows_row.len(), 30);
        assert_eq!(rows_row, rows_col, "batch modes must agree on results");
        assert_eq!(res_row.pool.unwrap().batches_skipped, 0);
        let stats = res_col.pool.unwrap();
        assert!(
            stats.batches_skipped > 0,
            "selective predicate over sorted ids must prune whole batches"
        );
        let m = res_col.metrics.by_name("sel").unwrap();
        assert_eq!(m.batches_skipped, stats.batches_skipped);
        assert_eq!(m.input_tuples, 800, "skipped batches still count as input");
        // The terminal trace sample carries the per-operator counter too.
        let (_, last) = res_col.trace.samples.last().unwrap();
        let sel = last.iter().find(|s| s.name == "sel").unwrap();
        assert_eq!(sel.batches_skipped, stats.batches_skipped);
    }

    #[test]
    fn live_columnar_retry_replays_exactly_once() {
        use crate::retry::{RetryConfig, RetryPolicy};
        use std::sync::atomic::AtomicU64;
        let calls = Arc::new(AtomicU64::new(0));
        let seen = calls.clone();
        let mut b = WorkflowBuilder::new();
        let scan = b.add(Arc::new(ScanOp::new("scan", int_batch(120))), 1);
        let flaky = b.add(
            Arc::new(FilterOp::new("flaky", move |t| {
                let id = t.get_int("id")?;
                if seen.fetch_add(1, Ordering::SeqCst) + 1 == 50 {
                    Err(scriptflow_datakit::DataError::Decode {
                        line: 0,
                        message: "transient".into(),
                    })
                } else {
                    Ok(id % 2 == 0)
                }
            })),
            1,
        );
        let sink_op = SinkOp::new("sink");
        let handle = sink_op.handle();
        let sink = b.add(Arc::new(sink_op), 1);
        b.connect(scan, flaky, 0, PartitionStrategy::RoundRobin);
        b.connect(flaky, sink, 0, PartitionStrategy::Single);
        let wf = b.build().unwrap();
        let res = LiveExecutor::new(16)
            .with_pool_size(1)
            .with_columnar(true)
            .with_retry(RetryConfig::uniform(RetryPolicy::attempts(3)))
            .run(&wf)
            .unwrap();
        // An organic error mid-columnar-batch discards the quantum's
        // partial output and replays the whole batch on the row path:
        // no loss, no duplication.
        assert_eq!(handle.len(), 60, "columnar retry must deliver exactly once");
        let stats = res.pool.unwrap();
        assert_eq!(stats.retries_attempted, 1);
        assert_eq!(stats.retries_succeeded, 1);
        let m = res.metrics.by_name("flaky").unwrap();
        assert_eq!(m.state, OperatorState::Completed);
        assert_eq!(m.input_tuples, 120, "replayed tuples must not recount");
    }

    #[test]
    fn live_matches_sim_outputs() {
        let mut live_handle = None;
        let wf_live = build_filter_wf(500, &mut live_handle);
        LiveExecutor::default().run(&wf_live).unwrap();

        let mut sim_handle = None;
        let wf_sim = build_filter_wf(500, &mut sim_handle);
        let cfg = EngineConfig {
            cluster: ClusterSpec::single_node(4),
            ..EngineConfig::default()
        };
        SimExecutor::new(cfg).run(&wf_sim).unwrap();

        let mut a: Vec<String> = live_handle
            .unwrap()
            .results()
            .iter()
            .map(|t| t.to_string())
            .collect();
        let mut b: Vec<String> = sim_handle
            .unwrap()
            .results()
            .iter()
            .map(|t| t.to_string())
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn live_join_blocks_probe_until_build_done() {
        let build_schema = Schema::of(&[("k", DataType::Int), ("tag", DataType::Str)]);
        let build = Batch::from_rows(
            build_schema,
            (0..10i64)
                .map(|k| vec![Value::Int(k), Value::Str(format!("t{k}"))])
                .collect(),
        )
        .unwrap();
        let probe_schema = Schema::of(&[("id", DataType::Int), ("k", DataType::Int)]);
        let probe = Batch::from_rows(
            probe_schema,
            (0..200i64)
                .map(|i| vec![Value::Int(i), Value::Int(i % 20)])
                .collect(),
        )
        .unwrap();
        let mut b = WorkflowBuilder::new();
        let bs = b.add(Arc::new(ScanOp::new("build", build)), 1);
        let ps = b.add(Arc::new(ScanOp::new("probe", probe)), 2);
        let join = b.add(Arc::new(HashJoinOp::new("join", &["k"], &["k"])), 2);
        let sink_op = SinkOp::new("sink");
        let handle = sink_op.handle();
        let sink = b.add(Arc::new(sink_op), 1);
        b.connect(bs, join, 0, PartitionStrategy::Hash(vec!["k".into()]));
        b.connect(ps, join, 1, PartitionStrategy::Hash(vec!["k".into()]));
        b.connect(join, sink, 0, PartitionStrategy::Single);
        let wf = b.build().unwrap();
        LiveExecutor::new(16).run(&wf).unwrap();
        // ids with k in 0..10 match: half of 200.
        assert_eq!(handle.len(), 100);
    }

    #[test]
    fn live_error_surfaces_and_terminates() {
        let mut b = WorkflowBuilder::new();
        let scan = b.add(Arc::new(ScanOp::new("scan", int_batch(50))), 1);
        let bad = b.add(
            Arc::new(FilterOp::new("bad", |t| {
                t.get_int("missing")?;
                Ok(true)
            })),
            2,
        );
        let sink = b.add(Arc::new(SinkOp::new("sink")), 1);
        b.connect(scan, bad, 0, PartitionStrategy::RoundRobin);
        b.connect(bad, sink, 0, PartitionStrategy::Single);
        let wf = b.build().unwrap();
        let err = LiveExecutor::default().run(&wf).unwrap_err();
        assert!(err.to_string().contains("bad"));
    }

    #[test]
    fn thread_per_worker_matches_pooled() {
        let mut h1 = None;
        let wf1 = build_filter_wf(400, &mut h1);
        let r1 = LiveExecutor::new(16).run(&wf1).unwrap();
        assert!(r1.pool.is_some());

        let mut h2 = None;
        let wf2 = build_filter_wf(400, &mut h2);
        let r2 = LiveExecutor::thread_per_worker(16).run(&wf2).unwrap();
        assert!(r2.pool.is_none());

        let mut a: Vec<String> = h1
            .unwrap()
            .results()
            .iter()
            .map(|t| t.to_string())
            .collect();
        let mut b: Vec<String> = h2
            .unwrap()
            .results()
            .iter()
            .map(|t| t.to_string())
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn bounded_channels_complete_under_backpressure() {
        let mut handle = None;
        let wf = build_filter_wf(3_000, &mut handle);
        // One pool thread + 2-message mailboxes: sources must stall and
        // yield so consumers can drain on the same thread.
        let res = LiveExecutor::new(8)
            .with_channel_capacity(2)
            .with_pool_size(1)
            .run(&wf)
            .unwrap();
        let expect = (0..3_000).filter(|i| i % 7 == 0).count();
        assert_eq!(handle.unwrap().len(), expect);
        let stats = res.pool.expect("pooled mode reports stats");
        assert!(
            stats.backpressure_stalls > 0,
            "tiny mailboxes must trigger backpressure: {stats:?}"
        );
    }

    #[test]
    fn pooled_run_reports_stats() {
        let mut handle = None;
        let wf = build_filter_wf(500, &mut handle);
        let res = LiveExecutor::new(32).with_pool_size(3).run(&wf).unwrap();
        let stats = res.pool.expect("pooled mode reports stats");
        assert_eq!(stats.pool_threads, 3);
        assert_eq!(stats.tasks, wf.total_workers());
        assert!(stats.task_runs >= stats.tasks as u64);
        assert!(stats.batches_sent > 0);
    }

    #[test]
    fn operator_counts_agree_across_executors() {
        let counts = |m: &RunMetrics, name: &str| {
            let m = m.by_name(name).unwrap();
            (m.input_tuples, m.output_tuples)
        };

        let mut h1 = None;
        let wf1 = build_filter_wf(300, &mut h1);
        let cfg = EngineConfig {
            cluster: ClusterSpec::single_node(4),
            ..EngineConfig::default()
        };
        let sim = SimExecutor::new(cfg).run(&wf1).unwrap();

        let mut h2 = None;
        let wf2 = build_filter_wf(300, &mut h2);
        let pooled = LiveExecutor::new(64).run(&wf2).unwrap();

        let mut h3 = None;
        let wf3 = build_filter_wf(300, &mut h3);
        let threads = LiveExecutor::thread_per_worker(64).run(&wf3).unwrap();

        for name in ["scan", "mod7", "sink"] {
            assert_eq!(
                counts(&sim.metrics, name),
                counts(&pooled.metrics, name),
                "sim vs pooled counts diverge at {name}"
            );
            assert_eq!(
                counts(&pooled.metrics, name),
                counts(&threads.metrics, name),
                "pooled vs threads counts diverge at {name}"
            );
        }
    }

    #[test]
    fn pooled_trace_is_sampled_and_terminal() {
        let mut handle = None;
        let wf = build_filter_wf(2_000, &mut handle);
        let res = LiveExecutor::new(8)
            .with_trace(Duration::from_micros(100))
            .run(&wf)
            .unwrap();
        assert!(!res.trace.is_empty());
        // The terminal sample mirrors the final metrics exactly.
        let (_, last) = res.trace.samples.last().unwrap();
        for snap in last {
            let m = res.metrics.by_name(&snap.name).unwrap();
            assert_eq!(snap.input_tuples, m.input_tuples, "{}", snap.name);
            assert_eq!(snap.output_tuples, m.output_tuples, "{}", snap.name);
            assert_eq!(snap.state, OperatorState::Completed, "{}", snap.name);
        }
        // Sample times never go backwards.
        for pair in res.trace.samples.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
        }
        // The same trace renders through the sim executor's timeline.
        let rendered = crate::trace::render_timeline(&res.trace);
        assert!(rendered.contains("mod7"));
    }

    #[test]
    fn untraced_pooled_run_still_carries_terminal_sample() {
        let mut handle = None;
        let wf = build_filter_wf(100, &mut handle);
        let res = LiveExecutor::new(16).run(&wf).unwrap();
        assert_eq!(res.trace.len(), 1);
        let (_, last) = res.trace.samples.last().unwrap();
        assert!(last.iter().all(|s| s.state.is_terminal()));
    }

    #[test]
    fn failed_operator_surfaces_in_live_trace() {
        let mut b = WorkflowBuilder::new();
        let scan = b.add(Arc::new(ScanOp::new("scan", int_batch(50))), 1);
        let bad = b.add(
            Arc::new(FilterOp::new("boom", |t| {
                t.get_int("missing")?;
                Ok(true)
            })),
            2,
        );
        let sink = b.add(Arc::new(SinkOp::new("sink")), 1);
        b.connect(scan, bad, 0, PartitionStrategy::RoundRobin);
        b.connect(bad, sink, 0, PartitionStrategy::Single);
        let wf = b.build().unwrap();
        let (trace, result) = LiveExecutor::new(8).run_observed(&wf);
        assert!(result.is_err());
        assert!(!trace.is_empty());
        let (_, last) = trace.samples.last().unwrap();
        let boom = last.iter().find(|s| s.name == "boom").unwrap();
        assert_eq!(boom.state, OperatorState::Failed);
    }

    #[test]
    fn pooled_stats_report_peak_mailbox_depth() {
        let mut handle = None;
        let wf = build_filter_wf(2_000, &mut handle);
        let res = LiveExecutor::new(8)
            .with_channel_capacity(2)
            .with_pool_size(1)
            .run(&wf)
            .unwrap();
        let stats = res.pool.expect("pooled mode reports stats");
        // 2 000 tuples in batches of 8 through capacity-2 mailboxes on a
        // single pool thread must queue at least one message somewhere.
        // Only a lower bound is deterministic: the peak counts messages
        // across an operator's worker mailboxes at delivery time, and
        // scheduling jitter can briefly stack more than one capacity's
        // worth (an exact `<= capacity` assertion flaked under load).
        assert!(
            stats.peak_mailbox_depth >= 1,
            "saturated run must report a mailbox high-water mark: {stats:?}"
        );
    }

    #[test]
    fn pooled_metrics_report_busy_time() {
        let mut handle = None;
        let wf = build_filter_wf(1_000, &mut handle);
        let res = LiveExecutor::new(16).run(&wf).unwrap();
        let total_busy: f64 = res
            .metrics
            .operators
            .iter()
            .map(|m| m.busy.as_secs_f64())
            .sum();
        assert!(total_busy > 0.0, "run quanta accumulate busy time");
    }

    #[test]
    fn live_memory_budget_spills_and_matches_unbounded() {
        let run = |budget: Option<usize>| {
            let build_schema = Schema::of(&[("k", DataType::Int), ("tag", DataType::Str)]);
            let build = Batch::from_rows(
                build_schema,
                (0..80i64)
                    .map(|i| vec![Value::Int(i % 13), Value::Str(format!("b{i}"))])
                    .collect(),
            )
            .unwrap();
            let probe_schema = Schema::of(&[("id", DataType::Int), ("k", DataType::Int)]);
            let probe = Batch::from_rows(
                probe_schema,
                (0..60i64)
                    .map(|i| vec![Value::Int(i), Value::Int(i % 17)])
                    .collect(),
            )
            .unwrap();
            let mut b = WorkflowBuilder::new();
            let bs = b.add(Arc::new(ScanOp::new("build", build)), 1);
            let ps = b.add(Arc::new(ScanOp::new("probe", probe)), 1);
            let join = b.add(Arc::new(HashJoinOp::new("join", &["k"], &["k"])), 1);
            let sink_op = SinkOp::new("sink");
            let handle = sink_op.handle();
            let sink = b.add(Arc::new(sink_op), 1);
            b.connect(bs, join, 0, PartitionStrategy::Hash(vec!["k".into()]));
            b.connect(ps, join, 1, PartitionStrategy::Hash(vec!["k".into()]));
            b.connect(join, sink, 0, PartitionStrategy::Single);
            let wf = b.build().unwrap();
            let res = LiveExecutor::new(16)
                .with_pool_size(2)
                .with_memory_budget(budget)
                .run(&wf)
                .unwrap();
            let mut rows: Vec<String> = handle.results().iter().map(|t| t.to_string()).collect();
            rows.sort();
            (rows, res)
        };
        let (rows_mem, res_mem) = run(None);
        let (rows_spill, res_spill) = run(Some(256));
        assert!(!rows_mem.is_empty());
        assert_eq!(rows_mem, rows_spill, "spilling must not change results");
        assert_eq!(res_mem.pool.unwrap().spilled_blocks, 0);
        let stats = res_spill.pool.unwrap();
        assert!(stats.spilled_blocks > 0, "tiny budget must force a spill");
        assert!(stats.spilled_bytes > 0);
        assert!(stats.spill_reads > 0, "spilled partitions must be read back");
        let m = res_spill.metrics.by_name("join").unwrap();
        assert_eq!(m.spilled_blocks, stats.spilled_blocks);
        assert_eq!(m.spill_reads, stats.spill_reads);
        // The terminal trace sample carries the per-operator counter too.
        let (_, last) = res_spill.trace.samples.last().unwrap();
        let join_snap = last.iter().find(|s| s.name == "join").unwrap();
        assert_eq!(join_snap.spilled_blocks, stats.spilled_blocks);
    }

    #[test]
    fn pooled_error_surfaces_in_both_modes() {
        for mode in [ExecMode::Pooled, ExecMode::ThreadPerWorker] {
            let mut b = WorkflowBuilder::new();
            let scan = b.add(Arc::new(ScanOp::new("scan", int_batch(50))), 1);
            let bad = b.add(
                Arc::new(FilterOp::new("exploder", |t| {
                    t.get_int("missing")?;
                    Ok(true)
                })),
                2,
            );
            let sink = b.add(Arc::new(SinkOp::new("sink")), 1);
            b.connect(scan, bad, 0, PartitionStrategy::RoundRobin);
            b.connect(bad, sink, 0, PartitionStrategy::Single);
            let wf = b.build().unwrap();
            let err = LiveExecutor::new(8).with_mode(mode).run(&wf).unwrap_err();
            assert!(err.to_string().contains("exploder"), "{mode:?}: {err}");
        }
    }
}
