//! Pipelined discrete-event executor.
//!
//! This is the core of the workflow paradigm reproduction: operators run
//! as parallel workers placed on cluster machines, batches stream along
//! edges the moment they are produced (no stage barriers), and every
//! boundary crossing pays serialization / network / cross-language costs
//! from the calibrated model. The **data transforms really execute** —
//! outputs are bit-identical to the live threaded executor — while time
//! advances on the virtual clock, so experiment results are deterministic
//! and laptop-fast regardless of the modelled cluster size.

use std::collections::VecDeque;

use scriptflow_datakit::{ColumnarBatch, Tuple};
use scriptflow_simcluster::des::{self, Scheduler, SimModel};
use scriptflow_simcluster::{Language, SimDuration, SimTime};

use crate::cost::EngineConfig;
use crate::dag::{EdgeId, OpId, Workflow};
use crate::metrics::{OperatorMetrics, OperatorState, RunMetrics};
use crate::operator::{Operator, WorkflowError, WorkflowResult};
use crate::trace::{OperatorSnapshot, ProgressTrace};

/// Global worker index across all operators.
type WorkerId = usize;

/// Queue/serviced items at a worker.
enum Item {
    /// Data tuples arriving on an input port.
    Batch { port: usize, tuples: Vec<Tuple> },
    /// A faulted quantum's batch, re-delivered under a retry budget
    /// (see [`crate::retry`]): serviced like a fresh batch — the replay
    /// is a real virtual quantum — but its tuples were already counted
    /// as input when the quantum first ran.
    Retry { port: usize, tuples: Vec<Tuple> },
    /// End-of-stream marker from one upstream worker on a port.
    Eos { port: usize },
    /// A chunk of a source operator's own data.
    Source { tuples: Vec<Tuple> },
    /// Source exhausted.
    SourceDone,
}

/// DES events.
enum Ev {
    /// An item arrives at a worker's input queue.
    Deliver { worker: WorkerId, item: Item },
    /// A worker finishes servicing its current item.
    Finish { worker: WorkerId },
    /// A worker finishes the spill I/O its last quantum incurred (block
    /// writes past the memory budget, partition read-backs). The worker
    /// stays busy until released; never scheduled when nothing spills,
    /// so unbounded runs replay the pre-spill event sequence exactly.
    Release { worker: WorkerId },
}

/// One contiguous busy interval of a worker (for Gantt rendering and
/// utilization analysis). Only recorded when
/// [`SimExecutor::with_worker_timeline`] is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerInterval {
    /// The operator.
    pub op: OpId,
    /// Worker index within the operator.
    pub worker: usize,
    /// Service start.
    pub start: SimTime,
    /// Service end.
    pub end: SimTime,
}

/// Result of a simulated run.
#[derive(Debug, Clone)]
pub struct SimRunResult {
    /// End-to-end virtual time, including job submission overhead.
    pub makespan: SimTime,
    /// Instrumentation counters.
    pub metrics: RunMetrics,
    /// Sampled progress timeline. Always holds at least the terminal
    /// sample; interval samples require [`SimExecutor::with_trace`].
    pub trace: ProgressTrace,
    /// Per-worker busy intervals (empty unless
    /// [`SimExecutor::with_worker_timeline`] was configured).
    pub worker_timeline: Vec<WorkerInterval>,
    /// Faulted quanta replayed under an [`EngineConfig::retry`] budget
    /// (0 without a policy — and the run is then byte-identical to the
    /// pre-retry engine).
    pub retries_attempted: u64,
    /// Workers that replayed at least one faulted quantum and still
    /// finished cleanly.
    pub retries_succeeded: u64,
    /// Compressed bytes this run published into the result cache (0
    /// without [`EngineConfig::result_cache`], or when a dirty run —
    /// one that spent retries — discarded its recordings).
    pub cache_published: u64,
}

/// Per-worker runtime state.
struct WorkerState {
    op: OpId,
    local_idx: usize,
    machine: usize,
    queue: VecDeque<Item>,
    /// Items held back because their port is gated behind blocking ports.
    held: VecDeque<Item>,
    busy: bool,
    current: Option<Item>,
    started: bool,
    /// Remaining EOS per port before the port completes.
    eos_remaining: Vec<usize>,
    /// Ports already completed.
    port_done: Vec<bool>,
    /// Source chunks not yet enqueued (sources only).
    finished: bool,
    busy_time: SimDuration,
    /// Tuples this worker has serviced (drives warm-up accounting).
    processed: u64,
    /// Quantum replays consumed from the worker's retry budget.
    retries_used: u32,
    /// The worker replayed at least one faulted quantum.
    retried: bool,
}

impl WorkerState {
    fn all_ports_done(&self) -> bool {
        self.port_done.iter().all(|d| *d)
    }

    fn gate_open(&self, blocking: &[usize]) -> bool {
        blocking.iter().all(|&p| self.port_done[p])
    }
}

/// Per-edge staging used when pipelining is disabled: batches accumulate
/// here and flush only when the producing operator fully completes.
struct EdgeStage {
    /// Per downstream worker: ordered staged tuple chunks.
    staged: Vec<Vec<Vec<Tuple>>>,
}

struct SimState<'a> {
    wf: &'a Workflow,
    cfg: &'a EngineConfig,
    workers: Vec<WorkerState>,
    instances: Vec<Box<dyn Operator>>,
    /// Worker ids per operator.
    op_workers: Vec<Vec<WorkerId>>,
    /// Blocking ports per operator.
    blocking: Vec<Vec<usize>>,
    /// Round-robin sequence per (edge, producing worker local idx).
    route_seq: Vec<Vec<u64>>,
    /// Monotone last-delivery time per (edge, from local, to local):
    /// guarantees EOS never overtakes data on a channel.
    channel_clock: Vec<Vec<Vec<SimTime>>>,
    /// Staging when pipelining is off.
    stages: Vec<EdgeStage>,
    /// Remaining unfinished workers per op (drives stage flush + state).
    op_remaining: Vec<usize>,
    metrics: Vec<OperatorMetrics>,
    /// Malleable workers per machine (for effective-CPU division).
    malleable_per_machine: Vec<usize>,
    error: Option<WorkflowError>,
    sinks_remaining: usize,
    finish_time: SimTime,
    /// User-requested pause windows `(start, end)`, sorted, disjoint.
    pauses: Vec<(SimTime, SimTime)>,
    trace: ProgressTrace,
    next_sample: Option<SimTime>,
    sample_interval: SimDuration,
    record_timeline: bool,
    timeline: Vec<WorkerInterval>,
    /// Faulted quanta replayed under a retry budget.
    retries_attempted: u64,
    /// Retried workers that still finished cleanly.
    retries_succeeded: u64,
}

impl<'a> SimState<'a> {
    /// If `now` falls inside a pause window, the time the engine may
    /// start new work again; otherwise `now` itself.
    fn pause_adjusted(&self, now: SimTime) -> SimTime {
        for (start, end) in &self.pauses {
            if now >= *start && now < *end {
                return *end;
            }
        }
        now
    }

    /// Record trace samples for every interval boundary up to `now`.
    fn maybe_sample(&mut self, now: SimTime) {
        let Some(mut next) = self.next_sample else {
            return;
        };
        while now >= next {
            let paused = self.pauses.iter().any(|(s, e)| next >= *s && next < *e);
            let snaps: Vec<OperatorSnapshot> = self
                .metrics
                .iter()
                .map(|m| OperatorSnapshot {
                    name: m.name.clone(),
                    state: if paused && m.state == OperatorState::Running {
                        OperatorState::Paused
                    } else {
                        m.state
                    },
                    input_tuples: m.input_tuples,
                    output_tuples: m.output_tuples,
                    batches_skipped: m.batches_skipped,
                    spilled_blocks: m.spilled_blocks,
                    cache_hits: m.cache_hits,
                    cache_evictions: m.cache_evictions,
                })
                .collect();
            self.trace.samples.push((next, snaps));
            next += self.sample_interval;
        }
        self.next_sample = Some(next);
    }

    fn service_duration(&self, worker: WorkerId, item: &Item) -> SimDuration {
        let w = &self.workers[worker];
        let factory = &self.wf.op(w.op).factory;
        let cost = factory.cost();
        let lang = factory.language();
        let n = match item {
            Item::Batch { tuples, .. } | Item::Retry { tuples, .. } | Item::Source { tuples } => {
                tuples.len() as u64
            }
            Item::Eos { .. } | Item::SourceDone => 0,
        };
        let per_tuple = match item {
            Item::Batch { port, .. } | Item::Retry { port, .. } => cost.per_tuple_on(*port),
            _ => cost.per_tuple,
        };
        let mut per_tuple_total = per_tuple * n;
        if cost.malleable {
            let machine = &self.cfg.cluster.workers[w.machine];
            let sharers = self.malleable_per_machine[w.machine].max(1);
            let cpus = (machine.vcpus / sharers).max(1);
            let effective = (cpus as f64).powf(cost.malleable_utilization).max(1.0);
            per_tuple_total = per_tuple_total.scale(1.0 / effective);
        }
        if let Item::Batch { port, .. } = item {
            if *port == cost.warmup_port && cost.warmup_tuples > w.processed {
                let warm = (cost.warmup_tuples - w.processed).min(n);
                per_tuple_total += cost.warmup_extra * warm;
            }
        }
        if self.cfg.columnar && matches!(item, Item::Batch { .. }) {
            // Columnar batches run the operators' monomorphic column
            // kernels; the calibrated discount is the fraction of the
            // row-path per-tuple work that survives. Replays are exempt:
            // a faulted quantum is re-serviced on the row path.
            per_tuple_total = per_tuple_total.scale(self.cfg.columnar_discount);
        }
        let mut dur = self
            .cfg
            .languages
            .compute(lang, cost.per_batch + per_tuple_total);
        if matches!(item, Item::Batch { .. } | Item::Retry { .. }) {
            // Deserializing inbound tuples is real per-tuple work on the
            // consumer (§III-D runtime overhead) — it limits throughput,
            // unlike the wire delay charged at delivery time. A retried
            // quantum pays it again: the replay is fully re-serviced.
            dur += self.cfg.languages.serde(lang, self.cfg.serde_per_tuple * n);
        }
        if !w.started {
            dur += self.cfg.languages.compute(lang, cost.setup);
            if lang != Language::Scala {
                // Non-native operators boot their own runtime process;
                // Scala operators run inside the (already warm) engine.
                dur += self.cfg.languages.profile(lang).startup;
            }
        }
        dur
    }

    /// Transfer + serde delay for a chunk crossing `edge` from one worker
    /// to another.
    fn edge_delay(
        &self,
        edge: EdgeId,
        from: WorkerId,
        to_machine: usize,
        bytes: usize,
    ) -> SimDuration {
        let e = &self.wf.edges()[edge.0];
        let from_lang = self.wf.op(e.from).factory.language();
        let to_lang = self.wf.op(e.to).factory.language();
        let serde = self
            .cfg
            .languages
            .serde(from_lang, self.cfg.serde_cost(bytes));
        let boundary = self.cfg.languages.boundary(from_lang, to_lang, bytes);
        let wire = if self.workers[from].machine == to_machine {
            self.cfg.cluster.network.local_copy(bytes)
        } else {
            self.cfg.cluster.network.transfer(bytes)
        };
        serde + boundary + wire
    }

    fn try_start(&mut self, worker: WorkerId, sched: &mut Scheduler<Ev>) {
        if self.error.is_some() {
            return;
        }
        if self.workers[worker].busy {
            return;
        }
        // Pull the next item the gate allows; stash gated ones.
        let blocking = self.blocking[self.workers[worker].op.0].clone();
        loop {
            let item = match self.workers[worker].queue.pop_front() {
                Some(i) => i,
                None => return,
            };
            let gate_open = self.workers[worker].gate_open(&blocking);
            let gated = !gate_open
                && match &item {
                    Item::Batch { port, .. } | Item::Eos { port } => !blocking.contains(port),
                    _ => false,
                };
            if gated {
                self.workers[worker].held.push_back(item);
                continue;
            }
            let dur = self.service_duration(worker, &item);
            // `processed` tracks warm-up-port tuples only.
            let warmup_port = self
                .wf
                .op(self.workers[worker].op)
                .factory
                .cost()
                .warmup_port;
            let n_tuples = match &item {
                Item::Batch { port, tuples } if *port == warmup_port => tuples.len() as u64,
                _ => 0,
            };
            // A user-requested pause defers new work to the resume point
            // (in-flight services complete normally).
            let start = self.pause_adjusted(sched.now());
            if self.record_timeline {
                self.timeline.push(WorkerInterval {
                    op: self.workers[worker].op,
                    worker: self.workers[worker].local_idx,
                    start,
                    end: start + dur,
                });
            }
            let w = &mut self.workers[worker];
            w.busy = true;
            w.started = true;
            w.busy_time += dur;
            w.processed += n_tuples;
            w.current = Some(item);
            if self.metrics[w.op.0].state == OperatorState::Initializing {
                self.metrics[w.op.0].state = OperatorState::Running;
            }
            sched.schedule_at(start + dur, Ev::Finish { worker });
            return;
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn deliver(
        &mut self,
        now: SimTime,
        edge: EdgeId,
        from: WorkerId,
        to_local: usize,
        item: Item,
        bytes: usize,
        sched: &mut Scheduler<Ev>,
    ) {
        let e = &self.wf.edges()[edge.0];
        let to_worker = self.op_workers[e.to.0][to_local];
        let to_machine = self.workers[to_worker].machine;
        let delay = self.edge_delay(edge, from, to_machine, bytes);
        let from_local = self.workers[from].local_idx;
        let clock = &mut self.channel_clock[edge.0][from_local][to_local];
        let at = (now + delay).max(*clock);
        *clock = at;
        sched.schedule_at(
            at,
            Ev::Deliver {
                worker: to_worker,
                item,
            },
        );
    }

    /// Route and ship `outputs` produced by `from` along every out-edge.
    fn forward(
        &mut self,
        now: SimTime,
        from: WorkerId,
        outputs: Vec<Tuple>,
        sched: &mut Scheduler<Ev>,
    ) -> WorkflowResult<()> {
        let wf = self.wf;
        let op = self.workers[from].op;
        let from_local = self.workers[from].local_idx;
        let edges: Vec<(EdgeId, usize, usize)> = wf
            .out_edges(op)
            .into_iter()
            .map(|(id, e)| (id, e.to_port, self.op_workers[e.to.0].len()))
            .collect();
        for (edge_id, to_port, nworkers) in edges {
            // Partitioners are compiled once at DAG-build time; routing
            // here is index arithmetic only (no name lookups, no cloning
            // of the strategy per call).
            let part = wf.partitioner(edge_id);
            let mut routed: Vec<Vec<Tuple>> = vec![Vec::new(); nworkers];
            if part.is_broadcast() {
                for worker_batch in routed.iter_mut() {
                    worker_batch.extend(outputs.iter().cloned());
                }
                self.route_seq[edge_id.0][from_local] += outputs.len() as u64;
            } else {
                let seq = &mut self.route_seq[edge_id.0][from_local];
                for t in &outputs {
                    let w = part.route_by_index(t, *seq, nworkers)?;
                    *seq += 1;
                    routed[w].push(t.clone());
                }
            }
            for (to_local, tuples) in routed.into_iter().enumerate() {
                if tuples.is_empty() {
                    continue;
                }
                if self.cfg.pipelining {
                    let bytes: usize = tuples.iter().map(Tuple::encoded_len).sum();
                    self.deliver(
                        now,
                        edge_id,
                        from,
                        to_local,
                        Item::Batch {
                            port: to_port,
                            tuples,
                        },
                        bytes,
                        sched,
                    );
                } else {
                    self.stages[edge_id.0].staged[to_local].push(tuples);
                }
            }
        }
        Ok(())
    }

    /// A worker finished all its work: send EOS downstream (or flush the
    /// stage when pipelining is off and this was the op's last worker).
    fn worker_complete(&mut self, now: SimTime, worker: WorkerId, sched: &mut Scheduler<Ev>) {
        if self.workers[worker].finished {
            return;
        }
        self.workers[worker].finished = true;
        if self.workers[worker].retried {
            // Reaching completion at all means every replay the budget
            // paid for eventually serviced cleanly.
            self.retries_succeeded += 1;
        }
        let op = self.workers[worker].op;
        self.op_remaining[op.0] -= 1;
        let op_done = self.op_remaining[op.0] == 0;
        if op_done {
            if self.metrics[op.0].state != OperatorState::Failed {
                self.metrics[op.0].state = OperatorState::Completed;
            }
            if self.wf.out_edges(op).is_empty() {
                // A sink operator finished.
                self.sinks_remaining -= 1;
                self.finish_time = self.finish_time.max(now);
            }
        }

        let edges: Vec<(EdgeId, usize, usize)> = self
            .wf
            .out_edges(op)
            .into_iter()
            .map(|(id, e)| (id, e.to_port, self.op_workers[e.to.0].len()))
            .collect();

        if self.cfg.pipelining {
            for (edge_id, to_port, nworkers) in edges {
                for to_local in 0..nworkers {
                    self.deliver(
                        now,
                        edge_id,
                        worker,
                        to_local,
                        Item::Eos { port: to_port },
                        0,
                        sched,
                    );
                }
            }
        } else if op_done {
            // Flush everything this op staged, then the EOS markers (one
            // per producing worker, keeping the EOS count uniform).
            let producers = self.op_workers[op.0].clone();
            for (edge_id, to_port, nworkers) in edges {
                for to_local in 0..nworkers {
                    let chunks = std::mem::take(&mut self.stages[edge_id.0].staged[to_local]);
                    for tuples in chunks {
                        let bytes: usize = tuples.iter().map(Tuple::encoded_len).sum();
                        self.deliver(
                            now,
                            edge_id,
                            worker,
                            to_local,
                            Item::Batch {
                                port: to_port,
                                tuples,
                            },
                            bytes,
                            sched,
                        );
                    }
                    for &p in &producers {
                        self.deliver(
                            now,
                            edge_id,
                            p,
                            to_local,
                            Item::Eos { port: to_port },
                            0,
                            sched,
                        );
                    }
                }
            }
        }
    }

    fn fail(&mut self, op: OpId, err: WorkflowError) {
        self.metrics[op.0].state = OperatorState::Failed;
        if self.error.is_none() {
            self.error = Some(err);
        }
    }
}

impl<'a> SimModel for SimState<'a> {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, event: Ev, sched: &mut Scheduler<Ev>) {
        self.maybe_sample(now);
        if self.error.is_some() {
            return;
        }
        match event {
            Ev::Deliver { worker, item } => {
                self.workers[worker].queue.push_back(item);
                self.try_start(worker, sched);
            }
            Ev::Finish { worker } => {
                let item = self.workers[worker]
                    .current
                    .take()
                    .expect("finish without a serviced item");
                self.workers[worker].busy = false;
                let op = self.workers[worker].op;
                let mut outputs: Vec<Tuple> = Vec::new();
                let mut collector = crate::operator::OutputCollector::new();
                let is_replay = matches!(item, Item::Retry { .. });
                match item {
                    Item::Source { tuples } => {
                        self.metrics[op.0].output_tuples += tuples.len() as u64;
                        outputs = tuples;
                    }
                    Item::Batch { port, tuples } | Item::Retry { port, tuples } => {
                        if !is_replay {
                            // A replay's tuples were counted when the
                            // quantum first serviced them.
                            self.metrics[op.0].input_tuples += tuples.len() as u64;
                        }
                        let policy = *self.cfg.retry.policy_for(&self.metrics[op.0].name);
                        // Cloned only while the budget allows a(nother)
                        // replay, so a disabled policy (the default)
                        // leaves the hot path allocation-free.
                        let backup = if self.workers[worker].retries_used < policy.max_attempts {
                            tuples.clone()
                        } else {
                            Vec::new()
                        };
                        let inst = &mut self.instances[worker];
                        let mut fault = None;
                        if self.cfg.columnar && !is_replay && !tuples.is_empty() {
                            // Columnar path: seal the delivered rows once
                            // and hand the whole batch to the operator's
                            // column kernel (zone-map skip, monomorphic
                            // loop). On a fault the partial output is
                            // discarded and the replay below re-services
                            // the same rows on the row path.
                            let schema = tuples[0].schema().clone();
                            let cb = ColumnarBatch::from_tuples(schema, &tuples);
                            if let Err(e) = inst.on_batch(&cb, port, &mut collector) {
                                let _ = collector.take();
                                let _ = collector.take_batches_skipped();
                                fault = Some(e);
                            } else {
                                self.metrics[op.0].batches_skipped +=
                                    collector.take_batches_skipped();
                            }
                        } else {
                            for t in tuples {
                                if let Err(e) = inst.on_tuple(t, port, &mut collector) {
                                    fault = Some(e);
                                    break;
                                }
                            }
                        }
                        if let Some(e) = fault {
                            let w = &mut self.workers[worker];
                            if w.retries_used < policy.max_attempts {
                                // Model the retry as a replayed virtual
                                // quantum: the backoff elapses on the
                                // virtual clock, then the same batch is
                                // re-delivered and re-serviced in full.
                                // Partial output from the faulted run is
                                // discarded (the collector dies here), so
                                // delivery stays exactly-once.
                                let delay = policy.backoff.delay(w.retries_used);
                                w.retries_used += 1;
                                w.retried = true;
                                self.retries_attempted += 1;
                                self.metrics[op.0].state = OperatorState::Retrying;
                                let micros = u64::try_from(delay.as_micros()).unwrap_or(u64::MAX);
                                sched.schedule_at(
                                    now + SimDuration::from_micros(micros),
                                    Ev::Deliver {
                                        worker,
                                        item: Item::Retry {
                                            port,
                                            tuples: backup,
                                        },
                                    },
                                );
                                return;
                            }
                            self.fail(op, e);
                            return;
                        }
                        outputs = collector.take();
                        self.metrics[op.0].output_tuples += outputs.len() as u64;
                    }
                    Item::Eos { port } => {
                        let w = &mut self.workers[worker];
                        debug_assert!(w.eos_remaining[port] > 0, "excess EOS on port {port}");
                        w.eos_remaining[port] -= 1;
                        if w.eos_remaining[port] == 0 {
                            w.port_done[port] = true;
                            let inst = &mut self.instances[worker];
                            if let Err(e) = inst.on_port_complete(port, &mut collector) {
                                self.fail(op, e);
                                return;
                            }
                            outputs = collector.take();
                            self.metrics[op.0].output_tuples += outputs.len() as u64;
                            // Gate may have opened: release held items in
                            // arrival order ahead of anything queued later.
                            let blocking = self.blocking[op.0].clone();
                            if self.workers[worker].gate_open(&blocking)
                                && !self.workers[worker].held.is_empty()
                            {
                                let held = std::mem::take(&mut self.workers[worker].held);
                                let queue = &mut self.workers[worker].queue;
                                for (i, item) in held.into_iter().enumerate() {
                                    queue.insert(i, item);
                                }
                            }
                        }
                    }
                    Item::SourceDone => {
                        self.workers[worker].port_done = vec![true];
                    }
                }
                // Spill I/O the quantum incurred: count it, then charge
                // it as calibrated per-block time. The worker stays busy
                // through the charge and its outputs depart only once
                // the blocks are durable, so spilling shows up as real
                // virtual latency. `delta` is zero whenever no budget is
                // set, keeping unbounded runs event-for-event identical.
                let (s_blocks, s_bytes, s_reads) = collector.take_spill();
                self.metrics[op.0].spilled_blocks += s_blocks;
                self.metrics[op.0].spilled_bytes += s_bytes;
                self.metrics[op.0].spill_reads += s_reads;
                let delta = self.cfg.spill_write_per_block * s_blocks
                    + self.cfg.spill_read_per_block * s_reads;
                if delta > SimDuration::ZERO {
                    let w = &mut self.workers[worker];
                    w.busy = true;
                    w.busy_time += delta;
                    if self.record_timeline {
                        self.timeline.push(WorkerInterval {
                            op,
                            worker: self.workers[worker].local_idx,
                            start: now,
                            end: now + delta,
                        });
                    }
                    if !outputs.is_empty() {
                        if let Err(e) = self.forward(now + delta, worker, outputs, sched) {
                            self.fail(op, e);
                            return;
                        }
                    }
                    sched.schedule_at(now + delta, Ev::Release { worker });
                    return;
                }
                if !outputs.is_empty() {
                    if let Err(e) = self.forward(now, worker, outputs, sched) {
                        self.fail(op, e);
                        return;
                    }
                }
                // Completion check: every port closed, nothing queued.
                let w = &self.workers[worker];
                if w.all_ports_done() && w.queue.is_empty() && w.held.is_empty() {
                    self.worker_complete(now, worker, sched);
                } else {
                    self.try_start(worker, sched);
                }
            }
            Ev::Release { worker } => {
                self.workers[worker].busy = false;
                let w = &self.workers[worker];
                if w.all_ports_done() && w.queue.is_empty() && w.held.is_empty() {
                    self.worker_complete(now, worker, sched);
                } else {
                    self.try_start(worker, sched);
                }
            }
        }
    }
}

/// The simulated-time workflow executor.
pub struct SimExecutor {
    config: EngineConfig,
    pauses: Vec<(SimTime, SimTime)>,
    trace_interval: Option<SimDuration>,
    record_timeline: bool,
}

impl SimExecutor {
    /// An executor over the given engine configuration.
    pub fn new(config: EngineConfig) -> Self {
        SimExecutor {
            config,
            pauses: Vec::new(),
            trace_interval: None,
            record_timeline: false,
        }
    }

    /// Record every worker's busy intervals into the result's
    /// [`SimRunResult::worker_timeline`] (Gantt data).
    pub fn with_worker_timeline(mut self) -> Self {
        self.record_timeline = true;
        self
    }

    /// Access the configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Pause the execution at virtual time `at` for `duration` (the GUI's
    /// pause/resume buttons). In-flight work completes; no new work
    /// starts until the resume point. Windows must not overlap.
    pub fn with_pause(mut self, at: SimTime, duration: SimDuration) -> Self {
        self.pauses.push((at, at + duration));
        self.pauses.sort_unstable();
        for w in self.pauses.windows(2) {
            assert!(w[0].1 <= w[1].0, "pause windows must not overlap");
        }
        self
    }

    /// Sample per-operator progress every `interval` of virtual time into
    /// the result's [`ProgressTrace`].
    pub fn with_trace(mut self, interval: SimDuration) -> Self {
        assert!(
            interval > SimDuration::ZERO,
            "trace interval must be positive"
        );
        self.trace_interval = Some(interval);
        self
    }

    /// Execute `wf` to completion; returns the makespan and metrics, or
    /// the first operator-level error.
    pub fn run(&self, wf: &Workflow) -> WorkflowResult<SimRunResult> {
        self.run_observed(wf).1
    }

    /// Execute `wf`, returning the progress trace alongside the result.
    ///
    /// Unlike [`SimExecutor::run`] — whose trace travels inside
    /// [`SimRunResult`] and is therefore lost on `Err` — this always
    /// hands the trace back, so a failed run can still be replayed to
    /// see which operator reached
    /// [`crate::metrics::OperatorState::Failed`]. The trace always ends
    /// with a terminal sample of every operator's final state, even
    /// without [`SimExecutor::with_trace`]; this mirrors
    /// [`crate::exec_live::LiveExecutor::run_observed`], so the two
    /// executors present one observable surface.
    ///
    /// With [`EngineConfig::result_cache`] set, the workflow is first
    /// re-planned against the cache ([`crate::cache::prepare`]): hits
    /// are served from sealed segments (charged
    /// [`EngineConfig::cache_read_per_block`] per decoded block),
    /// unedited upstream cones are skipped, and on clean completion —
    /// no retries spent — the run's recorded outputs are published back.
    pub fn run_observed(&self, wf: &Workflow) -> (ProgressTrace, WorkflowResult<SimRunResult>) {
        let Some(cache) = self.config.result_cache.clone() else {
            return self.run_observed_inner(wf);
        };
        let plan = crate::cache::prepare(wf, &cache, self.config.cache_read_per_block);
        let (mut trace, res) = self.run_observed_inner(&plan.wf);
        let res = res.map(|mut r| {
            // Publish only a clean run: a replayed quantum tees its
            // held batch's output twice, which must never be sealed.
            if r.retries_attempted == 0 {
                let stats = crate::cache::commit_recordings_as(&plan.recordings, &cache, None);
                r.cache_published = stats.published;
                // Evictions happen at commit, after the last sample:
                // fold them into the metrics and the terminal sample of
                // both trace copies.
                crate::cache::apply_evictions_to_metrics(&stats, &mut r.metrics);
                crate::cache::apply_evictions_to_trace(&stats, &mut r.trace);
                crate::cache::apply_evictions_to_trace(&stats, &mut trace);
            }
            r
        });
        (trace, res)
    }

    fn run_observed_inner(&self, wf: &Workflow) -> (ProgressTrace, WorkflowResult<SimRunResult>) {
        let machine_count = self.config.cluster.worker_count().max(1);

        // --- Static placement -------------------------------------------
        let mut workers: Vec<WorkerState> = Vec::new();
        let mut op_workers: Vec<Vec<WorkerId>> = Vec::new();
        let mut global = 0usize;
        for (i, node) in wf.ops().iter().enumerate() {
            let mut ids = Vec::with_capacity(node.parallelism);
            let ports = node.factory.input_ports();
            let colocate = node.factory.cost().colocate;
            for local in 0..node.parallelism {
                let machine = if colocate {
                    i % machine_count
                } else {
                    global % machine_count
                };
                let mut eos_remaining = vec![0usize; ports.max(1)];
                let port_done = if ports == 0 {
                    vec![false] // completed by SourceDone
                } else {
                    for (_, e) in wf.in_edges(OpId(i)) {
                        eos_remaining[e.to_port] += wf.op(e.from).parallelism;
                    }
                    vec![false; ports]
                };
                workers.push(WorkerState {
                    op: OpId(i),
                    local_idx: local,
                    machine,
                    queue: VecDeque::new(),
                    held: VecDeque::new(),
                    busy: false,
                    current: None,
                    started: false,
                    eos_remaining,
                    port_done,
                    finished: false,
                    busy_time: SimDuration::ZERO,
                    processed: 0,
                    retries_used: 0,
                    retried: false,
                });
                ids.push(global);
                global += 1;
            }
            op_workers.push(ids);
        }

        let mut malleable_per_machine = vec![0usize; machine_count];
        for w in &workers {
            if wf.op(w.op).factory.cost().malleable {
                malleable_per_machine[w.machine] += 1;
            }
        }

        let mut instances: Vec<Box<dyn Operator>> = workers
            .iter()
            .map(|w| wf.op(w.op).factory.create())
            .collect();
        for inst in &mut instances {
            // Engine-level budget; operators with a fixed per-op
            // override ignore it.
            inst.set_memory_budget(self.config.memory_budget);
        }

        let blocking: Vec<Vec<usize>> = wf
            .ops()
            .iter()
            .map(|n| n.factory.blocking_ports())
            .collect();

        let route_seq: Vec<Vec<u64>> = wf
            .edges()
            .iter()
            .map(|e| vec![0u64; wf.op(e.from).parallelism])
            .collect();

        let channel_clock: Vec<Vec<Vec<SimTime>>> = wf
            .edges()
            .iter()
            .map(|e| vec![vec![SimTime::ZERO; wf.op(e.to).parallelism]; wf.op(e.from).parallelism])
            .collect();

        let stages: Vec<EdgeStage> = wf
            .edges()
            .iter()
            .map(|e| EdgeStage {
                staged: vec![Vec::new(); wf.op(e.to).parallelism],
            })
            .collect();

        let metrics: Vec<OperatorMetrics> = wf
            .ops()
            .iter()
            .map(|n| {
                let mut m =
                    OperatorMetrics::new(n.factory.name(), n.factory.language(), n.parallelism);
                m.prime_cache_counters(n.factory.as_ref());
                m
            })
            .collect();

        let op_remaining: Vec<usize> = wf.ops().iter().map(|n| n.parallelism).collect();

        let mut state = SimState {
            wf,
            cfg: &self.config,
            workers,
            instances,
            op_workers,
            blocking,
            route_seq,
            channel_clock,
            stages,
            op_remaining,
            metrics,
            malleable_per_machine,
            error: None,
            sinks_remaining: wf.sinks().len(),
            finish_time: SimTime::ZERO,
            pauses: self.pauses.clone(),
            trace: ProgressTrace::default(),
            next_sample: self.trace_interval.map(|_| SimTime::ZERO),
            sample_interval: self.trace_interval.unwrap_or(SimDuration::from_secs(1)),
            record_timeline: self.record_timeline,
            timeline: Vec::new(),
            retries_attempted: 0,
            retries_succeeded: 0,
        };

        // --- Seed sources -------------------------------------------------
        let mut sched: Scheduler<Ev> = Scheduler::new();
        let t0 = SimTime::ZERO + self.config.cluster.submit_overhead;
        for src in wf.sources() {
            let node = wf.op(src);
            let parts = match node.factory.source_partitions(node.parallelism) {
                Some(parts) => parts,
                None => {
                    let err = WorkflowError::InvalidDag(format!(
                        "source `{}` produced no partitions",
                        node.factory.name()
                    ));
                    return (std::mem::take(&mut state.trace), Err(err));
                }
            };
            for (local, part) in parts.into_iter().enumerate() {
                let worker = state.op_workers[src.0][local];
                for chunk in part.chunks(self.config.batch_size.max(1)) {
                    sched.schedule_at(
                        t0,
                        Ev::Deliver {
                            worker,
                            item: Item::Source {
                                tuples: chunk.to_vec(),
                            },
                        },
                    );
                }
                sched.schedule_at(
                    t0,
                    Ev::Deliver {
                        worker,
                        item: Item::SourceDone,
                    },
                );
            }
        }

        let end = des::run(&mut state, &mut sched);
        // One final sample at the makespan, so traces always end with
        // every operator's terminal state — even without `with_trace`.
        state.next_sample = Some(end);
        state.maybe_sample(end);
        if let Some(err) = state.error {
            return (std::mem::take(&mut state.trace), Err(err));
        }
        debug_assert_eq!(state.sinks_remaining, 0, "sinks never completed");
        let makespan = state.finish_time.max(end);
        let total_workers = state.workers.len();
        let mut operators = state.metrics;
        for (i, m) in operators.iter_mut().enumerate() {
            m.busy = state
                .op_workers
                .get(i)
                .map(|ids| {
                    ids.iter().fold(SimDuration::ZERO, |acc, &w| {
                        acc + state.workers[w].busy_time
                    })
                })
                .unwrap_or(SimDuration::ZERO);
        }
        let trace = state.trace;
        (
            trace.clone(),
            Ok(SimRunResult {
                makespan,
                metrics: RunMetrics {
                    makespan,
                    operators,
                    total_workers,
                    events: sched.processed(),
                },
                trace,
                worker_timeline: state.timeline,
                retries_attempted: state.retries_attempted,
                retries_succeeded: state.retries_succeeded,
                cache_published: 0,
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::WorkflowBuilder;
    use crate::ops::{AggFn, AggregateOp, FilterOp, HashJoinOp, ScanOp, SinkOp};
    use crate::partition::PartitionStrategy;
    use scriptflow_datakit::{Batch, DataType, Schema, Value};
    use scriptflow_simcluster::ClusterSpec;
    use std::sync::Arc;

    fn int_batch(n: i64) -> Batch {
        let schema = Schema::of(&[("id", DataType::Int)]);
        Batch::from_rows(schema, (0..n).map(|i| vec![Value::Int(i)]).collect()).unwrap()
    }

    fn kv_batch(pairs: &[(i64, &str)]) -> Batch {
        let schema = Schema::of(&[("k", DataType::Int), ("tag", DataType::Str)]);
        Batch::from_rows(
            schema,
            pairs
                .iter()
                .map(|(k, t)| vec![Value::Int(*k), Value::Str((*t).into())])
                .collect(),
        )
        .unwrap()
    }

    fn cfg() -> EngineConfig {
        EngineConfig {
            cluster: ClusterSpec::single_node(4),
            batch_size: 8,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn linear_pipeline_filters() {
        let mut b = WorkflowBuilder::new();
        let scan = b.add(Arc::new(ScanOp::new("scan", int_batch(100))), 2);
        let filt = b.add(
            Arc::new(FilterOp::new("even", |t| Ok(t.get_int("id")? % 2 == 0))),
            3,
        );
        let sink_op = SinkOp::new("sink");
        let handle = sink_op.handle();
        let sink = b.add(Arc::new(sink_op), 1);
        b.connect(scan, filt, 0, PartitionStrategy::RoundRobin);
        b.connect(filt, sink, 0, PartitionStrategy::Single);
        let wf = b.build().unwrap();

        let res = SimExecutor::new(cfg()).run(&wf).unwrap();
        assert_eq!(handle.len(), 50);
        assert!(res.makespan > SimTime::ZERO);
        let m = res.metrics.by_name("even").unwrap();
        assert_eq!(m.input_tuples, 100);
        assert_eq!(m.output_tuples, 50);
        assert_eq!(m.state, OperatorState::Completed);
        assert_eq!(res.metrics.total_workers, 6);
    }

    #[test]
    fn join_with_hash_partitioning_matches_oracle() {
        let build = kv_batch(&[(1, "a"), (2, "b"), (3, "c"), (1, "d")]);
        let probe_schema = Schema::of(&[("id", DataType::Int), ("k", DataType::Int)]);
        let probe = Batch::from_rows(
            probe_schema,
            (0..40)
                .map(|i| vec![Value::Int(i), Value::Int(i % 5)])
                .collect(),
        )
        .unwrap();

        // Oracle: nested loop count. k in {1,2,3} matches; k=1 matches twice.
        let mut expected = 0;
        for i in 0..40i64 {
            expected += match i % 5 {
                1 => 2,
                2 | 3 => 1,
                _ => 0,
            };
        }

        let mut b = WorkflowBuilder::new();
        let bs = b.add(Arc::new(ScanOp::new("build", build)), 1);
        let ps = b.add(Arc::new(ScanOp::new("probe", probe)), 2);
        let join = b.add(Arc::new(HashJoinOp::new("join", &["k"], &["k"])), 2);
        let sink_op = SinkOp::new("sink");
        let handle = sink_op.handle();
        let sink = b.add(Arc::new(sink_op), 1);
        b.connect(bs, join, 0, PartitionStrategy::Hash(vec!["k".into()]));
        b.connect(ps, join, 1, PartitionStrategy::Hash(vec!["k".into()]));
        b.connect(join, sink, 0, PartitionStrategy::Single);
        let wf = b.build().unwrap();

        SimExecutor::new(cfg()).run(&wf).unwrap();
        assert_eq!(handle.len(), expected);
    }

    #[test]
    fn aggregate_over_partitions() {
        let mut b = WorkflowBuilder::new();
        let scan = b.add(Arc::new(ScanOp::new("scan", int_batch(60))), 2);
        // Group by id % 3 — computed via a UDF-free trick: aggregate on the
        // raw id with a hash partition is enough to test group routing; use
        // count of all rows in a single group instead.
        let agg = b.add(
            Arc::new(AggregateOp::new(
                "count",
                &[],
                vec![AggFn::Count("n".into())],
            )),
            1,
        );
        let sink_op = SinkOp::new("sink");
        let handle = sink_op.handle();
        let sink = b.add(Arc::new(sink_op), 1);
        b.connect(scan, agg, 0, PartitionStrategy::Single);
        b.connect(agg, sink, 0, PartitionStrategy::Single);
        let wf = b.build().unwrap();
        SimExecutor::new(cfg()).run(&wf).unwrap();
        let rows = handle.results();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get_int("n").unwrap(), 60);
    }

    #[test]
    fn operator_error_is_reported_at_operator_level() {
        let mut b = WorkflowBuilder::new();
        let scan = b.add(Arc::new(ScanOp::new("scan", int_batch(10))), 1);
        let bad = b.add(
            Arc::new(FilterOp::new("exploder", |t| {
                if t.get_int("id")? == 7 {
                    Err(scriptflow_datakit::DataError::Decode {
                        line: 0,
                        message: "boom".into(),
                    })
                } else {
                    Ok(true)
                }
            })),
            1,
        );
        let sink = b.add(Arc::new(SinkOp::new("sink")), 1);
        b.connect(scan, bad, 0, PartitionStrategy::RoundRobin);
        b.connect(bad, sink, 0, PartitionStrategy::Single);
        let wf = b.build().unwrap();
        let err = SimExecutor::new(cfg()).run(&wf).unwrap_err();
        assert!(err.to_string().contains("exploder"), "{err}");
    }

    #[test]
    fn retry_replays_transient_fault_and_completes() {
        use crate::retry::{RetryConfig, RetryPolicy};
        use std::sync::atomic::{AtomicU64, Ordering};
        let run = |max_attempts: u32| {
            let calls = Arc::new(AtomicU64::new(0));
            let seen = calls.clone();
            let mut b = WorkflowBuilder::new();
            let scan = b.add(Arc::new(ScanOp::new("scan", int_batch(40))), 1);
            let flaky = b.add(
                Arc::new(FilterOp::new("flaky", move |t| {
                    // Exactly one transient fault: the 20th tuple ever
                    // serviced errors once; the replay (fresh counts)
                    // passes, so a single retry salvages the run.
                    let _ = t.get_int("id")?;
                    if seen.fetch_add(1, Ordering::SeqCst) + 1 == 20 {
                        Err(scriptflow_datakit::DataError::Decode {
                            line: 0,
                            message: "transient".into(),
                        })
                    } else {
                        Ok(true)
                    }
                })),
                1,
            );
            let sink_op = SinkOp::new("sink");
            let handle = sink_op.handle();
            let sink = b.add(Arc::new(sink_op), 1);
            b.connect(scan, flaky, 0, PartitionStrategy::RoundRobin);
            b.connect(flaky, sink, 0, PartitionStrategy::Single);
            let wf = b.build().unwrap();
            let mut config = cfg();
            config.retry = RetryConfig::uniform(RetryPolicy::attempts(max_attempts));
            (SimExecutor::new(config).run(&wf), handle)
        };

        // No budget: the transient decode error is sticky-fatal.
        let (res, _) = run(0);
        let err = res.unwrap_err();
        assert!(err.to_string().contains("flaky"), "{err}");

        // One replay salvages every row exactly once.
        let (res, handle) = run(3);
        let res = res.unwrap();
        assert_eq!(handle.len(), 40, "retry must not lose or duplicate rows");
        assert_eq!(res.retries_attempted, 1);
        assert_eq!(res.retries_succeeded, 1);
        let m = res.metrics.by_name("flaky").unwrap();
        assert_eq!(m.state, OperatorState::Completed);
        assert_eq!(m.input_tuples, 40, "replayed tuples must not be recounted");
    }

    #[test]
    fn retry_budget_exhaustion_still_fails() {
        use crate::retry::{RetryConfig, RetryPolicy};
        let mut b = WorkflowBuilder::new();
        let scan = b.add(Arc::new(ScanOp::new("scan", int_batch(10))), 1);
        let bad = b.add(
            Arc::new(FilterOp::new("stuck", |t| {
                if t.get_int("id")? == 7 {
                    Err(scriptflow_datakit::DataError::Decode {
                        line: 0,
                        message: "persistent".into(),
                    })
                } else {
                    Ok(true)
                }
            })),
            1,
        );
        let sink = b.add(Arc::new(SinkOp::new("sink")), 1);
        b.connect(scan, bad, 0, PartitionStrategy::RoundRobin);
        b.connect(bad, sink, 0, PartitionStrategy::Single);
        let wf = b.build().unwrap();
        let mut config = cfg();
        config.retry = RetryConfig::uniform(RetryPolicy::attempts(2));
        // A deterministic fault fails every replay: the budget drains and
        // the operator degrades to the ordinary failure path.
        let err = SimExecutor::new(config).run(&wf).unwrap_err();
        assert!(err.to_string().contains("stuck"), "{err}");
    }

    #[test]
    fn columnar_engine_matches_row_engine_and_prunes_batches() {
        use scriptflow_datakit::CmpOp;
        let run = |columnar: bool| {
            let mut b = WorkflowBuilder::new();
            let scan = b.add(Arc::new(ScanOp::new("scan", int_batch(400))), 1);
            // Ascending ids + a top-of-range predicate: almost every
            // batch's zone map excludes the literal.
            let filt = b.add(
                Arc::new(FilterOp::cmp("sel", "id", CmpOp::Ge, Value::Int(390))),
                1,
            );
            let sink_op = SinkOp::new("sink");
            let handle = sink_op.handle();
            let sink = b.add(Arc::new(sink_op), 1);
            b.connect(scan, filt, 0, PartitionStrategy::RoundRobin);
            b.connect(filt, sink, 0, PartitionStrategy::Single);
            let wf = b.build().unwrap();
            let mut config = cfg();
            config.columnar = columnar;
            let res = SimExecutor::new(config).run(&wf).unwrap();
            let mut rows: Vec<String> = handle.results().iter().map(|t| t.to_string()).collect();
            rows.sort();
            (rows, res)
        };
        let (rows_row, res_row) = run(false);
        let (rows_col, res_col) = run(true);
        assert_eq!(rows_row.len(), 10);
        assert_eq!(
            rows_row, rows_col,
            "both batch modes must emit identical rows"
        );
        assert_eq!(res_row.metrics.by_name("sel").unwrap().batches_skipped, 0);
        let skipped = res_col.metrics.by_name("sel").unwrap().batches_skipped;
        assert!(skipped > 0, "selective predicate must prune whole batches");
        // The terminal trace sample carries the same counter.
        let (_, last) = res_col.trace.samples.last().unwrap();
        let sel = last.iter().find(|s| s.name == "sel").unwrap();
        assert_eq!(sel.batches_skipped, skipped);
        assert!(
            res_col.makespan < res_row.makespan,
            "columnar discount must shrink the makespan: {} vs {}",
            res_col.makespan,
            res_row.makespan
        );
    }

    #[test]
    fn columnar_retry_still_delivers_exactly_once() {
        use crate::retry::{RetryConfig, RetryPolicy};
        use std::sync::atomic::{AtomicU64, Ordering};
        let calls = Arc::new(AtomicU64::new(0));
        let seen = calls.clone();
        let mut b = WorkflowBuilder::new();
        let scan = b.add(Arc::new(ScanOp::new("scan", int_batch(40))), 1);
        let flaky = b.add(
            Arc::new(FilterOp::new("flaky", move |t| {
                let _ = t.get_int("id")?;
                if seen.fetch_add(1, Ordering::SeqCst) + 1 == 20 {
                    Err(scriptflow_datakit::DataError::Decode {
                        line: 0,
                        message: "transient".into(),
                    })
                } else {
                    Ok(true)
                }
            })),
            1,
        );
        let sink_op = SinkOp::new("sink");
        let handle = sink_op.handle();
        let sink = b.add(Arc::new(sink_op), 1);
        b.connect(scan, flaky, 0, PartitionStrategy::RoundRobin);
        b.connect(flaky, sink, 0, PartitionStrategy::Single);
        let wf = b.build().unwrap();
        let mut config = cfg();
        config.columnar = true;
        config.retry = RetryConfig::uniform(RetryPolicy::attempts(3));
        let res = SimExecutor::new(config).run(&wf).unwrap();
        assert_eq!(
            handle.len(),
            40,
            "columnar retry must not lose or duplicate rows"
        );
        assert_eq!(res.retries_attempted, 1);
        let m = res.metrics.by_name("flaky").unwrap();
        assert_eq!(m.state, OperatorState::Completed);
        assert_eq!(m.input_tuples, 40, "replayed tuples must not be recounted");
    }

    #[test]
    fn memory_budget_spills_and_matches_unbounded() {
        let run = |budget: Option<usize>| {
            let pairs: Vec<(i64, String)> = (0..80).map(|i| (i % 13, format!("b{i}"))).collect();
            let build = kv_batch(
                &pairs
                    .iter()
                    .map(|(k, t)| (*k, t.as_str()))
                    .collect::<Vec<_>>(),
            );
            let probe_schema = Schema::of(&[("id", DataType::Int), ("k", DataType::Int)]);
            let probe = Batch::from_rows(
                probe_schema,
                (0..60)
                    .map(|i| vec![Value::Int(i), Value::Int(i % 17)])
                    .collect(),
            )
            .unwrap();
            let mut b = WorkflowBuilder::new();
            let bs = b.add(Arc::new(ScanOp::new("build", build)), 1);
            let ps = b.add(Arc::new(ScanOp::new("probe", probe)), 1);
            let join = b.add(Arc::new(HashJoinOp::new("join", &["k"], &["k"])), 1);
            let sink_op = SinkOp::new("sink");
            let handle = sink_op.handle();
            let sink = b.add(Arc::new(sink_op), 1);
            b.connect(bs, join, 0, PartitionStrategy::Hash(vec!["k".into()]));
            b.connect(ps, join, 1, PartitionStrategy::Hash(vec!["k".into()]));
            b.connect(join, sink, 0, PartitionStrategy::Single);
            let wf = b.build().unwrap();
            let mut config = cfg();
            config.memory_budget = budget;
            let res = SimExecutor::new(config).run(&wf).unwrap();
            let mut rows: Vec<String> = handle.results().iter().map(|t| t.to_string()).collect();
            rows.sort();
            (rows, res)
        };
        let (rows_mem, res_mem) = run(None);
        let (rows_spill, res_spill) = run(Some(256));
        assert!(!rows_mem.is_empty());
        assert_eq!(
            rows_mem, rows_spill,
            "spilled join must emit identical rows"
        );
        assert_eq!(
            res_mem.metrics.by_name("join").unwrap().spilled_blocks,
            0,
            "unbounded run must not spill"
        );
        let m = res_spill.metrics.by_name("join").unwrap();
        assert!(m.spilled_blocks > 0, "tiny budget must spill blocks");
        assert!(m.spilled_bytes > 0);
        assert!(m.spill_reads > 0, "partition join must read blocks back");
        // Spill I/O is charged on the virtual clock.
        assert!(
            res_spill.makespan > res_mem.makespan,
            "spill quanta must extend the makespan: {} vs {}",
            res_spill.makespan,
            res_mem.makespan
        );
        // The terminal trace sample carries the spill counter.
        let (_, last) = res_spill.trace.samples.last().unwrap();
        let join_snap = last.iter().find(|s| s.name == "join").unwrap();
        assert_eq!(join_snap.spilled_blocks, m.spilled_blocks);
    }

    #[test]
    fn more_workers_reduce_makespan() {
        let run_with = |workers: usize| {
            let mut b = WorkflowBuilder::new();
            let scan = b.add(Arc::new(ScanOp::new("scan", int_batch(4_000))), workers);
            let filt = b.add(
                Arc::new(
                    FilterOp::new("f", |t| Ok(t.get_int("id")? >= 0))
                        .with_cost(crate::cost::CostProfile::per_tuple_micros(200)),
                ),
                workers,
            );
            let sink = b.add(Arc::new(SinkOp::new("sink")), 1);
            b.connect(scan, filt, 0, PartitionStrategy::RoundRobin);
            b.connect(filt, sink, 0, PartitionStrategy::Single);
            let wf = b.build().unwrap();
            SimExecutor::new(cfg()).run(&wf).unwrap().makespan
        };
        let one = run_with(1);
        let four = run_with(4);
        // Speedup is sublinear (per-worker startup is fixed cost), but 4
        // workers must still cut the makespan well below 60%.
        assert!(
            four.as_secs_f64() < one.as_secs_f64() * 0.6,
            "4 workers {four} not much faster than 1 worker {one}"
        );
    }

    #[test]
    fn pipelining_beats_stage_barriers() {
        let build = |pipelining: bool| {
            let mut b = WorkflowBuilder::new();
            let scan = b.add(Arc::new(ScanOp::new("scan", int_batch(2_000))), 1);
            let f1 = b.add(
                Arc::new(
                    FilterOp::new("f1", |_| Ok(true))
                        .with_cost(crate::cost::CostProfile::per_tuple_micros(50)),
                ),
                1,
            );
            let f2 = b.add(
                Arc::new(
                    FilterOp::new("f2", |_| Ok(true))
                        .with_cost(crate::cost::CostProfile::per_tuple_micros(50)),
                ),
                1,
            );
            let sink = b.add(Arc::new(SinkOp::new("sink")), 1);
            b.connect(scan, f1, 0, PartitionStrategy::RoundRobin);
            b.connect(f1, f2, 0, PartitionStrategy::RoundRobin);
            b.connect(f2, sink, 0, PartitionStrategy::Single);
            let wf = b.build().unwrap();
            let mut config = cfg();
            config.pipelining = pipelining;
            SimExecutor::new(config).run(&wf).unwrap().makespan
        };
        let with = build(true);
        let without = build(false);
        assert!(
            with < without,
            "pipelined {with} should beat barrier {without}"
        );
    }

    #[test]
    fn results_identical_with_and_without_pipelining() {
        let run = |pipelining: bool| {
            let mut b = WorkflowBuilder::new();
            let scan = b.add(Arc::new(ScanOp::new("scan", int_batch(500))), 2);
            let filt = b.add(
                Arc::new(FilterOp::new("f", |t| Ok(t.get_int("id")? % 3 == 0))),
                3,
            );
            let sink_op = SinkOp::new("sink");
            let handle = sink_op.handle();
            let sink = b.add(Arc::new(sink_op), 2);
            b.connect(scan, filt, 0, PartitionStrategy::RoundRobin);
            b.connect(filt, sink, 0, PartitionStrategy::RoundRobin);
            let wf = b.build().unwrap();
            let mut config = cfg();
            config.pipelining = pipelining;
            SimExecutor::new(config).run(&wf).unwrap();
            let mut rows: Vec<String> = handle.results().iter().map(|t| t.to_string()).collect();
            rows.sort();
            rows
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn pause_extends_makespan_by_its_duration() {
        let build = || {
            let mut b = WorkflowBuilder::new();
            let scan = b.add(Arc::new(ScanOp::new("scan", int_batch(1_000))), 1);
            let filt = b.add(
                Arc::new(
                    FilterOp::new("f", |_| Ok(true))
                        .with_cost(crate::cost::CostProfile::per_tuple_micros(100)),
                ),
                1,
            );
            let sink = b.add(Arc::new(SinkOp::new("sink")), 1);
            b.connect(scan, filt, 0, PartitionStrategy::RoundRobin);
            b.connect(filt, sink, 0, PartitionStrategy::Single);
            b.build().unwrap()
        };
        let base = SimExecutor::new(cfg()).run(&build()).unwrap().makespan;
        let paused = SimExecutor::new(cfg())
            .with_pause(
                SimTime::from_micros(60_000),
                scriptflow_simcluster::SimDuration::from_secs(2),
            )
            .run(&build())
            .unwrap()
            .makespan;
        let delta = paused.as_secs_f64() - base.as_secs_f64();
        assert!(
            (1.8..2.3).contains(&delta),
            "pause should add ~2s: base {base}, paused {paused}"
        );
    }

    #[test]
    fn trace_samples_progress_and_marks_paused() {
        let mut b = WorkflowBuilder::new();
        let scan = b.add(Arc::new(ScanOp::new("scan", int_batch(2_000))), 1);
        let filt = b.add(
            Arc::new(
                FilterOp::new("f", |_| Ok(true))
                    .with_cost(crate::cost::CostProfile::per_tuple_micros(500)),
            ),
            1,
        );
        let sink = b.add(Arc::new(SinkOp::new("sink")), 1);
        b.connect(scan, filt, 0, PartitionStrategy::RoundRobin);
        b.connect(filt, sink, 0, PartitionStrategy::Single);
        let wf = b.build().unwrap();
        let res = SimExecutor::new(cfg())
            .with_trace(scriptflow_simcluster::SimDuration::from_millis(100))
            .with_pause(
                SimTime::from_micros(300_000),
                scriptflow_simcluster::SimDuration::from_millis(400),
            )
            .run(&wf)
            .unwrap();
        let trace = &res.trace;
        assert!(
            trace.len() > 5,
            "expected several samples, got {}",
            trace.len()
        );
        // Samples ascend in time.
        for w in trace.samples.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        // Input counters are monotone for the filter operator.
        let hist = trace.operator_history("f");
        for w in hist.windows(2) {
            assert!(w[0].1.input_tuples <= w[1].1.input_tuples);
        }
        // The pause window shows the paused state for running operators.
        let paused_seen = trace
            .samples
            .iter()
            .filter(|(t, _)| t.as_micros() >= 300_000 && t.as_micros() < 700_000)
            .flat_map(|(_, snaps)| snaps)
            .any(|s| s.state == OperatorState::Paused);
        assert!(paused_seen, "expected a Paused snapshot inside the window");
        // The final sample shows everything completed.
        assert!(trace.completion_sample().is_some());
    }

    #[test]
    fn determinism() {
        let run = || {
            let mut b = WorkflowBuilder::new();
            let scan = b.add(Arc::new(ScanOp::new("scan", int_batch(300))), 3);
            let filt = b.add(Arc::new(FilterOp::new("f", |_| Ok(true))), 2);
            let sink = b.add(Arc::new(SinkOp::new("sink")), 1);
            b.connect(scan, filt, 0, PartitionStrategy::RoundRobin);
            b.connect(filt, sink, 0, PartitionStrategy::Single);
            let wf = b.build().unwrap();
            let r = SimExecutor::new(cfg()).run(&wf).unwrap();
            (r.makespan, r.metrics.events)
        };
        assert_eq!(run(), run());
    }
}
