//! Deterministic fault injection for the pooled live executor.
//!
//! The paper's §III-A argument for the GUI paradigm is accountability
//! under failure: the engine pins a fault to one operator, keeps the
//! rest of the pipeline's progress visible, and the partial trace
//! survives. This module is the harness that *exercises* that claim on
//! [`crate::exec_live::LiveExecutor`]: a seeded [`FaultPlan`] names an
//! operator and a [`FaultKind`], the pooled scheduler consults the
//! compiled plan at well-defined points on its hot path, and the
//! injected failure flows through the normal drain machinery — the
//! faulted operator turns [`crate::OperatorState::Failed`], downstream
//! operators finish [`crate::OperatorState::Degraded`] on the truncated
//! input, every mailbox is drained, every pool thread joins, and
//! [`crate::exec_live::LiveExecutor::run_observed`] hands back the
//! partial trace next to the `Err`.
//!
//! Determinism: triggers are counted with per-operator atomic tuple and
//! batch counters, so with a single pool thread
//! ([`crate::exec_live::LiveExecutor::with_pool_size`]`(1)`) the same
//! plan against the same workflow reproduces the identical failure
//! trace — same faulted operator, same state sequence, same tuple-count
//! cutoffs. With a multi-thread pool the faulted operator and sticky
//! terminal states are still deterministic, but cutoff counts may vary
//! with scheduling (see DESIGN.md, "Fault injection").

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use scriptflow_datakit::{Batch, DataType, Schema, Value};

use crate::dag::{Workflow, WorkflowBuilder};
use crate::operator::{WorkflowError, WorkflowResult};
use crate::ops::{FilterOp, ScanOp, SinkHandle, SinkOp};
use crate::partition::PartitionStrategy;

/// One way an injected fault can strike an operator.
///
/// Tuple positions are 1-based and cumulative across the operator's
/// workers: `PanicAt { tuple: 25 }` fires when the operator is about to
/// process its 25th tuple (input tuples for consumers, emitted tuples
/// for sources). Batch positions count batches delivered into the
/// operator's mailboxes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker processing the given (1-based) tuple panics — the
    /// capture path must turn the panic into a `Failed` operator instead
    /// of tearing the pool down.
    PanicAt {
        /// Cumulative 1-based tuple position at which to panic.
        tuple: u64,
    },
    /// The worker task is killed mid-quantum at the given (1-based)
    /// tuple: it stops processing, reports failure, and drains.
    KillWorker {
        /// Cumulative 1-based tuple position at which to kill.
        tuple: u64,
    },
    /// The Nth (1-based) batch delivered into the operator's mailboxes
    /// is followed by a poisoned payload; consuming it fails the
    /// operator.
    PoisonMailbox {
        /// 1-based delivered-batch position after which the poison
        /// message lands.
        batch: u64,
    },
    /// The operator's workers finish but never send their end-of-stream
    /// markers — downstream starves until the pool's stall detector
    /// synthesizes the missing EOS and finishes the run degraded.
    DropEos,
    /// Each worker of the operator defers its end-of-stream by this many
    /// run quanta (benign: delays completion, loses nothing).
    DelayEos {
        /// Run quanta to burn before queueing EOS.
        quanta: u32,
    },
    /// Every outgoing batch of the operator pays this much extra latency
    /// (benign: simulates a slow edge, loses nothing).
    SlowEdge {
        /// Added latency per forwarded batch group, in microseconds
        /// (capped at 10 ms by the executor).
        per_batch_micros: u64,
    },
}

impl FaultKind {
    /// Short human-readable description (used by [`FaultPlan::describe`]).
    pub fn describe(&self) -> String {
        match self {
            FaultKind::PanicAt { tuple } => format!("panic at tuple {tuple}"),
            FaultKind::KillWorker { tuple } => format!("kill worker at tuple {tuple}"),
            FaultKind::PoisonMailbox { batch } => format!("poison mailbox after batch {batch}"),
            FaultKind::DropEos => "drop EOS".to_owned(),
            FaultKind::DelayEos { quanta } => format!("delay EOS by {quanta} quanta"),
            FaultKind::SlowEdge { per_batch_micros } => {
                format!("slow edge (+{per_batch_micros}us/batch)")
            }
        }
    }

    /// True for faults that only slow the run down without losing data
    /// (`DelayEos`, `SlowEdge`).
    pub fn is_benign(&self) -> bool {
        matches!(
            self,
            FaultKind::DelayEos { .. } | FaultKind::SlowEdge { .. }
        )
    }
}

/// A [`FaultKind`] aimed at a named operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// Operator display name (must exist in the workflow; unknown names
    /// fail the run upfront with [`WorkflowError::InvalidDag`]).
    pub op: String,
    /// What happens to it.
    pub kind: FaultKind,
}

/// A seeded, deterministic set of faults to inject into one pooled run.
///
/// Build one explicitly with the `panic_at`/`kill_worker`/… builders, or
/// derive one from a seed with [`FaultPlan::random`]. Attach it via
/// [`crate::exec_live::LiveExecutor::with_faults`]; thread-per-worker
/// mode ignores fault plans (the harness targets the pooled scheduler).
///
/// # Examples
///
/// ```
/// use scriptflow_workflow::fault::FaultPlan;
///
/// let plan = FaultPlan::new(7).panic_at("parse", 25).slow_edge("scan", 50);
/// assert_eq!(plan.faults().len(), 2);
/// assert!(plan.describe().contains("panic at tuple 25"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan carrying `seed` (the seed only matters for plans
    /// built by [`FaultPlan::random`], but is always recorded so runs
    /// can be labelled).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// The seed this plan was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The faults, in the order they were added.
    pub fn faults(&self) -> &[FaultSpec] {
        &self.faults
    }

    fn push(mut self, op: impl Into<String>, kind: FaultKind) -> Self {
        self.faults.push(FaultSpec {
            op: op.into(),
            kind,
        });
        self
    }

    /// Panic the worker of `op` at its `tuple`-th (1-based) tuple.
    ///
    /// # Panics
    ///
    /// Panics if `tuple` is zero (positions are 1-based).
    pub fn panic_at(self, op: impl Into<String>, tuple: u64) -> Self {
        assert!(tuple > 0, "tuple positions are 1-based");
        self.push(op, FaultKind::PanicAt { tuple })
    }

    /// Kill the worker task of `op` mid-quantum at its `tuple`-th tuple.
    ///
    /// # Panics
    ///
    /// Panics if `tuple` is zero (positions are 1-based).
    pub fn kill_worker(self, op: impl Into<String>, tuple: u64) -> Self {
        assert!(tuple > 0, "tuple positions are 1-based");
        self.push(op, FaultKind::KillWorker { tuple })
    }

    /// Poison `op`'s mailbox after its `batch`-th delivered batch.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero (positions are 1-based).
    pub fn poison_mailbox(self, op: impl Into<String>, batch: u64) -> Self {
        assert!(batch > 0, "batch positions are 1-based");
        self.push(op, FaultKind::PoisonMailbox { batch })
    }

    /// Suppress `op`'s end-of-stream markers.
    pub fn drop_eos(self, op: impl Into<String>) -> Self {
        self.push(op, FaultKind::DropEos)
    }

    /// Delay `op`'s end-of-stream by `quanta` run quanta.
    pub fn delay_eos(self, op: impl Into<String>, quanta: u32) -> Self {
        self.push(op, FaultKind::DelayEos { quanta })
    }

    /// Add `per_batch_micros` of latency to every batch `op` forwards.
    pub fn slow_edge(self, op: impl Into<String>, per_batch_micros: u64) -> Self {
        self.push(op, FaultKind::SlowEdge { per_batch_micros })
    }

    /// One human-readable line per fault.
    pub fn describe(&self) -> String {
        let parts: Vec<String> = self
            .faults
            .iter()
            .map(|f| format!("{}: {}", f.op, f.kind.describe()))
            .collect();
        format!("seed {} [{}]", self.seed, parts.join("; "))
    }

    /// A single random fault aimed at a random operator, fully determined
    /// by `seed`. `ops` is the pool of candidate operator names (normally
    /// the workflow's operators).
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty.
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::fault::FaultPlan;
    ///
    /// let ops = vec!["scan".to_owned(), "sink".to_owned()];
    /// let a = FaultPlan::random(3, &ops);
    /// let b = FaultPlan::random(3, &ops);
    /// assert_eq!(a, b, "same seed, same plan");
    /// ```
    pub fn random(seed: u64, ops: &[String]) -> Self {
        assert!(!ops.is_empty(), "need at least one candidate operator");
        let mut rng = SplitMix64::new(seed ^ 0x9e37_79b9_7f4a_7c15);
        let op = ops[rng.next_below(ops.len() as u64) as usize].clone();
        let kind = match rng.next_below(6) {
            0 => FaultKind::PanicAt {
                tuple: 1 + rng.next_u64() % 120,
            },
            1 => FaultKind::KillWorker {
                tuple: 1 + rng.next_u64() % 120,
            },
            2 => FaultKind::PoisonMailbox {
                batch: 1 + rng.next_u64() % 6,
            },
            3 => FaultKind::DropEos,
            4 => FaultKind::DelayEos {
                quanta: 1 + (rng.next_u64() % 4) as u32,
            },
            _ => FaultKind::SlowEdge {
                per_batch_micros: 10 + rng.next_u64() % 190,
            },
        };
        FaultPlan::new(seed).push(op, kind)
    }
}

/// The splitmix64 generator (Steele et al.) — tiny, seedable, and free
/// of external dependencies, which is what a deterministic chaos harness
/// needs more than statistical quality.
///
/// # Examples
///
/// ```
/// use scriptflow_workflow::fault::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator starting from `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.next_u64() % bound
    }
}

/// A random linear workflow for chaos testing: scan → 1–3 filters →
/// sink, with seeded row count, parallelism, filter moduli, and
/// partition strategies. Linear chains keep the trace invariants
/// checkable (each operator's input is bounded by its upstream's
/// output).
///
/// Returns the workflow, the sink's result handle, and the operator
/// names in topological order (scan first, sink last) — the candidate
/// pool for [`FaultPlan::random`].
///
/// # Examples
///
/// ```
/// use scriptflow_workflow::fault::random_chain;
///
/// let (wf, _handle, names) = random_chain(11);
/// assert_eq!(names.first().map(String::as_str), Some("scan"));
/// assert_eq!(names.last().map(String::as_str), Some("sink"));
/// assert_eq!(wf.ops().len(), names.len());
/// ```
pub fn random_chain(seed: u64) -> (Workflow, SinkHandle, Vec<String>) {
    let mut rng = SplitMix64::new(seed);
    let rows = 64 + rng.next_below(961) as i64; // 64..=1024
    let stages = 1 + rng.next_below(3) as usize; // 1..=3 filters

    let schema = Schema::of(&[("id", DataType::Int)]);
    let batch = Batch::from_rows(schema, (0..rows).map(|i| vec![Value::Int(i)]).collect())
        .expect("schema matches rows");

    let mut b = WorkflowBuilder::new();
    let mut names = Vec::with_capacity(stages + 2);
    let scan_par = 1 + rng.next_below(2) as usize;
    let mut prev = b.add(Arc::new(ScanOp::new("scan", batch)), scan_par);
    names.push("scan".to_owned());
    for s in 0..stages {
        let name = format!("f{s}");
        // Keep all but every k-th id, k in 2..=5 — output strictly
        // bounded by input, never empty for the row counts above.
        let k = 2 + rng.next_below(4) as i64;
        let par = 1 + rng.next_below(3) as usize;
        let filt = b.add(
            Arc::new(FilterOp::new(&name, move |t| Ok(t.get_int("id")? % k != 0))),
            par,
        );
        let strategy = if rng.next_below(2) == 0 {
            PartitionStrategy::RoundRobin
        } else {
            PartitionStrategy::Hash(vec!["id".into()])
        };
        b.connect(prev, filt, 0, strategy);
        names.push(name);
        prev = filt;
    }
    let sink_op = SinkOp::new("sink");
    let handle = sink_op.handle();
    let sink = b.add(Arc::new(sink_op), 1);
    b.connect(prev, sink, 0, PartitionStrategy::Single);
    names.push("sink".to_owned());
    (b.build().expect("chain DAG is valid"), handle, names)
}

// ---------------------------------------------------------------------------
// Compiled plan (executor-facing)
// ---------------------------------------------------------------------------

/// What a tuple-counted trigger does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TupleAction {
    /// Panic the worker (exercises the panic-capture path).
    Panic,
    /// Kill the task without panicking (clean mid-quantum abort).
    Kill,
}

/// A fired tuple trigger: process `keep` tuples of the current span
/// normally, then take `action`; `at` is the absolute 1-based position
/// (for the error message).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TupleTrigger {
    pub(crate) keep: u64,
    pub(crate) at: u64,
    pub(crate) action: TupleAction,
}

/// Per-operator compiled fault state. Trigger bookkeeping is atomic so
/// concurrent workers of one operator fire each fault exactly once.
#[derive(Debug, Default)]
struct OpFaults {
    tuple_at: Option<(u64, TupleAction)>,
    tuple_seen: AtomicU64,
    poison_at: Option<u64>,
    batches_delivered: AtomicU64,
    drop_eos: bool,
    eos_drop_reported: AtomicBool,
    delay_eos: u32,
    slow_edge: Option<Duration>,
}

/// A [`FaultPlan`] resolved against one workflow: operator names mapped
/// to indices, triggers armed. Built once per run by the pooled
/// executor.
#[derive(Debug)]
pub(crate) struct CompiledFaults {
    ops: Vec<OpFaults>,
    triggered: AtomicU64,
}

/// Cap on injected per-batch latency, so a hostile plan cannot wedge a
/// run for minutes.
const SLOW_EDGE_CAP: Duration = Duration::from_millis(10);

impl CompiledFaults {
    /// Resolve `plan` against the workflow's operator list. An unknown
    /// operator name is a plan bug and fails the run upfront. Later
    /// specs of the same kind for the same operator overwrite earlier
    /// ones.
    pub(crate) fn compile(plan: &FaultPlan, wf: &Workflow) -> WorkflowResult<CompiledFaults> {
        let mut ops: Vec<OpFaults> = wf.ops().iter().map(|_| OpFaults::default()).collect();
        let mut benign_armed = 0u64;
        for spec in plan.faults() {
            let idx = wf
                .ops()
                .iter()
                .position(|n| n.factory.name() == spec.op)
                .ok_or_else(|| {
                    WorkflowError::InvalidDag(format!(
                        "fault plan names unknown operator `{}`",
                        spec.op
                    ))
                })?;
            let slot = &mut ops[idx];
            match spec.kind {
                FaultKind::PanicAt { tuple } => slot.tuple_at = Some((tuple, TupleAction::Panic)),
                FaultKind::KillWorker { tuple } => slot.tuple_at = Some((tuple, TupleAction::Kill)),
                FaultKind::PoisonMailbox { batch } => slot.poison_at = Some(batch),
                FaultKind::DropEos => slot.drop_eos = true,
                FaultKind::DelayEos { quanta } => {
                    slot.delay_eos = quanta;
                    benign_armed += 1;
                }
                FaultKind::SlowEdge { per_batch_micros } => {
                    slot.slow_edge =
                        Some(Duration::from_micros(per_batch_micros).min(SLOW_EDGE_CAP));
                    benign_armed += 1;
                }
            }
        }
        // Benign faults fire unconditionally (every batch / every
        // completion), so they count as injected from the start; the
        // lossy kinds only count when their trigger actually lands.
        Ok(CompiledFaults {
            ops,
            triggered: AtomicU64::new(benign_armed),
        })
    }

    /// Count `n` tuples about to be processed by `op`. If the armed
    /// tuple trigger falls inside this span, returns how many of the `n`
    /// tuples to process first and the action to take. The atomic
    /// `fetch_add` partitions the tuple stream across workers, so
    /// exactly one caller sees the trigger.
    pub(crate) fn check_tuples(&self, op: usize, n: u64) -> Option<TupleTrigger> {
        let f = &self.ops[op];
        let (at, action) = f.tuple_at?;
        if n == 0 {
            return None;
        }
        let prev = f.tuple_seen.fetch_add(n, Ordering::AcqRel);
        if prev < at && at <= prev + n {
            self.triggered.fetch_add(1, Ordering::Relaxed);
            Some(TupleTrigger {
                keep: at - prev - 1,
                at,
                action,
            })
        } else {
            None
        }
    }

    /// Count one batch delivered into `op`'s mailboxes; true exactly
    /// when this is the armed poison position.
    pub(crate) fn check_poison(&self, op: usize) -> bool {
        let f = &self.ops[op];
        match f.poison_at {
            Some(at) => {
                let fired = f.batches_delivered.fetch_add(1, Ordering::AcqRel) + 1 == at;
                if fired {
                    self.triggered.fetch_add(1, Ordering::Relaxed);
                }
                fired
            }
            None => false,
        }
    }

    /// True if `op`'s EOS markers are suppressed by the plan.
    pub(crate) fn drops_eos(&self, op: usize) -> bool {
        self.ops[op].drop_eos
    }

    /// First call per operator returns true (the drop is recorded as a
    /// failure once, however many workers suppress their EOS).
    pub(crate) fn report_eos_drop(&self, op: usize) -> bool {
        let first = !self.ops[op].eos_drop_reported.swap(true, Ordering::AcqRel);
        if first {
            self.triggered.fetch_add(1, Ordering::Relaxed);
        }
        first
    }

    /// Run quanta each worker of `op` must burn before sending EOS.
    pub(crate) fn eos_delay(&self, op: usize) -> u32 {
        self.ops[op].delay_eos
    }

    /// Injected latency per forwarded batch group of `op`, if any.
    pub(crate) fn slow_edge(&self, op: usize) -> Option<Duration> {
        self.ops[op].slow_edge
    }

    /// Faults that actually fired during the run.
    pub(crate) fn triggered(&self) -> u64 {
        self.triggered.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_varies() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(1);
        let mut c = SplitMix64::new(2);
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn plan_builders_accumulate_in_order() {
        let plan = FaultPlan::new(9)
            .panic_at("a", 5)
            .drop_eos("b")
            .slow_edge("c", 100);
        assert_eq!(plan.seed(), 9);
        assert_eq!(plan.faults().len(), 3);
        assert_eq!(plan.faults()[0].op, "a");
        assert_eq!(plan.faults()[1].kind, FaultKind::DropEos);
        assert!(plan.faults()[2].kind.is_benign());
        assert!(!plan.faults()[0].kind.is_benign());
    }

    #[test]
    fn random_plan_is_seed_deterministic() {
        let ops: Vec<String> = ["scan", "f0", "sink"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        for seed in 0..64 {
            assert_eq!(FaultPlan::random(seed, &ops), FaultPlan::random(seed, &ops));
        }
        // Different seeds eventually produce different plans.
        let distinct = (0..64)
            .map(|s| format!("{:?}", FaultPlan::random(s, &ops)))
            .collect::<std::collections::HashSet<_>>();
        assert!(
            distinct.len() > 10,
            "only {} distinct plans",
            distinct.len()
        );
    }

    #[test]
    fn compile_rejects_unknown_operator() {
        let (wf, _h, _names) = random_chain(0);
        let plan = FaultPlan::new(0).panic_at("nonexistent", 1);
        let err = CompiledFaults::compile(&plan, &wf).unwrap_err();
        assert!(err.to_string().contains("nonexistent"), "{err}");
    }

    #[test]
    fn tuple_trigger_fires_exactly_once_with_correct_offset() {
        let (wf, _h, _names) = random_chain(0);
        let plan = FaultPlan::new(0).kill_worker("scan", 10);
        let f = CompiledFaults::compile(&plan, &wf).unwrap();
        // Batches of 4: trigger lands in the third batch, after 1 tuple.
        assert_eq!(f.check_tuples(0, 4), None);
        assert_eq!(f.check_tuples(0, 4), None);
        assert_eq!(
            f.check_tuples(0, 4),
            Some(TupleTrigger {
                keep: 1,
                at: 10,
                action: TupleAction::Kill
            })
        );
        assert_eq!(f.check_tuples(0, 4), None);
        assert_eq!(f.triggered(), 1);
        // Other operators are unaffected.
        assert_eq!(f.check_tuples(1, 100), None);
    }

    #[test]
    fn poison_counts_delivered_batches() {
        let (wf, _h, _names) = random_chain(0);
        let plan = FaultPlan::new(0).poison_mailbox("sink", 2);
        let f = CompiledFaults::compile(&plan, &wf).unwrap();
        let sink = wf.ops().len() - 1;
        assert!(!f.check_poison(sink));
        assert!(f.check_poison(sink));
        assert!(!f.check_poison(sink));
        assert!(!f.check_poison(0), "unarmed operator never poisons");
    }

    #[test]
    fn eos_drop_reports_once() {
        let (wf, _h, _names) = random_chain(0);
        let plan = FaultPlan::new(0).drop_eos("scan");
        let f = CompiledFaults::compile(&plan, &wf).unwrap();
        assert!(f.drops_eos(0));
        assert!(!f.drops_eos(1));
        assert!(f.report_eos_drop(0));
        assert!(!f.report_eos_drop(0));
    }

    #[test]
    fn slow_edge_latency_is_capped() {
        let (wf, _h, _names) = random_chain(0);
        let plan = FaultPlan::new(0).slow_edge("scan", 60_000_000);
        let f = CompiledFaults::compile(&plan, &wf).unwrap();
        assert_eq!(f.slow_edge(0), Some(SLOW_EDGE_CAP));
        assert_eq!(f.slow_edge(1), None);
    }

    #[test]
    fn random_chain_is_seed_deterministic() {
        for seed in [0u64, 1, 17, 999] {
            let (wf_a, _ha, names_a) = random_chain(seed);
            let (wf_b, _hb, names_b) = random_chain(seed);
            assert_eq!(names_a, names_b);
            assert_eq!(wf_a.ops().len(), wf_b.ops().len());
            for (a, b) in wf_a.ops().iter().zip(wf_b.ops()) {
                assert_eq!(a.parallelism, b.parallelism);
            }
        }
    }
}
