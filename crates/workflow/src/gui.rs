//! "GUI" rendering: the workflow graph and its runtime state as ASCII and
//! JSON documents.
//!
//! There is no browser front-end in this reproduction; instead the engine
//! renders exactly the information Texera's GUI shows — the DAG, each
//! operator's status colour, and its input/output tuple counts (Figs. 2
//! and 9) — as a text diagram for terminals and a JSON document a
//! front-end could consume.
//!
//! Every renderer here is executor-agnostic: [`RunMetrics`] and
//! [`ProgressTrace`] carry the same shape whether they came from the
//! simulated executor's virtual clock or the pooled live executor's
//! wall-clock tracer, so one GUI layer displays both paradigms.

use scriptflow_datakit::codec::Json;

use crate::dag::{OpId, Workflow};
use crate::exec_sim::WorkerInterval;
use crate::metrics::RunMetrics;
use crate::trace::{ProgressTrace, TraceJson};
use scriptflow_simcluster::SimTime;

/// Render the workflow structure as an ASCII diagram: one line per
/// operator in topological order, with edge annotations.
pub fn render_ascii(wf: &Workflow) -> String {
    let mut out = String::new();
    for &op in wf.topo_order() {
        let node = wf.op(op);
        out.push_str(&format!(
            "[{}] ({} x{} workers, {})\n",
            node.factory.name(),
            node.factory.language(),
            node.parallelism,
            wf.schema(op)
        ));
        for (_, e) in wf.out_edges(op) {
            out.push_str(&format!(
                "  └─({})─▶ [{}].port{}\n",
                e.partition.label(),
                wf.op(e.to).factory.name(),
                e.to_port
            ));
        }
    }
    out
}

/// Render the workflow plus run metrics the way the GUI displays a live
/// execution: status colour and tuple counters per operator.
pub fn render_run_ascii(wf: &Workflow, metrics: &RunMetrics) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "run: makespan {:.3}s, {} workers, {} events\n",
        metrics.makespan.as_secs_f64(),
        metrics.total_workers,
        metrics.events
    ));
    for &op in wf.topo_order() {
        let node = wf.op(op);
        let m = &metrics.operators[op.0];
        let counts = if node.factory.input_ports() == 0 {
            // Source operators only show the output-tuple count (Fig. 9).
            format!("out={}", m.output_tuples)
        } else if wf.out_edges(op).is_empty() {
            // Sink operators only show the input-tuple count.
            format!("in={}", m.input_tuples)
        } else {
            format!("in={} out={}", m.input_tuples, m.output_tuples)
        };
        out.push_str(&format!(
            "[{}] {:<12} {} ({})\n",
            node.factory.name(),
            format!("<{}>", m.state.color()),
            counts,
            node.factory.language()
        ));
    }
    out
}

/// Export the workflow as a Graphviz DOT document (boxes labelled with
/// name, language, and worker count; edges labelled with the partition
/// strategy).
pub fn to_dot(wf: &Workflow) -> String {
    let mut out = String::from("digraph workflow {\n  rankdir=LR;\n  node [shape=box];\n");
    for (i, node) in wf.ops().iter().enumerate() {
        out.push_str(&format!(
            "  op{i} [label=\"{}\\n{} x{}\"];\n",
            node.factory.name().replace('"', "'"),
            node.factory.language(),
            node.parallelism
        ));
    }
    for e in wf.edges() {
        out.push_str(&format!(
            "  op{} -> op{} [label=\"{}\"];\n",
            e.from.0,
            e.to.0,
            e.partition.label()
        ));
    }
    out.push_str("}\n");
    out
}

/// Render a worker timeline as a text Gantt chart: one row per worker,
/// `#` marking busy columns over `width` buckets of the makespan.
pub fn render_gantt(
    wf: &Workflow,
    timeline: &[WorkerInterval],
    makespan: SimTime,
    width: usize,
) -> String {
    assert!(width > 0, "gantt width must be positive");
    let total = makespan.as_micros().max(1);
    let mut rows: Vec<(String, Vec<bool>)> = Vec::new();
    for node in wf.ops() {
        for w in 0..node.parallelism {
            rows.push((format!("{}[{w}]", node.factory.name()), vec![false; width]));
        }
    }
    // Map (op, worker) to its row index.
    let row_of = |op: OpId, worker: usize| -> usize {
        let mut idx = 0;
        for (i, node) in wf.ops().iter().enumerate() {
            if i == op.0 {
                return idx + worker;
            }
            idx += node.parallelism;
        }
        unreachable!("interval references a missing operator")
    };
    for iv in timeline {
        let row = row_of(iv.op, iv.worker);
        let lo = (iv.start.as_micros() * width as u64 / total).min(width as u64 - 1) as usize;
        let hi = (iv.end.as_micros() * width as u64 / total).min(width as u64 - 1) as usize;
        for cell in &mut rows[row].1[lo..=hi] {
            *cell = true;
        }
    }
    let label_w = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(4);
    let mut out = String::new();
    for (name, cells) in rows {
        out.push_str(&format!("{name:<label_w$} |"));
        for busy in cells {
            out.push(if busy { '#' } else { ' ' });
        }
        out.push_str(
            "|
",
        );
    }
    out.push_str(&format!(
        "{:<label_w$} |{}| 0 .. {:.3}s
",
        "(time)",
        "-".repeat(width),
        makespan.as_secs_f64()
    ));
    out
}

/// The workflow structure as a JSON document (operators + links), the
/// wire format a web front-end would load.
pub fn workflow_json(wf: &Workflow) -> Json {
    let ops: Vec<Json> = (0..wf.ops().len())
        .map(OpId)
        .map(|id| {
            let node = wf.op(id);
            Json::Object(vec![
                ("id".into(), Json::Int(id.0 as i64)),
                ("name".into(), Json::Str(node.factory.name().into())),
                (
                    "language".into(),
                    Json::Str(node.factory.language().to_string()),
                ),
                ("workers".into(), Json::Int(node.parallelism as i64)),
                (
                    "inputPorts".into(),
                    Json::Int(node.factory.input_ports() as i64),
                ),
                ("schema".into(), Json::Str(wf.schema(id).to_string())),
            ])
        })
        .collect();
    let links: Vec<Json> = wf
        .edges()
        .iter()
        .map(|e| {
            Json::Object(vec![
                ("from".into(), Json::Int(e.from.0 as i64)),
                ("to".into(), Json::Int(e.to.0 as i64)),
                ("toPort".into(), Json::Int(e.to_port as i64)),
                ("partition".into(), Json::Str(e.partition.label())),
            ])
        })
        .collect();
    Json::Object(vec![
        ("operators".into(), Json::Array(ops)),
        ("links".into(), Json::Array(links)),
    ])
}

/// Run metrics as a JSON document (per-operator status + counters).
pub fn metrics_json(metrics: &RunMetrics) -> Json {
    let ops: Vec<Json> = metrics
        .operators
        .iter()
        .map(|m| {
            Json::Object(vec![
                ("name".into(), Json::Str(m.name.clone())),
                ("state".into(), Json::Str(format!("{:?}", m.state))),
                ("color".into(), Json::Str(m.state.color().into())),
                ("inputTuples".into(), Json::Int(m.input_tuples as i64)),
                ("outputTuples".into(), Json::Int(m.output_tuples as i64)),
                ("workers".into(), Json::Int(m.workers as i64)),
                ("busySeconds".into(), Json::Float(m.busy.as_secs_f64())),
            ])
        })
        .collect();
    Json::Object(vec![
        (
            "makespanSeconds".into(),
            Json::Float(metrics.makespan.as_secs_f64()),
        ),
        (
            "totalWorkers".into(),
            Json::Int(metrics.total_workers as i64),
        ),
        ("operators".into(), Json::Array(ops)),
    ])
}

/// The complete observability document for one run: the workflow graph,
/// the final per-operator metrics, and the sampled progress trace, in one
/// JSON object (`{"workflow": …, "metrics": …, "trace": …}`).
///
/// This is what a front-end (or `bench_engine`) consumes to replay a run:
/// the graph gives the layout, the metrics give the terminal Fig.-9
/// counters, and the trace gives the animation frames. Works identically
/// for simulated and live runs.
pub fn observability_json(wf: &Workflow, metrics: &RunMetrics, trace: &ProgressTrace) -> Json {
    Json::Object(vec![
        ("workflow".into(), workflow_json(wf)),
        ("metrics".into(), metrics_json(metrics)),
        ("trace".into(), TraceJson::from_trace(trace).into_document()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::EngineConfig;
    use crate::dag::WorkflowBuilder;
    use crate::exec_sim::SimExecutor;
    use crate::ops::{FilterOp, ScanOp, SinkOp};
    use crate::partition::PartitionStrategy;
    use scriptflow_datakit::{Batch, DataType, Schema, Value};
    use scriptflow_simcluster::ClusterSpec;
    use std::sync::Arc;

    fn sample() -> Workflow {
        let schema = Schema::of(&[("id", DataType::Int)]);
        let batch =
            Batch::from_rows(schema, (0..10i64).map(|i| vec![Value::Int(i)]).collect()).unwrap();
        let mut b = WorkflowBuilder::new();
        let s = b.add(Arc::new(ScanOp::new("JSONL Processing", batch)), 1);
        let f = b.add(
            Arc::new(FilterOp::new("Filter", |t| Ok(t.get_int("id")? < 5))),
            2,
        );
        let k = b.add(Arc::new(SinkOp::new("View Results")), 1);
        b.connect(s, f, 0, PartitionStrategy::RoundRobin);
        b.connect(f, k, 0, PartitionStrategy::Single);
        b.build().unwrap()
    }

    #[test]
    fn ascii_structure_lists_all_operators_and_edges() {
        let wf = sample();
        let text = render_ascii(&wf);
        assert!(text.contains("[JSONL Processing]"));
        assert!(text.contains("[Filter]"));
        assert!(text.contains("[View Results]"));
        assert!(text.contains("round-robin"));
        assert!(text.contains("x2 workers"));
    }

    #[test]
    fn run_ascii_shows_fig9_counts() {
        let wf = sample();
        let cfg = EngineConfig {
            cluster: ClusterSpec::single_node(2),
            ..EngineConfig::default()
        };
        let res = SimExecutor::new(cfg).run(&wf).unwrap();
        let text = render_run_ascii(&wf, &res.metrics);
        // Source shows only out=, sink only in= (paper Fig. 9).
        let src_line = text
            .lines()
            .find(|l| l.contains("JSONL Processing"))
            .unwrap();
        assert!(
            src_line.contains("out=10") && !src_line.contains("in="),
            "{src_line}"
        );
        assert!(text.contains("in=10 out=5"));
        let sink_line = text.lines().find(|l| l.contains("View Results")).unwrap();
        assert!(
            sink_line.contains("in=5") && !sink_line.contains("out="),
            "{sink_line}"
        );
        assert!(text.contains("<green>"));
    }

    #[test]
    fn json_documents_parse_back() {
        let wf = sample();
        let doc = workflow_json(&wf);
        let text = doc.to_string_compact();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, doc);
        match parsed {
            Json::Object(kv) => {
                assert_eq!(kv[0].0, "operators");
                match &kv[0].1 {
                    Json::Array(ops) => assert_eq!(ops.len(), 3),
                    other => panic!("expected array, got {other:?}"),
                }
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn dot_export_lists_all_nodes_and_edges() {
        let wf = sample();
        let dot = to_dot(&wf);
        assert!(dot.starts_with("digraph workflow {"));
        assert!(dot.contains("JSONL Processing"));
        assert!(dot.contains("op0 -> op1"));
        assert!(dot.contains("round-robin"));
        assert_eq!(dot.matches(" -> ").count(), wf.edges().len());
    }

    #[test]
    fn gantt_marks_busy_workers() {
        let wf = sample();
        let cfg = EngineConfig {
            cluster: ClusterSpec::single_node(2),
            ..EngineConfig::default()
        };
        let res = SimExecutor::new(cfg)
            .with_worker_timeline()
            .run(&wf)
            .unwrap();
        assert!(!res.worker_timeline.is_empty());
        let text = render_gantt(&wf, &res.worker_timeline, res.makespan, 40);
        // One row per worker: scan(1) + filter(2) + sink(1) = 4 + axis.
        assert_eq!(text.lines().count(), 5, "{text}");
        assert!(text.contains('#'));
        assert!(text.contains("Filter[1]"));
    }

    #[test]
    fn observability_json_merges_graph_metrics_and_trace() {
        use crate::exec_live::LiveExecutor;
        use scriptflow_simcluster::SimDuration;

        // Simulated run, sampled on the virtual clock.
        let wf = sample();
        let cfg = EngineConfig {
            cluster: ClusterSpec::single_node(2),
            ..EngineConfig::default()
        };
        let sim = SimExecutor::new(cfg)
            .with_trace(SimDuration::from_millis(1))
            .run(&wf)
            .unwrap();
        let doc = observability_json(&wf, &sim.metrics, &sim.trace);
        let text = doc.to_string_compact();
        assert!(text.contains("\"workflow\""));
        assert!(text.contains("\"metrics\""));
        assert!(text.contains("\"samples\""));

        // Live pooled run: same document shape, no special-casing.
        let wf2 = sample();
        let live = LiveExecutor::new(4).run(&wf2).unwrap();
        let live_doc = observability_json(&wf2, &live.metrics, &live.trace);
        let live_text = live_doc.to_string_compact();
        assert!(live_text.contains("\"samples\""));
        assert!(live_text.contains("\"state\":\"Completed\""));
    }

    #[test]
    fn metrics_json_includes_states() {
        let wf = sample();
        let cfg = EngineConfig {
            cluster: ClusterSpec::single_node(2),
            ..EngineConfig::default()
        };
        let res = SimExecutor::new(cfg).run(&wf).unwrap();
        let text = metrics_json(&res.metrics).to_string_compact();
        assert!(text.contains("\"state\":\"Completed\""));
        assert!(text.contains("\"color\":\"green\""));
    }
}
