//! # scriptflow-workflow
//!
//! The GUI-based workflow paradigm engine — a from-scratch analogue of
//! Texera (§I, Fig. 2 of the paper).
//!
//! A workflow is a directed acyclic graph of **operators** connected by
//! explicit **edges** that carry tuples. The engine provides what the
//! paper measures:
//!
//! * **Explicit data lineage** — edges declare data flow; the DAG is
//!   validated and schemas are propagated at build time
//!   ([`dag::Workflow`]).
//! * **Pipelined execution** — operators process different tuples at the
//!   same time; batches stream along edges without stage barriers
//!   ([`exec_sim::SimExecutor`] on the virtual clock, and
//!   [`exec_live::LiveExecutor`] on real OS threads: a fixed-size worker
//!   pool schedules operator-worker tasks over bounded, backpressured
//!   mailboxes, routing `Arc`-shared batches through per-edge compiled
//!   partitioners).
//! * **Operator-level parallelism** — each operator runs `parallelism`
//!   worker instances with hash/round-robin/broadcast partitioning
//!   ([`partition::PartitionStrategy`]).
//! * **Multi-language operators** — each operator declares its
//!   implementation [`Language`]; the engine charges cross-language
//!   boundary and per-language compute costs (§III-C, Table I).
//! * **Per-operator progress** — input/output tuple counts and
//!   color-coded operator states, rendered as ASCII and JSON "GUI"
//!   documents (Fig. 9; [`gui`]). Both executors emit the same
//!   [`trace::ProgressTrace`] shape: the simulated executor samples the
//!   virtual clock, while the pooled live executor feeds a lock-light
//!   [`trace_live::LiveTracer`] from per-task hooks and samples it on a
//!   wall-clock interval — so [`trace::render_timeline`] and
//!   [`trace::TraceJson`] replay either run identically.
//! * **Accountability under failure** — a seeded [`fault::FaultPlan`]
//!   injects operator panics, killed workers, poisoned mailboxes,
//!   dropped/delayed EOS, and slow edges into the pooled executor; the
//!   pool drains deterministically, pins the fault to one
//!   [`OperatorState::Failed`] operator, marks downstream operators
//!   [`OperatorState::Degraded`] on their truncated input, and preserves
//!   the partial trace ([`exec_live::LiveExecutor::run_observed`]).
//! * **Recovery under failure** — a per-operator [`retry::RetryPolicy`]
//!   (bounded exponential backoff, carried by [`EngineConfig::retry`])
//!   replays a faulted run quantum with its held input batch instead of
//!   failing the operator: tuples are delivered exactly once across
//!   replays, the operator surfaces [`OperatorState::Retrying`] while a
//!   replay is pending, and only an exhausted budget degrades to the
//!   drain path. Both engines model it — the simulator as replayed
//!   virtual quanta — and report attempt counts.
//! * **Many concurrent pipelines on one shared pool** — a process-wide
//!   [`service::WorkflowService`] owns a single fixed worker pool and
//!   admits many concurrent DAG submissions, time-slicing operator
//!   quanta across runs with weighted-fair queueing, per-tenant quotas
//!   and mailbox budgets, a bounded admission queue with explicit
//!   rejection, and per-run fault/retry isolation (one tenant's retry
//!   storm parks on a timer instead of sleeping a shared worker).
//! * **Incremental re-execution** — every node carries a Merkle-style
//!   content fingerprint (spec ⊕ upstream cone;
//!   [`scriptflow_core::fingerprint`]), and an optional
//!   [`cache::ResultCache`] memoizes sealed operator outputs as
//!   compressed block-store segments keyed by fingerprint. With
//!   [`EngineConfig::result_cache`] set, both executors serve cache
//!   hits from their segments and skip the unedited cone upstream —
//!   the workflow paradigm's answer to re-running a whole notebook
//!   after a one-cell edit.
//! * **One execution surface over both engines** — a
//!   [`backend::ExecBackend`] selected from a
//!   [`scriptflow_core::BackendKind`] runs the same built DAG on either
//!   executor and normalizes the result into one
//!   [`backend::EngineRun`] (rows, trace, metrics, wall-clock/pool
//!   extras), so task drivers and benches thread a `--backend` flag
//!   instead of duplicating executor construction.
//!
//! [`Language`]: scriptflow_simcluster::Language

#![warn(missing_docs)]

pub mod backend;
pub mod cache;
pub mod cost;
pub mod dag;
pub mod exec_live;
pub mod exec_sim;
pub mod fault;
pub mod gui;
pub mod metrics;
pub mod operator;
pub mod ops;
pub mod partition;
pub mod retry;
pub mod service;
pub mod spec;
pub mod spill;
pub mod trace;
pub mod trace_live;

pub use backend::{EngineRun, ExecBackend};
pub use cache::{commit_recordings_as, CacheEntry, CachePlan, CommitStats, PublishOutcome, ResultCache};
pub use cost::{CostProfile, EngineConfig};
pub use dag::{EdgeId, OpId, Workflow, WorkflowBuilder};
pub use exec_live::{ExecMode, LiveExecutor, LiveRunResult, PoolStats};
pub use exec_sim::{SimExecutor, SimRunResult};
pub use fault::{FaultKind, FaultPlan, FaultSpec};
pub use metrics::{OperatorMetrics, OperatorState, RunMetrics};
pub use operator::{Operator, OperatorFactory, OutputCollector, WorkflowError, WorkflowResult};
pub use partition::{CompiledPartitioner, PartitionStrategy};
pub use retry::{Backoff, RetryConfig, RetryPolicy};
pub use service::{
    RunHandle, RunOptions, RunReport, RunStatus, ServiceConfig, ServiceStats, SubmitError,
    TenantQuota, TenantStats, WorkflowService,
};
pub use spec::SpecWorkflow;
pub use trace::{render_timeline, OperatorSnapshot, ProgressTrace, TraceJson};
pub use trace_live::{LiveTracer, OperatorProbe};
