//! Execution instrumentation: operator states and tuple counts.
//!
//! Texera's GUI "utilizes different colors to visually represent the
//! status of each operator … and provides information about the amount of
//! data being processed by each operator" (§III-A). These types are that
//! information; [`crate::gui`] renders them.

use scriptflow_simcluster::{Language, SimDuration, SimTime};

/// Lifecycle state of an operator, as displayed in the GUI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperatorState {
    /// Workers created, no data processed yet.
    Initializing,
    /// At least one worker has processed data.
    Running,
    /// Execution paused by the user.
    Paused,
    /// A worker's run quantum faulted and a retry budget remains: the
    /// faulted quantum is being replayed with its held input batch (see
    /// [`crate::retry`]). Clears to [`OperatorState::Completed`] when
    /// the replay finishes the operator; exhausting the budget moves to
    /// [`OperatorState::Failed`] instead.
    Retrying,
    /// All workers finished.
    Completed,
    /// All workers finished, but an upstream failure truncated this
    /// operator's input: its output covers only the data that arrived
    /// before the failure (the drain path's partial-result marker).
    Degraded,
    /// A worker hit an error; the error is reported at this operator.
    Failed,
}

impl OperatorState {
    /// The GUI colour conventionally associated with the state.
    pub fn color(&self) -> &'static str {
        match self {
            OperatorState::Initializing => "gray",
            OperatorState::Running => "blue",
            OperatorState::Paused => "yellow",
            OperatorState::Retrying => "purple",
            OperatorState::Completed => "green",
            OperatorState::Degraded => "orange",
            OperatorState::Failed => "red",
        }
    }

    /// The state's display label, stable across releases — the string
    /// used by the JSON trace export ([`crate::trace::TraceJson`]).
    pub fn label(&self) -> &'static str {
        match self {
            OperatorState::Initializing => "Initializing",
            OperatorState::Running => "Running",
            OperatorState::Paused => "Paused",
            OperatorState::Retrying => "Retrying",
            OperatorState::Completed => "Completed",
            OperatorState::Degraded => "Degraded",
            OperatorState::Failed => "Failed",
        }
    }

    /// Parse a [`OperatorState::label`] back into a state (the JSON
    /// trace import path).
    pub fn parse(label: &str) -> Option<OperatorState> {
        match label {
            "Initializing" => Some(OperatorState::Initializing),
            "Running" => Some(OperatorState::Running),
            "Paused" => Some(OperatorState::Paused),
            "Retrying" => Some(OperatorState::Retrying),
            "Completed" => Some(OperatorState::Completed),
            "Degraded" => Some(OperatorState::Degraded),
            "Failed" => Some(OperatorState::Failed),
            _ => None,
        }
    }

    /// True for states an operator never leaves
    /// (`Completed`/`Degraded`/`Failed`).
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            OperatorState::Completed | OperatorState::Degraded | OperatorState::Failed
        )
    }
}

/// Per-operator runtime counters (the two numbers on every box in the
/// paper's Fig. 9: input tuples and output tuples).
#[derive(Debug, Clone)]
pub struct OperatorMetrics {
    /// Operator display name.
    pub name: String,
    /// Implementation language.
    pub language: Language,
    /// Configured worker count.
    pub workers: usize,
    /// Tuples received across all workers.
    pub input_tuples: u64,
    /// Tuples emitted across all workers.
    pub output_tuples: u64,
    /// Whole input batches dropped by the operator's zone-map check
    /// (per-batch min/max statistics proved no row could pass) without
    /// reading their columns. Non-zero only on the columnar path.
    pub batches_skipped: u64,
    /// Compressed blocks written to the spill store when the operator's
    /// buffered state outgrew its memory budget. 0 without a budget.
    pub spilled_blocks: u64,
    /// Compressed bytes across all spilled blocks.
    pub spilled_bytes: u64,
    /// Spilled blocks read back (partition joins, run merges).
    pub spill_reads: u64,
    /// 1 when this operator was served from the result cache (it never
    /// ran; a replay source emitted its sealed output). 0 otherwise.
    pub cache_hits: u64,
    /// 1 when this operator ran under a result cache, missed, and
    /// recorded its output for publication. 0 otherwise.
    pub cache_misses: u64,
    /// Compressed bytes decoded from the cache to serve this operator
    /// (non-zero only with [`OperatorMetrics::cache_hits`]).
    pub cache_bytes: u64,
    /// Cache entries evicted to admit this operator's published output
    /// (non-zero only when the run's cache has a byte budget and this
    /// operator's publication displaced earlier entries).
    pub cache_evictions: u64,
    /// Summed busy time across workers.
    pub busy: SimDuration,
    /// Current lifecycle state.
    pub state: OperatorState,
}

impl OperatorMetrics {
    /// Fraction of the makespan this operator's workers were busy, summed
    /// across workers and normalized (1.0 = every worker busy the whole
    /// run).
    pub fn utilization(&self, makespan: SimTime) -> f64 {
        let denom = makespan.as_secs_f64() * self.workers.max(1) as f64;
        if denom <= 0.0 {
            return 0.0;
        }
        self.busy.as_secs_f64() / denom
    }

    /// Fresh counters for an operator.
    pub fn new(name: impl Into<String>, language: Language, workers: usize) -> Self {
        OperatorMetrics {
            name: name.into(),
            language,
            workers,
            input_tuples: 0,
            output_tuples: 0,
            batches_skipped: 0,
            spilled_blocks: 0,
            spilled_bytes: 0,
            spill_reads: 0,
            cache_hits: 0,
            cache_misses: 0,
            cache_bytes: 0,
            cache_evictions: 0,
            busy: SimDuration::ZERO,
            state: OperatorState::Initializing,
        }
    }

    /// Prime the cache counters from the factory markers the planner
    /// leaves on a cache-aware workflow (see [`crate::cache`]): a replay
    /// factory is one hit (with its served bytes), a recording factory
    /// is one miss. Both executors call this when initializing
    /// per-operator telemetry, because a served operator's instances
    /// never execute.
    pub fn prime_cache_counters(&mut self, factory: &dyn crate::operator::OperatorFactory) {
        if let Some((_blocks, bytes)) = factory.cache_replay() {
            self.cache_hits = 1;
            self.cache_bytes = bytes;
        } else if factory.cache_recording() {
            self.cache_misses = 1;
        }
    }
}

/// Whole-run metrics returned by the executors.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Virtual end-to-end time (submission to final result).
    pub makespan: SimTime,
    /// Per-operator counters, indexed by [`crate::OpId`].
    pub operators: Vec<OperatorMetrics>,
    /// Total parallel worker processes used (the paper's parallelism
    /// metric).
    pub total_workers: usize,
    /// DES events processed (simulated executor only; 0 for live runs).
    pub events: u64,
}

impl RunMetrics {
    /// Total tuples that reached any sink operator.
    pub fn sink_tuples(&self) -> u64 {
        self.operators
            .iter()
            .filter(|m| m.output_tuples == 0 && m.input_tuples > 0)
            .map(|m| m.input_tuples)
            .sum()
    }

    /// Look up an operator's metrics by name.
    pub fn by_name(&self, name: &str) -> Option<&OperatorMetrics> {
        self.operators.iter().find(|m| m.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_colors() {
        assert_eq!(OperatorState::Running.color(), "blue");
        assert_eq!(OperatorState::Retrying.color(), "purple");
        assert_eq!(OperatorState::Completed.color(), "green");
        assert_eq!(OperatorState::Degraded.color(), "orange");
        assert_eq!(OperatorState::Failed.color(), "red");
    }

    #[test]
    fn state_labels_roundtrip() {
        for s in [
            OperatorState::Initializing,
            OperatorState::Running,
            OperatorState::Paused,
            OperatorState::Retrying,
            OperatorState::Completed,
            OperatorState::Degraded,
            OperatorState::Failed,
        ] {
            assert_eq!(OperatorState::parse(s.label()), Some(s));
        }
        assert_eq!(OperatorState::parse("nope"), None);
        assert!(OperatorState::Failed.is_terminal());
        assert!(OperatorState::Degraded.is_terminal());
        assert!(!OperatorState::Running.is_terminal());
        assert!(!OperatorState::Retrying.is_terminal());
    }

    #[test]
    fn utilization_normalizes_by_workers_and_makespan() {
        let mut m = OperatorMetrics::new("op", Language::Python, 2);
        m.busy = SimDuration::from_secs(5);
        let u = m.utilization(SimTime::from_micros(10_000_000));
        assert!((u - 0.25).abs() < 1e-9, "{u}");
        assert_eq!(m.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn metrics_lookup() {
        let m = RunMetrics {
            makespan: SimTime::from_micros(10),
            operators: vec![
                OperatorMetrics::new("scan", Language::Python, 2),
                OperatorMetrics::new("sink", Language::Python, 1),
            ],
            total_workers: 3,
            events: 42,
        };
        assert!(m.by_name("scan").is_some());
        assert!(m.by_name("zzz").is_none());
    }
}
