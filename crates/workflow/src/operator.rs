//! The operator abstraction: the basic building block of workflows.

use std::fmt;

use scriptflow_core::fingerprint::{Fingerprinter, OpFingerprint};
use scriptflow_datakit::{ColumnarBatch, DataError, Schema, SchemaRef, Tuple, Value};
use scriptflow_simcluster::Language;

use crate::cost::CostProfile;

/// Result alias for workflow operations.
pub type WorkflowResult<T> = Result<T, WorkflowError>;

/// Errors raised while building or executing a workflow.
///
/// Execution errors are reported **at the operator level** (§III-A of the
/// paper): the failing operator's name travels with the error so the GUI
/// can highlight exactly one box, unlike the notebook's cell-level stack
/// traces.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkflowError {
    /// The DAG is malformed (cycle, dangling edge, port mismatch...).
    InvalidDag(String),
    /// Two operators share one display name. Typed apart from
    /// [`WorkflowError::InvalidDag`] because collisions are actively
    /// dangerous once fingerprinted memoization is in play: a name is
    /// part of an operator's content address, and callers (the JSON spec
    /// parser, the service) want to catch exactly this case.
    DuplicateOperator {
        /// The name claimed by more than one operator.
        name: String,
    },
    /// Schema propagation failed at an operator.
    SchemaError {
        /// The operator the error is reported at (§III-A).
        operator: String,
        /// The underlying schema problem.
        error: DataError,
    },
    /// An operator failed while processing data.
    OperatorFailed {
        /// The operator the error is reported at.
        operator: String,
        /// The failure message.
        message: String,
    },
    /// A data-layer error escaped an operator at runtime.
    DataError {
        /// The operator the error is reported at.
        operator: String,
        /// The underlying data problem.
        error: DataError,
    },
}

impl fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkflowError::InvalidDag(msg) => write!(f, "invalid workflow: {msg}"),
            WorkflowError::DuplicateOperator { name } => {
                write!(f, "invalid workflow: duplicate operator name `{name}`")
            }
            WorkflowError::SchemaError { operator, error } => {
                write!(f, "schema error at operator `{operator}`: {error}")
            }
            WorkflowError::OperatorFailed { operator, message } => {
                write!(f, "operator `{operator}` failed: {message}")
            }
            WorkflowError::DataError { operator, error } => {
                write!(f, "data error at operator `{operator}`: {error}")
            }
        }
    }
}

impl std::error::Error for WorkflowError {}

impl WorkflowError {
    /// Attach an operator name to a bare data error.
    pub fn from_data(operator: &str, error: DataError) -> Self {
        WorkflowError::DataError {
            operator: operator.to_owned(),
            error,
        }
    }
}

/// Collects tuples an operator emits while handling input.
///
/// Output is port-less: an operator has exactly one output stream which
/// the DAG may fan out to several downstream edges (Texera's model).
#[derive(Debug, Default)]
pub struct OutputCollector {
    tuples: Vec<Tuple>,
    batches_skipped: u64,
    spilled_blocks: u64,
    spilled_bytes: u64,
    spill_reads: u64,
}

impl OutputCollector {
    /// A fresh, empty collector.
    pub fn new() -> Self {
        OutputCollector::default()
    }

    /// A collector pre-sized for roughly `n` emitted tuples; executors use
    /// the incoming batch size as the estimate to avoid regrowth in the
    /// common map-like (one-in/one-out) case.
    pub fn with_capacity(n: usize) -> Self {
        OutputCollector {
            tuples: Vec::with_capacity(n),
            ..OutputCollector::default()
        }
    }

    /// Record one zone-map batch prune: the operator's statistics check
    /// proved no row of an input batch could pass, so the whole batch was
    /// dropped without reading its columns. Executors drain this via
    /// [`OutputCollector::take_batches_skipped`] into their telemetry.
    pub fn note_batch_skipped(&mut self) {
        self.batches_skipped += 1;
    }

    /// Zone-map prunes recorded since the last drain.
    pub fn batches_skipped(&self) -> u64 {
        self.batches_skipped
    }

    /// Drain the zone-map prune counter.
    pub fn take_batches_skipped(&mut self) -> u64 {
        std::mem::take(&mut self.batches_skipped)
    }

    /// Record one spilled block of `bytes` compressed bytes: the operator
    /// exceeded its memory budget and persisted part of its state to the
    /// block store. Executors drain this via
    /// [`OutputCollector::take_spill`] into their telemetry.
    pub fn note_spill_write(&mut self, bytes: u64) {
        self.spilled_blocks += 1;
        self.spilled_bytes += bytes;
    }

    /// Record one block read back from a spilled segment.
    pub fn note_spill_read(&mut self) {
        self.spill_reads += 1;
    }

    /// Blocks spilled since the last drain.
    pub fn spilled_blocks(&self) -> u64 {
        self.spilled_blocks
    }

    /// Compressed bytes spilled since the last drain.
    pub fn spilled_bytes(&self) -> u64 {
        self.spilled_bytes
    }

    /// Spilled blocks read back since the last drain.
    pub fn spill_reads(&self) -> u64 {
        self.spill_reads
    }

    /// Drain the spill counters as `(blocks, bytes, reads)`.
    pub fn take_spill(&mut self) -> (u64, u64, u64) {
        (
            std::mem::take(&mut self.spilled_blocks),
            std::mem::take(&mut self.spilled_bytes),
            std::mem::take(&mut self.spill_reads),
        )
    }

    /// The tuples emitted since `mark` (a value of
    /// [`OutputCollector::len`] captured earlier). The result cache's
    /// recording wrapper uses this to tee exactly what one inner call
    /// produced.
    pub fn emitted_since(&self, mark: usize) -> &[Tuple] {
        &self.tuples[mark..]
    }

    /// Emit one tuple downstream.
    pub fn emit(&mut self, tuple: Tuple) {
        self.tuples.push(tuple);
    }

    /// Emit many tuples downstream.
    pub fn emit_all(&mut self, tuples: impl IntoIterator<Item = Tuple>) {
        self.tuples.extend(tuples);
    }

    /// Number of tuples collected so far.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Drain the collected tuples.
    pub fn take(&mut self) -> Vec<Tuple> {
        std::mem::take(&mut self.tuples)
    }
}

/// One operator instance: the per-worker processing state.
///
/// Each of an operator's `parallelism` workers gets its **own instance**
/// (created by [`OperatorFactory::create`]), mirroring how Texera deploys
/// one executor per worker. State such as a join's hash table is
/// therefore per-worker; correctness across workers is the partitioning
/// strategy's job.
pub trait Operator: Send {
    /// Apply the engine-level memory budget to this instance. Called by
    /// both executors right after [`OperatorFactory::create`], before any
    /// input is delivered. Operators without spillable state ignore it;
    /// blocking operators (join build tables, aggregation state, sort
    /// buffers) spill to the block store once their state outgrows the
    /// budget. A per-operator override set at build time wins over the
    /// engine-level value.
    fn set_memory_budget(&mut self, _bytes: Option<usize>) {}

    /// Process one input tuple arriving on `port`.
    fn on_tuple(
        &mut self,
        tuple: Tuple,
        port: usize,
        out: &mut OutputCollector,
    ) -> WorkflowResult<()>;

    /// All input on `port` has been delivered. Blocking operators (e.g. a
    /// hash join's build side, an aggregate) flush state here.
    fn on_port_complete(&mut self, _port: usize, _out: &mut OutputCollector) -> WorkflowResult<()> {
        Ok(())
    }

    /// Process one columnar input batch arriving on `port`.
    ///
    /// The default materializes rows and delegates to
    /// [`Operator::on_tuple`], so every operator is columnar-correct for
    /// free. Hot operators (filter, hash join, aggregate) override this
    /// with zone-map checks and monomorphic column kernels; an override
    /// must emit exactly the rows the per-tuple path would, in the same
    /// relative order, because the engines run either path depending on
    /// configuration and the parity suite pins them together.
    fn on_batch(
        &mut self,
        batch: &ColumnarBatch,
        port: usize,
        out: &mut OutputCollector,
    ) -> WorkflowResult<()> {
        for i in 0..batch.len() {
            self.on_tuple(batch.tuple_at(i), port, out)?;
        }
        Ok(())
    }
}

/// Static description + instance factory for an operator.
///
/// This is what a DAG node holds: everything the builder needs to
/// validate the graph and everything the executors need to spawn worker
/// instances and charge costs.
pub trait OperatorFactory: Send + Sync {
    /// Display name (unique within a workflow; shown in the GUI).
    fn name(&self) -> &str;

    /// Number of input ports (0 for sources).
    fn input_ports(&self) -> usize;

    /// Output schema given the input schemas (one per port). Called once
    /// at build time; errors abort workflow construction — the workflow
    /// paradigm's early, explicit schema checking.
    fn output_schema(&self, inputs: &[SchemaRef]) -> WorkflowResult<Schema>;

    /// Ports that must be fully consumed before later ports are processed
    /// (e.g. a hash join blocks its probe port until the build port
    /// finishes). Ports listed here are drained in ascending order before
    /// any non-listed port.
    fn blocking_ports(&self) -> Vec<usize> {
        Vec::new()
    }

    /// Implementation language (drives compute multipliers and
    /// cross-language boundary costs).
    fn language(&self) -> Language {
        Language::Python
    }

    /// Virtual-cost profile for the simulator.
    fn cost(&self) -> CostProfile {
        CostProfile::default()
    }

    /// Create one worker instance.
    fn create(&self) -> Box<dyn Operator>;

    /// For source operators: the tuples this source produces, already
    /// partitioned across `workers`. Non-sources return `None`.
    fn source_partitions(&self, _workers: usize) -> Option<Vec<Vec<Tuple>>> {
        None
    }

    /// Identity of run-visible shared state owned by this factory (e.g.
    /// a sink's result buffer), or `None` if every worker instance is
    /// self-contained. Two factories reporting the same id alias the
    /// same storage: the multi-tenant service ([`crate::service`]) uses
    /// this to refuse concurrent submissions that would interleave rows
    /// into one buffer, and to know which state to clear per run.
    fn shared_state_id(&self) -> Option<usize> {
        None
    }

    /// Reset the factory's shared state ahead of a fresh run, restoring
    /// the "sink cleared per run" invariant for factories that report a
    /// [`OperatorFactory::shared_state_id`]. Default: nothing to reset.
    fn reset_shared_state(&self) {}

    /// Stable content digest of this operator's **spec** — its
    /// parameters and calibration-relevant configuration, but *not* its
    /// inputs (the DAG builder folds upstream fingerprints in
    /// Merkle-style on top of this).
    ///
    /// The default hashes the structural surface every factory exposes:
    /// name, port count, blocking ports, language, and cost profile.
    /// For closure-carrying operators (UDFs) that is the whole
    /// observable spec — the Snakemake-style "rule name + config"
    /// approximation, under which an edit must change the operator's
    /// name or configuration to invalidate its cache entries.
    /// Declarative operators override this to hash their full
    /// parameters (predicates, key lists, scanned rows, ...).
    fn fingerprint(&self) -> OpFingerprint {
        spec_fingerprinter(self).finish()
    }

    /// True when this operator's input ports are interchangeable (a
    /// union's are; a join's build/probe ports are not). The DAG builder
    /// folds upstream fingerprints of commutative operators
    /// order-independently, so rewiring equivalent inputs onto different
    /// ports does not invalidate downstream cache entries.
    fn commutative_inputs(&self) -> bool {
        false
    }

    /// Result-cache replay marker: `Some((blocks, bytes))` when this
    /// factory *is* a cache-hit stand-in serving a sealed segment of
    /// `blocks` compressed blocks / `bytes` bytes instead of computing.
    /// Executors read this when initializing per-operator telemetry —
    /// a served operator's instances never execute, so hit counters
    /// cannot flow through the [`OutputCollector`].
    fn cache_replay(&self) -> Option<(u64, u64)> {
        None
    }

    /// Result-cache recording marker: true when this factory wraps a
    /// cache-miss operator whose output is being recorded for later
    /// publication. Executors read this when initializing per-operator
    /// telemetry to count one miss per recorded operator — the dual of
    /// [`OperatorFactory::cache_replay`].
    fn cache_recording(&self) -> bool {
        false
    }
}

/// A [`Fingerprinter`] primed with the spec fields every operator
/// factory shares: name, arity, blocking ports, language, and the full
/// cost profile (calibration-relevant config — perturbing a calibrated
/// constant must invalidate cached output computed under it).
///
/// Operator-specific [`OperatorFactory::fingerprint`] overrides start
/// from this and append their own parameters.
pub fn spec_fingerprinter(f: &(impl OperatorFactory + ?Sized)) -> Fingerprinter {
    let mut h = Fingerprinter::new("op");
    h.write_str(f.name());
    h.write_usize(f.input_ports());
    let blocking = f.blocking_ports();
    h.write_usize(blocking.len());
    for p in blocking {
        h.write_usize(p);
    }
    h.write_str(&f.language().to_string());
    let c = f.cost();
    h.write_u64(c.setup.as_micros());
    h.write_u64(c.per_tuple.as_micros());
    h.write_usize(c.per_tuple_ports.len());
    for (port, d) in &c.per_tuple_ports {
        h.write_usize(*port);
        h.write_u64(d.as_micros());
    }
    h.write_u64(c.per_batch.as_micros());
    h.write_bool(c.malleable);
    h.write_f64(c.malleable_utilization);
    h.write_bool(c.colocate);
    h.write_u64(c.warmup_extra.as_micros());
    h.write_u64(c.warmup_tuples);
    h.write_usize(c.warmup_port);
    h
}

/// Hash one data value into a fingerprint, type-tagged so `Int(1)` and
/// `Float(1.0)` (or `Str("1")`) never collide. Content-bearing
/// operators (scans) use this to make their fingerprints follow their
/// data.
pub fn fingerprint_value(h: &mut Fingerprinter, v: &Value) {
    match v {
        Value::Null => h.write_str("∅"),
        Value::Bool(b) => h.write_bool(*b),
        Value::Int(x) => h.write_i64(*x),
        Value::Float(x) => h.write_f64(*x),
        Value::Str(s) => h.write_str(s),
        Value::Bytes(b) => h.write_bytes(b),
        Value::List(vs) => {
            h.write_usize(vs.len());
            for v in vs {
                fingerprint_value(h, v);
            }
        }
    }
}

/// Hash one tuple (schema + every value) into a fingerprint.
pub fn fingerprint_tuple(h: &mut Fingerprinter, t: &Tuple) {
    for v in t.values() {
        fingerprint_value(h, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scriptflow_datakit::{DataType, Value};

    #[test]
    fn collector_accumulates_and_drains() {
        let schema = Schema::of(&[("x", DataType::Int)]);
        let mut out = OutputCollector::new();
        assert!(out.is_empty());
        out.emit(Tuple::new(schema.clone(), vec![Value::Int(1)]).unwrap());
        out.emit_all(vec![
            Tuple::new(schema.clone(), vec![Value::Int(2)]).unwrap(),
            Tuple::new(schema, vec![Value::Int(3)]).unwrap(),
        ]);
        assert_eq!(out.len(), 3);
        let drained = out.take();
        assert_eq!(drained.len(), 3);
        assert!(out.is_empty());
    }

    #[test]
    fn error_display_names_operator() {
        let e = WorkflowError::OperatorFailed {
            operator: "Sentiment Analysis".into(),
            message: "model blew up".into(),
        };
        assert_eq!(
            e.to_string(),
            "operator `Sentiment Analysis` failed: model blew up"
        );
    }

    #[test]
    fn duplicate_operator_error_is_typed_and_descriptive() {
        let e = WorkflowError::DuplicateOperator { name: "scan".into() };
        assert!(e.to_string().contains("duplicate operator name `scan`"));
        assert_ne!(e, WorkflowError::InvalidDag("duplicate".into()));
    }

    #[test]
    fn value_fingerprints_are_type_tagged() {
        let fp = |v: &Value| {
            let mut h = Fingerprinter::new("t");
            fingerprint_value(&mut h, v);
            h.finish()
        };
        assert_ne!(fp(&Value::Int(1)), fp(&Value::Float(1.0)));
        assert_ne!(fp(&Value::Int(1)), fp(&Value::Str("1".into())));
        assert_ne!(fp(&Value::Null), fp(&Value::Str(String::new())));
        assert_eq!(fp(&Value::Int(1)), fp(&Value::Int(1)));
    }

    #[test]
    fn from_data_wraps() {
        let e = WorkflowError::from_data(
            "Filter",
            DataError::UnknownColumn {
                column: "x".into(),
                schema: "a: Int".into(),
            },
        );
        assert!(e.to_string().contains("Filter"));
        assert!(e.to_string().contains("unknown column"));
    }
}
