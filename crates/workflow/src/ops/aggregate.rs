//! Grouped aggregation operator. Under a memory budget, group state
//! spills to the block store as partial-aggregate rows and partitions
//! merge at completion.

use std::collections::HashMap;
use std::sync::Arc;

use scriptflow_datakit::{
    ColumnVec, ColumnarBatch, DataType, Field, HashKey, Schema, SchemaRef, Tuple, Value,
};
use scriptflow_simcluster::Language;

use scriptflow_core::fingerprint::OpFingerprint;

use crate::cost::CostProfile;
use crate::operator::{
    spec_fingerprinter, Operator, OperatorFactory, OutputCollector, WorkflowError, WorkflowResult,
};
use crate::spill::{read_segment, PartitionWriter, SPILL_FANOUT};

/// One aggregation over a column.
#[derive(Debug, Clone, PartialEq)]
pub enum AggFn {
    /// Row count (column-independent), output column named by the string.
    Count(String),
    /// Sum of a numeric column; output `sum_<col>`.
    Sum(String),
    /// Mean of a numeric column; output `avg_<col>`.
    Avg(String),
    /// Minimum of a numeric column; output `min_<col>`.
    Min(String),
    /// Maximum of a numeric column; output `max_<col>`.
    Max(String),
}

impl AggFn {
    fn output_field(&self) -> Field {
        match self {
            AggFn::Count(name) => Field::new(name.clone(), DataType::Int),
            AggFn::Sum(c) => Field::new(format!("sum_{c}"), DataType::Float),
            AggFn::Avg(c) => Field::new(format!("avg_{c}"), DataType::Float),
            AggFn::Min(c) => Field::new(format!("min_{c}"), DataType::Float),
            AggFn::Max(c) => Field::new(format!("max_{c}"), DataType::Float),
        }
    }

    fn input_column(&self) -> Option<&str> {
        match self {
            AggFn::Count(_) => None,
            AggFn::Sum(c) | AggFn::Avg(c) | AggFn::Min(c) | AggFn::Max(c) => Some(c),
        }
    }
}

/// Running state of one aggregation within one group.
#[derive(Debug, Clone)]
struct AggState {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl AggState {
    fn new() -> Self {
        AggState {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn update(&mut self, x: Option<f64>) {
        self.count += 1;
        if let Some(x) = x {
            self.sum += x;
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
    }

    /// Fold one typed column into the state in a single monomorphic
    /// pass — the columnar sum/min/max/count kernel. Must accumulate
    /// exactly as `update` called per row would.
    fn update_column(&mut self, col: &ColumnVec) {
        self.count += col.len() as u64;
        match col {
            ColumnVec::Float { data, validity } => {
                for (i, &x) in data.iter().enumerate() {
                    if validity.is_valid(i) {
                        self.sum += x;
                        self.min = self.min.min(x);
                        self.max = self.max.max(x);
                    }
                }
            }
            ColumnVec::Int { data, validity } => {
                for (i, &x) in data.iter().enumerate() {
                    if validity.is_valid(i) {
                        let x = x as f64;
                        self.sum += x;
                        self.min = self.min.min(x);
                        self.max = self.max.max(x);
                    }
                }
            }
            // Non-numeric columns contribute rows to `count` only, the
            // same as `Value::as_float() == None` on the row path.
            _ => {}
        }
    }

    fn finish(&self, agg: &AggFn) -> Value {
        match agg {
            AggFn::Count(_) => Value::Int(self.count as i64),
            AggFn::Sum(_) => Value::Float(self.sum),
            AggFn::Avg(_) => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            AggFn::Min(_) => {
                if self.min.is_finite() {
                    Value::Float(self.min)
                } else {
                    Value::Null
                }
            }
            AggFn::Max(_) => {
                if self.max.is_finite() {
                    Value::Float(self.max)
                } else {
                    Value::Null
                }
            }
        }
    }
}

/// Group-by + aggregations; emits one tuple per group when its input
/// completes (a blocking operator).
///
/// With parallelism > 1, the input edge must hash-partition on the group
/// columns so each group lands wholly on one worker.
pub struct AggregateOp {
    name: String,
    group_by: Vec<String>,
    aggs: Vec<AggFn>,
    cost: CostProfile,
    language: Language,
    memory_budget: Option<usize>,
}

impl AggregateOp {
    /// Aggregate `aggs` grouped by `group_by` (may be empty for a global
    /// aggregate).
    pub fn new(name: impl Into<String>, group_by: &[&str], aggs: Vec<AggFn>) -> Self {
        assert!(!aggs.is_empty(), "aggregate needs at least one aggregation");
        AggregateOp {
            name: name.into(),
            group_by: group_by.iter().map(|s| (*s).to_owned()).collect(),
            aggs,
            cost: CostProfile::per_tuple_micros(2),
            language: Language::Python,
            memory_budget: None,
        }
    }

    /// Per-operator memory budget override: once group state exceeds
    /// `bytes`, groups are flushed to the block store as hash-partitioned
    /// partial-aggregate rows (count/sum/min/max per aggregation) and
    /// merged partition-wise at completion. Takes precedence over the
    /// engine-level [`crate::EngineConfig::memory_budget`].
    pub fn with_memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Override the cost profile.
    pub fn with_cost(mut self, cost: CostProfile) -> Self {
        self.cost = cost;
        self
    }

    /// Override the implementation language.
    pub fn with_language(mut self, language: Language) -> Self {
        self.language = language;
        self
    }
}

// Spill state: partial-aggregate rows hash-partitioned by group key.
// Each partial row is the group's representative values followed by
// (count, sum, min, max) for every aggregation, so partials merge
// losslessly regardless of how many flushes a group was split across.
struct AggSpill {
    partial_schema: SchemaRef,
    parts: Vec<PartitionWriter>,
}

struct AggregateInstance {
    name: String,
    group_by: Vec<String>,
    aggs: Vec<AggFn>,
    // Derived from the first input tuple's schema (blocking operators
    // see data before they emit, so this is always available in time).
    out_schema: Option<SchemaRef>,
    // Group key -> (representative group values, per-agg state). Insertion
    // order preserved for deterministic output.
    groups: HashMap<HashKey, (Vec<Value>, Vec<AggState>)>,
    order: Vec<HashKey>,
    budget: Option<usize>,
    budget_fixed: bool,
    groups_bytes: usize,
    spill: Option<AggSpill>,
}

impl Operator for AggregateInstance {
    fn set_memory_budget(&mut self, bytes: Option<usize>) {
        if !self.budget_fixed {
            self.budget = bytes;
        }
    }

    fn on_tuple(
        &mut self,
        tuple: Tuple,
        _port: usize,
        out: &mut OutputCollector,
    ) -> WorkflowResult<()> {
        if self.out_schema.is_none() {
            let derived =
                self.derive_schema(tuple.schema())
                    .map_err(|e| WorkflowError::SchemaError {
                        operator: self.name.clone(),
                        error: e,
                    })?;
            self.out_schema = Some(Arc::new(derived));
        }
        let cols: Vec<&str> = self.group_by.iter().map(String::as_str).collect();
        let key = if cols.is_empty() {
            HashKey::Null
        } else {
            HashKey::from_tuple(&tuple, &cols)
                .map_err(|e| WorkflowError::from_data(&self.name, e))?
        };
        if !self.groups.contains_key(&key) {
            let mut rep = Vec::with_capacity(cols.len());
            for c in &cols {
                rep.push(
                    tuple
                        .get(c)
                        .map_err(|e| WorkflowError::from_data(&self.name, e))?
                        .clone(),
                );
            }
            // Per-group footprint: the representative values' stable wire
            // size plus the fixed per-group bookkeeping (agg states, map
            // entry). Updates to existing groups don't grow state.
            self.groups_bytes += rep.iter().map(Value::encoded_len).sum::<usize>()
                + 32 * self.aggs.len()
                + 48;
            self.groups.insert(
                key.clone(),
                (rep, self.aggs.iter().map(|_| AggState::new()).collect()),
            );
            self.order.push(key.clone());
        }
        let (_, states) = self.groups.get_mut(&key).expect("inserted above");
        for (agg, state) in self.aggs.iter().zip(states.iter_mut()) {
            let x = match agg.input_column() {
                Some(c) => tuple
                    .get(c)
                    .map_err(|e| WorkflowError::from_data(&self.name, e))?
                    .as_float(),
                None => None,
            };
            state.update(x);
        }
        if self.budget.is_some_and(|b| self.groups_bytes > b) {
            self.flush_groups(out)?;
        }
        Ok(())
    }

    fn on_batch(
        &mut self,
        batch: &ColumnarBatch,
        port: usize,
        out: &mut OutputCollector,
    ) -> WorkflowResult<()> {
        if !self.group_by.is_empty() {
            // Grouped aggregation keys per row; stay on the row path.
            for i in 0..batch.len() {
                self.on_tuple(batch.tuple_at(i), port, out)?;
            }
            return Ok(());
        }
        if batch.is_empty() {
            return Ok(());
        }
        if self.out_schema.is_none() {
            let derived =
                self.derive_schema(batch.schema())
                    .map_err(|e| WorkflowError::SchemaError {
                        operator: self.name.clone(),
                        error: e,
                    })?;
            self.out_schema = Some(Arc::new(derived));
        }
        let mut idxs = Vec::with_capacity(self.aggs.len());
        for a in &self.aggs {
            idxs.push(match a.input_column() {
                Some(c) => Some(
                    batch
                        .schema()
                        .index_of(c)
                        .map_err(|e| WorkflowError::from_data(&self.name, e))?,
                ),
                None => None,
            });
        }
        let key = HashKey::Null;
        if !self.groups.contains_key(&key) {
            self.groups.insert(
                key.clone(),
                (
                    Vec::new(),
                    self.aggs.iter().map(|_| AggState::new()).collect(),
                ),
            );
            self.order.push(key.clone());
        }
        let (_, states) = self.groups.get_mut(&key).expect("inserted above");
        // Columnar kernels: one monomorphic pass per aggregation.
        for (state, idx) in states.iter_mut().zip(idxs) {
            match idx {
                Some(i) => state.update_column(batch.column(i)),
                None => state.count += batch.len() as u64,
            }
        }
        Ok(())
    }

    fn on_port_complete(&mut self, _port: usize, out: &mut OutputCollector) -> WorkflowResult<()> {
        let schema = match &self.out_schema {
            Some(s) => s.clone(),
            // No input tuples: nothing to emit (and no schema to emit it
            // under).
            None => return Ok(()),
        };
        if self.spill.is_some() {
            // Funnel the in-memory remainder into the partitions too, so
            // every group is finalized by exactly one partition-wise merge.
            self.flush_groups(out)?;
            let spill = self.spill.take().expect("checked above");
            for writer in spill.parts {
                let seg = writer.seal(out);
                if seg.is_empty() {
                    continue;
                }
                self.merge_and_emit_partition(&seg, &schema, out)?;
            }
            return Ok(());
        }
        for key in &self.order {
            let (rep, states) = &self.groups[key];
            let mut values = rep.clone();
            for (agg, state) in self.aggs.iter().zip(states) {
                values.push(state.finish(agg));
            }
            out.emit(Tuple::new_unchecked(schema.clone(), values));
        }
        self.groups.clear();
        self.order.clear();
        Ok(())
    }
}

impl AggregateInstance {
    fn derive_schema(&self, input: &SchemaRef) -> Result<Schema, scriptflow_datakit::DataError> {
        let mut fields = Vec::with_capacity(self.group_by.len() + self.aggs.len());
        for g in &self.group_by {
            fields.push(input.field(g)?.clone());
        }
        for a in &self.aggs {
            fields.push(a.output_field());
        }
        Schema::new(fields)
    }

    /// Lazily build the spill partitions and the partial-row schema:
    /// group fields (shared with the output schema) followed by
    /// `(__cnt, __sum, __min, __max)` per aggregation.
    fn ensure_spill(&mut self) -> WorkflowResult<()> {
        if self.spill.is_some() {
            return Ok(());
        }
        let out_schema = self
            .out_schema
            .as_ref()
            .expect("groups exist, so the schema was derived");
        let g = self.group_by.len();
        let mut fields: Vec<Field> = out_schema.fields()[..g].to_vec();
        for i in 0..self.aggs.len() {
            fields.push(Field::new(format!("__cnt{i}"), DataType::Int));
            fields.push(Field::new(format!("__sum{i}"), DataType::Float));
            fields.push(Field::new(format!("__min{i}"), DataType::Float));
            fields.push(Field::new(format!("__max{i}"), DataType::Float));
        }
        let schema = Schema::new(fields).map_err(|e| WorkflowError::from_data(&self.name, e))?;
        self.spill = Some(AggSpill {
            partial_schema: Arc::new(schema),
            parts: (0..SPILL_FANOUT).map(|_| PartitionWriter::new()).collect(),
        });
        Ok(())
    }

    /// Drain every in-memory group to its spill partition as one
    /// partial-aggregate row and reset the in-memory footprint.
    fn flush_groups(&mut self, out: &mut OutputCollector) -> WorkflowResult<()> {
        if self.groups.is_empty() {
            self.groups_bytes = 0;
            return Ok(());
        }
        self.ensure_spill()?;
        let flush_at = self
            .budget
            .map_or(usize::MAX, |b| (b / SPILL_FANOUT).max(1));
        let spill = self.spill.as_mut().expect("ensured above");
        let mut groups = std::mem::take(&mut self.groups);
        for key in std::mem::take(&mut self.order) {
            let (mut values, states) = groups.remove(&key).expect("order tracks group keys");
            for st in &states {
                values.push(Value::Int(st.count as i64));
                values.push(Value::Float(st.sum));
                values.push(Value::Float(st.min));
                values.push(Value::Float(st.max));
            }
            let bucket = key.bucket_salted(0, SPILL_FANOUT);
            spill.parts[bucket].push(
                Tuple::new_unchecked(spill.partial_schema.clone(), values),
                flush_at,
                out,
            );
        }
        self.groups_bytes = 0;
        Ok(())
    }

    /// Decode one sealed partition, merge its partial rows by group key
    /// (counts and sums add, min/max combine), and emit the finished
    /// groups. Distinct keys never span partitions, so each merge is
    /// final; the merged state is bounded by the partition's distinct
    /// keys, so no recursion is needed.
    fn merge_and_emit_partition(
        &self,
        seg: &scriptflow_datakit::blockstore::Segment,
        schema: &SchemaRef,
        out: &mut OutputCollector,
    ) -> WorkflowResult<()> {
        let tuples =
            read_segment(seg, out).map_err(|e| WorkflowError::from_data(&self.name, e))?;
        let cols: Vec<&str> = self.group_by.iter().map(String::as_str).collect();
        let g = cols.len();
        let mut merged: HashMap<HashKey, (Vec<Value>, Vec<AggState>)> = HashMap::new();
        let mut order: Vec<HashKey> = Vec::new();
        for t in tuples {
            let key = if cols.is_empty() {
                HashKey::Null
            } else {
                HashKey::from_tuple(&t, &cols)
                    .map_err(|e| WorkflowError::from_data(&self.name, e))?
            };
            let vals = t.values();
            let entry = merged.entry(key.clone()).or_insert_with(|| {
                order.push(key);
                (
                    vals[..g].to_vec(),
                    self.aggs.iter().map(|_| AggState::new()).collect(),
                )
            });
            for (i, st) in entry.1.iter_mut().enumerate() {
                let base = g + 4 * i;
                st.count += vals[base].as_int().unwrap_or(0).max(0) as u64;
                st.sum += vals[base + 1].as_float().unwrap_or(0.0);
                st.min = st.min.min(vals[base + 2].as_float().unwrap_or(f64::INFINITY));
                st.max = st
                    .max
                    .max(vals[base + 3].as_float().unwrap_or(f64::NEG_INFINITY));
            }
        }
        for key in order {
            let (rep, states) = &merged[&key];
            let mut values = rep.clone();
            for (agg, state) in self.aggs.iter().zip(states) {
                values.push(state.finish(agg));
            }
            out.emit(Tuple::new_unchecked(schema.clone(), values));
        }
        Ok(())
    }
}

impl OperatorFactory for AggregateOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn input_ports(&self) -> usize {
        1
    }

    fn blocking_ports(&self) -> Vec<usize> {
        vec![0]
    }

    fn output_schema(&self, inputs: &[SchemaRef]) -> WorkflowResult<Schema> {
        let input = &inputs[0];
        let mut fields = Vec::with_capacity(self.group_by.len() + self.aggs.len());
        for g in &self.group_by {
            fields.push(
                input
                    .field(g)
                    .map_err(|e| WorkflowError::SchemaError {
                        operator: self.name.clone(),
                        error: e,
                    })?
                    .clone(),
            );
        }
        for a in &self.aggs {
            if let Some(c) = a.input_column() {
                input.index_of(c).map_err(|e| WorkflowError::SchemaError {
                    operator: self.name.clone(),
                    error: e,
                })?;
            }
            fields.push(a.output_field());
        }
        Schema::new(fields).map_err(|e| WorkflowError::SchemaError {
            operator: self.name.clone(),
            error: e,
        })
    }

    fn language(&self) -> Language {
        self.language
    }

    fn cost(&self) -> CostProfile {
        self.cost.clone()
    }

    fn create(&self) -> Box<dyn Operator> {
        Box::new(AggregateInstance {
            name: self.name.clone(),
            group_by: self.group_by.clone(),
            aggs: self.aggs.clone(),
            out_schema: None,
            groups: HashMap::new(),
            order: Vec::new(),
            budget: self.memory_budget,
            budget_fixed: self.memory_budget.is_some(),
            groups_bytes: 0,
            spill: None,
        })
    }

    fn fingerprint(&self) -> OpFingerprint {
        let mut h = spec_fingerprinter(self);
        h.write_usize(self.group_by.len());
        for g in &self.group_by {
            h.write_str(g);
        }
        h.write_usize(self.aggs.len());
        for a in &self.aggs {
            h.write_str(&format!("{a:?}"));
        }
        match self.memory_budget {
            Some(b) => h.write_usize(b),
            None => h.write_str("unbounded"),
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple(cat: &str, x: f64) -> Tuple {
        Tuple::new(
            Schema::of(&[("cat", DataType::Str), ("x", DataType::Float)]),
            vec![Value::Str(cat.into()), Value::Float(x)],
        )
        .unwrap()
    }

    fn agg_all() -> AggregateOp {
        AggregateOp::new(
            "agg",
            &["cat"],
            vec![
                AggFn::Count("n".into()),
                AggFn::Sum("x".into()),
                AggFn::Avg("x".into()),
                AggFn::Min("x".into()),
                AggFn::Max("x".into()),
            ],
        )
    }

    #[test]
    fn grouped_aggregation() {
        let op = agg_all();
        let mut inst = op.create();
        let mut out = OutputCollector::new();
        for (c, x) in [("a", 1.0), ("b", 10.0), ("a", 3.0), ("a", 2.0)] {
            inst.on_tuple(tuple(c, x), 0, &mut out).unwrap();
        }
        assert!(out.is_empty(), "blocking op must not emit early");
        inst.on_port_complete(0, &mut out).unwrap();
        let rows = out.take();
        assert_eq!(rows.len(), 2);
        let a = rows
            .iter()
            .find(|t| t.get_str("cat").unwrap() == "a")
            .unwrap();
        assert_eq!(a.get_int("n").unwrap(), 3);
        assert_eq!(a.get_float("sum_x").unwrap(), 6.0);
        assert_eq!(a.get_float("avg_x").unwrap(), 2.0);
        assert_eq!(a.get_float("min_x").unwrap(), 1.0);
        assert_eq!(a.get_float("max_x").unwrap(), 3.0);
    }

    #[test]
    fn global_aggregate_no_group() {
        let op = AggregateOp::new("agg", &[], vec![AggFn::Count("n".into())]);
        let mut inst = op.create();
        let mut out = OutputCollector::new();
        for i in 0..5 {
            inst.on_tuple(tuple("x", i as f64), 0, &mut out).unwrap();
        }
        inst.on_port_complete(0, &mut out).unwrap();
        let rows = out.take();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get_int("n").unwrap(), 5);
    }

    #[test]
    fn columnar_global_kernels_match_row_path() {
        let rows = [("a", 1.5), ("b", -2.0), ("c", 7.25), ("d", 0.0)];
        let op = AggregateOp::new(
            "agg",
            &[],
            vec![
                AggFn::Count("n".into()),
                AggFn::Sum("x".into()),
                AggFn::Avg("x".into()),
                AggFn::Min("x".into()),
                AggFn::Max("x".into()),
            ],
        );
        let mut by_row = op.create();
        let mut row_out = OutputCollector::new();
        for (c, x) in rows {
            by_row.on_tuple(tuple(c, x), 0, &mut row_out).unwrap();
        }
        by_row.on_port_complete(0, &mut row_out).unwrap();

        let cb = ColumnarBatch::from_rows(
            Schema::of(&[("cat", DataType::Str), ("x", DataType::Float)]),
            rows.iter()
                .map(|(c, x)| vec![Value::Str((*c).into()), Value::Float(*x)])
                .collect(),
        )
        .unwrap();
        let mut by_col = op.create();
        let mut col_out = OutputCollector::new();
        by_col.on_batch(&cb, 0, &mut col_out).unwrap();
        by_col.on_port_complete(0, &mut col_out).unwrap();

        assert_eq!(row_out.take(), col_out.take());
    }

    #[test]
    fn columnar_grouped_falls_back_to_rows() {
        let op = agg_all();
        let cb = ColumnarBatch::from_rows(
            Schema::of(&[("cat", DataType::Str), ("x", DataType::Float)]),
            vec![
                vec![Value::Str("a".into()), Value::Float(1.0)],
                vec![Value::Str("b".into()), Value::Float(10.0)],
                vec![Value::Str("a".into()), Value::Float(3.0)],
            ],
        )
        .unwrap();
        let mut inst = op.create();
        let mut out = OutputCollector::new();
        inst.on_batch(&cb, 0, &mut out).unwrap();
        inst.on_port_complete(0, &mut out).unwrap();
        let rows = out.take();
        assert_eq!(rows.len(), 2);
        let a = rows
            .iter()
            .find(|t| t.get_str("cat").unwrap() == "a")
            .unwrap();
        assert_eq!(a.get_float("sum_x").unwrap(), 4.0);
    }

    #[test]
    fn output_schema_shape() {
        let op = agg_all();
        let s = op
            .output_schema(&[Schema::of(&[
                ("cat", DataType::Str),
                ("x", DataType::Float),
            ])])
            .unwrap();
        assert_eq!(
            s.to_string(),
            "cat: Str, n: Int, sum_x: Float, avg_x: Float, min_x: Float, max_x: Float"
        );
    }

    #[test]
    fn schema_validates_columns() {
        let op = AggregateOp::new("agg", &["missing"], vec![AggFn::Count("n".into())]);
        assert!(op
            .output_schema(&[Schema::of(&[("cat", DataType::Str)])])
            .is_err());
        let op2 = AggregateOp::new("agg", &[], vec![AggFn::Sum("missing".into())]);
        assert!(op2
            .output_schema(&[Schema::of(&[("cat", DataType::Str)])])
            .is_err());
    }

    #[test]
    fn empty_input_emits_nothing() {
        let op = agg_all();
        let mut inst = op.create();
        let mut out = OutputCollector::new();
        inst.on_port_complete(0, &mut out).unwrap();
        assert!(out.is_empty());
    }

    /// Run `op` over `n` tuples spread across 7 groups, optionally under
    /// an engine-level budget, returning (sorted rows, blocks, reads).
    fn run_agg_budgeted(op: &AggregateOp, budget: Option<usize>, n: i64) -> (Vec<String>, u64, u64) {
        let mut inst = op.create();
        inst.set_memory_budget(budget);
        let mut out = OutputCollector::new();
        for i in 0..n {
            inst.on_tuple(tuple(&format!("c{}", i % 7), i as f64), 0, &mut out)
                .unwrap();
        }
        inst.on_port_complete(0, &mut out).unwrap();
        let mut rows: Vec<String> = out.take().iter().map(|t| format!("{t:?}")).collect();
        rows.sort();
        let blocks = out.spilled_blocks();
        let reads = out.spill_reads();
        (rows, blocks, reads)
    }

    #[test]
    fn tiny_budget_spills_partials_and_matches_in_memory() {
        let op = agg_all();
        let (baseline, b0, _) = run_agg_budgeted(&op, None, 200);
        assert_eq!(b0, 0, "unbounded run must not touch the block store");
        let (spilled, blocks, reads) = run_agg_budgeted(&op, Some(96), 200);
        assert!(blocks > 0, "tiny budget must flush partial blocks");
        assert!(reads > 0, "merge must read the partitions back");
        assert_eq!(spilled, baseline, "spilled groups must merge losslessly");
    }

    #[test]
    fn global_aggregate_spills_and_merges() {
        let op = AggregateOp::new(
            "agg",
            &[],
            vec![AggFn::Count("n".into()), AggFn::Avg("x".into())],
        );
        let (baseline, _, _) = run_agg_budgeted(&op, None, 50);
        let (spilled, blocks, _) = run_agg_budgeted(&op, Some(16), 50);
        assert!(blocks > 0);
        assert_eq!(spilled, baseline);
        assert_eq!(spilled.len(), 1);
    }

    #[test]
    fn engine_budget_applies_unless_operator_override_set() {
        // Operator-level override wins: a huge fixed budget ignores the
        // tiny engine-level one and never spills.
        let fixed = agg_all().with_memory_budget(1 << 30);
        let (_, blocks, _) = run_agg_budgeted(&fixed, Some(64), 200);
        assert_eq!(blocks, 0, "fixed operator budget must win");
        // And a tiny fixed budget spills even with no engine budget.
        let tiny = agg_all().with_memory_budget(96);
        let (rows, blocks, _) = run_agg_budgeted(&tiny, None, 200);
        assert!(blocks > 0);
        let (baseline, _, _) = run_agg_budgeted(&agg_all(), None, 200);
        assert_eq!(rows, baseline);
    }
}
