//! Hash join operator: build on port 0, probe on port 1.

use std::collections::HashMap;
use std::sync::Arc;

use scriptflow_datakit::column::cmp_values;
use scriptflow_datakit::{ColumnVec, ColumnarBatch, HashKey, Schema, SchemaRef, Tuple, Value};
use scriptflow_simcluster::Language;

use crate::cost::CostProfile;
use crate::operator::{Operator, OperatorFactory, OutputCollector, WorkflowError, WorkflowResult};

/// Join semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// Emit only matching pairs.
    Inner,
    /// Emit every probe tuple; unmatched build columns become null.
    LeftOuter,
}

/// Hash join: port 0 (build) is consumed fully into an in-memory hash
/// table, then port 1 (probe) streams through.
///
/// This is the operator whose Python↔Scala swap drives Table I of the
/// paper. With parallelism > 1, both inputs must be hash-partitioned on
/// the join keys (or the build side broadcast).
pub struct HashJoinOp {
    name: String,
    build_keys: Vec<String>,
    probe_keys: Vec<String>,
    join_type: JoinType,
    cost: CostProfile,
    language: Language,
}

impl HashJoinOp {
    /// An inner join matching `probe_keys` (port 1) to `build_keys`
    /// (port 0).
    pub fn new(name: impl Into<String>, probe_keys: &[&str], build_keys: &[&str]) -> Self {
        assert_eq!(
            probe_keys.len(),
            build_keys.len(),
            "join key lists must have equal length"
        );
        assert!(!probe_keys.is_empty(), "join needs at least one key");
        HashJoinOp {
            name: name.into(),
            build_keys: build_keys.iter().map(|s| (*s).to_owned()).collect(),
            probe_keys: probe_keys.iter().map(|s| (*s).to_owned()).collect(),
            join_type: JoinType::Inner,
            // Hash probe + tuple concat: ~3 µs per probe tuple in Python.
            cost: CostProfile::per_tuple_micros(3),
            language: Language::Python,
        }
    }

    /// Change the join semantics.
    pub fn with_join_type(mut self, join_type: JoinType) -> Self {
        self.join_type = join_type;
        self
    }

    /// Override the cost profile.
    pub fn with_cost(mut self, cost: CostProfile) -> Self {
        self.cost = cost;
        self
    }

    /// Override the implementation language (the Table I knob).
    pub fn with_language(mut self, language: Language) -> Self {
        self.language = language;
        self
    }
}

struct HashJoinInstance {
    name: String,
    build_keys: Vec<String>,
    probe_keys: Vec<String>,
    join_type: JoinType,
    table: HashMap<HashKey, Vec<Tuple>>,
    out_schema: Option<SchemaRef>,
    // Min/max of the build-side key column (single-key joins only),
    // folded in while the hash table builds. Probe batches whose key
    // zone map misses this range entirely are pruned (inner joins: a
    // disjoint range proves zero matches).
    build_key_range: BuildKeyRange,
    // A null build key matches null probe keys (Texera's semantics), so
    // probe batches containing null keys must not be pruned when one
    // exists — the min/max range only covers non-null keys.
    build_has_null_key: bool,
}

/// Running build-side key range. `Poisoned` is sticky: once an
/// unorderable key (NaN, heterogeneous types) is seen, pruning stays off
/// for the rest of the run — a later clean value must not resurrect a
/// range that silently forgot the poisoned one.
#[derive(Debug, Clone, PartialEq)]
enum BuildKeyRange {
    Empty,
    Range(Value, Value),
    Poisoned,
}

impl HashJoinInstance {
    fn key_of(&self, tuple: &Tuple, cols: &[String]) -> WorkflowResult<HashKey> {
        let names: Vec<&str> = cols.iter().map(String::as_str).collect();
        HashKey::from_tuple(tuple, &names).map_err(|e| WorkflowError::from_data(&self.name, e))
    }

    /// Fold one build-side key value into the running min/max.
    fn widen_build_range(&mut self, v: &Value) {
        if v.is_null() {
            self.build_has_null_key = true;
            return;
        }
        match &mut self.build_key_range {
            BuildKeyRange::Poisoned => {}
            BuildKeyRange::Empty => {
                self.build_key_range = BuildKeyRange::Range(v.clone(), v.clone());
            }
            BuildKeyRange::Range(min, max) => match (cmp_values(v, min), cmp_values(v, max)) {
                (Some(lo), Some(hi)) => {
                    if lo == std::cmp::Ordering::Less {
                        *min = v.clone();
                    }
                    if hi == std::cmp::Ordering::Greater {
                        *max = v.clone();
                    }
                }
                _ => self.build_key_range = BuildKeyRange::Poisoned,
            },
        }
    }

    /// True when the probe batch's key range cannot intersect the build
    /// side's: `probe_max < build_min || probe_min > build_max`.
    fn probe_batch_disjoint(&self, batch: &ColumnarBatch, key_idx: usize) -> bool {
        let BuildKeyRange::Range(build_min, build_max) = &self.build_key_range else {
            return false;
        };
        let stats = batch.stats().column(key_idx);
        if self.build_has_null_key && stats.null_count > 0 {
            return false;
        }
        let (Some(probe_min), Some(probe_max)) = (&stats.min, &stats.max) else {
            return false;
        };
        matches!(
            cmp_values(probe_max, build_min),
            Some(std::cmp::Ordering::Less)
        ) || matches!(
            cmp_values(probe_min, build_max),
            Some(std::cmp::Ordering::Greater)
        )
    }
}

impl Operator for HashJoinInstance {
    fn on_tuple(
        &mut self,
        tuple: Tuple,
        port: usize,
        out: &mut OutputCollector,
    ) -> WorkflowResult<()> {
        match port {
            0 => {
                if self.build_keys.len() == 1 {
                    let v = tuple
                        .get(&self.build_keys[0])
                        .map_err(|e| WorkflowError::from_data(&self.name, e))?
                        .clone();
                    self.widen_build_range(&v);
                }
                let key = self.key_of(&tuple, &self.build_keys.clone())?;
                self.table.entry(key).or_default().push(tuple);
                Ok(())
            }
            1 => {
                if self.out_schema.is_none() {
                    // Derive the joined schema lazily from the first probe
                    // tuple + any build tuple (the executor checked it at
                    // build time; this is the instance-local copy).
                    let build_schema = self
                        .table
                        .values()
                        .next()
                        .and_then(|v| v.first())
                        .map(|t| (**t.schema()).clone());
                    let joined = match build_schema {
                        Some(bs) => tuple
                            .schema()
                            .join(&bs, "_r")
                            .map_err(|e| WorkflowError::from_data(&self.name, e))?,
                        // Empty build side: schema only matters for
                        // LeftOuter nulls; synthesize probe-only schema.
                        None => (**tuple.schema()).clone(),
                    };
                    self.out_schema = Some(Arc::new(joined));
                }
                let key = self.key_of(&tuple, &self.probe_keys.clone())?;
                let schema = self.out_schema.clone().expect("set above");
                match self.table.get(&key) {
                    Some(matches) => {
                        for m in matches {
                            let mut values =
                                Vec::with_capacity(tuple.values().len() + m.values().len());
                            values.extend_from_slice(tuple.values());
                            values.extend_from_slice(m.values());
                            out.emit(Tuple::new_unchecked(schema.clone(), values));
                        }
                    }
                    None if self.join_type == JoinType::LeftOuter => {
                        let mut values = Vec::with_capacity(schema.arity());
                        values.extend_from_slice(tuple.values());
                        values.extend(std::iter::repeat_n(
                            Value::Null,
                            schema.arity() - tuple.values().len(),
                        ));
                        out.emit(Tuple::new_unchecked(schema, values));
                    }
                    None => {}
                }
                Ok(())
            }
            other => Err(WorkflowError::OperatorFailed {
                operator: self.name.clone(),
                message: format!("join has ports 0 and 1, got {other}"),
            }),
        }
    }

    fn on_batch(
        &mut self,
        batch: &ColumnarBatch,
        port: usize,
        out: &mut OutputCollector,
    ) -> WorkflowResult<()> {
        if port == 0 && self.build_keys.len() == 1 {
            let idx = batch
                .schema()
                .index_of(&self.build_keys[0])
                .map_err(|e| WorkflowError::from_data(&self.name, e))?;
            // Fold the whole batch's key range from its sealed stats
            // (one comparison pair instead of one per build row).
            let stats = batch.stats().column(idx);
            if stats.null_count > 0 {
                self.build_has_null_key = true;
            }
            let non_null = batch.len() as u64 - stats.null_count;
            match (&stats.min, &stats.max) {
                (Some(min), Some(max)) => {
                    self.widen_build_range(min);
                    self.widen_build_range(max);
                }
                // Valid rows without an orderable range (NaN, Mixed):
                // pruning would be unsound from here on.
                _ if non_null > 0 => self.build_key_range = BuildKeyRange::Poisoned,
                _ => {}
            }
            // Build the hash table from the typed key column: keys come
            // straight off the dense vector, no per-tuple name lookup.
            match batch.column(idx) {
                ColumnVec::Int { data, validity } => {
                    for (i, &k) in data.iter().enumerate() {
                        let key = if validity.is_valid(i) {
                            HashKey::Int(k)
                        } else {
                            HashKey::Null
                        };
                        self.table.entry(key).or_default().push(batch.tuple_at(i));
                    }
                }
                ColumnVec::Str { data, validity } => {
                    for (i, k) in data.iter().enumerate() {
                        let key = if validity.is_valid(i) {
                            HashKey::Str(k.clone())
                        } else {
                            HashKey::Null
                        };
                        self.table.entry(key).or_default().push(batch.tuple_at(i));
                    }
                }
                col => {
                    for i in 0..col.len() {
                        let key = HashKey::from_value(&col.value_at(i))
                            .map_err(|e| WorkflowError::from_data(&self.name, e))?;
                        self.table.entry(key).or_default().push(batch.tuple_at(i));
                    }
                }
            }
            return Ok(());
        }
        if port == 1 && self.join_type == JoinType::Inner && self.probe_keys.len() == 1 {
            let idx = batch
                .schema()
                .index_of(&self.probe_keys[0])
                .map_err(|e| WorkflowError::from_data(&self.name, e))?;
            if self.probe_batch_disjoint(batch, idx) {
                // Build-side zone map proves zero matches in this batch.
                out.note_batch_skipped();
                return Ok(());
            }
        }
        for i in 0..batch.len() {
            self.on_tuple(batch.tuple_at(i), port, out)?;
        }
        Ok(())
    }
}

impl OperatorFactory for HashJoinOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn input_ports(&self) -> usize {
        2
    }

    fn blocking_ports(&self) -> Vec<usize> {
        vec![0]
    }

    fn output_schema(&self, inputs: &[SchemaRef]) -> WorkflowResult<Schema> {
        let build = &inputs[0];
        let probe = &inputs[1];
        for (cols, schema, side) in [
            (&self.build_keys, build, "build"),
            (&self.probe_keys, probe, "probe"),
        ] {
            for c in cols {
                schema.index_of(c).map_err(|e| WorkflowError::SchemaError {
                    operator: format!("{} ({side} side)", self.name),
                    error: e,
                })?;
            }
        }
        probe
            .join(build, "_r")
            .map_err(|e| WorkflowError::SchemaError {
                operator: self.name.clone(),
                error: e,
            })
    }

    fn language(&self) -> Language {
        self.language
    }

    fn cost(&self) -> CostProfile {
        self.cost.clone()
    }

    fn create(&self) -> Box<dyn Operator> {
        Box::new(HashJoinInstance {
            name: self.name.clone(),
            build_keys: self.build_keys.clone(),
            probe_keys: self.probe_keys.clone(),
            join_type: self.join_type,
            table: HashMap::new(),
            out_schema: None,
            build_key_range: BuildKeyRange::Empty,
            build_has_null_key: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scriptflow_datakit::DataType;

    fn build_tuple(k: i64, tag: &str) -> Tuple {
        Tuple::new(
            Schema::of(&[("k", DataType::Int), ("tag", DataType::Str)]),
            vec![Value::Int(k), Value::Str(tag.into())],
        )
        .unwrap()
    }

    fn probe_tuple(id: i64, k: i64) -> Tuple {
        Tuple::new(
            Schema::of(&[("id", DataType::Int), ("k", DataType::Int)]),
            vec![Value::Int(id), Value::Int(k)],
        )
        .unwrap()
    }

    fn run_join(join_type: JoinType) -> Vec<Tuple> {
        let j = HashJoinOp::new("j", &["k"], &["k"]).with_join_type(join_type);
        let mut inst = j.create();
        let mut out = OutputCollector::new();
        for (k, tag) in [(1, "a"), (2, "b"), (1, "c")] {
            inst.on_tuple(build_tuple(k, tag), 0, &mut out).unwrap();
        }
        inst.on_port_complete(0, &mut out).unwrap();
        for (id, k) in [(10, 1), (20, 2), (30, 9)] {
            inst.on_tuple(probe_tuple(id, k), 1, &mut out).unwrap();
        }
        inst.on_port_complete(1, &mut out).unwrap();
        out.take()
    }

    #[test]
    fn inner_join_matches() {
        let rows = run_join(JoinType::Inner);
        // probe k=1 matches two build rows, k=2 one, k=9 none.
        assert_eq!(rows.len(), 3);
        let tags: Vec<&str> = rows.iter().map(|t| t.get_str("tag").unwrap()).collect();
        assert!(tags.contains(&"a") && tags.contains(&"b") && tags.contains(&"c"));
    }

    #[test]
    fn left_outer_pads_nulls() {
        let rows = run_join(JoinType::LeftOuter);
        assert_eq!(rows.len(), 4);
        let unmatched: Vec<&Tuple> = rows
            .iter()
            .filter(|t| t.get_int("id").unwrap() == 30)
            .collect();
        assert_eq!(unmatched.len(), 1);
        assert!(unmatched[0].get("tag").unwrap().is_null());
        assert!(unmatched[0].get("k_r").unwrap().is_null());
    }

    use scriptflow_datakit::ColumnarBatch;

    fn build_cb(pairs: &[(i64, &str)]) -> ColumnarBatch {
        ColumnarBatch::from_rows(
            Schema::of(&[("k", DataType::Int), ("tag", DataType::Str)]),
            pairs
                .iter()
                .map(|(k, t)| vec![Value::Int(*k), Value::Str((*t).into())])
                .collect(),
        )
        .unwrap()
    }

    fn probe_cb(pairs: &[(i64, i64)]) -> ColumnarBatch {
        ColumnarBatch::from_rows(
            Schema::of(&[("id", DataType::Int), ("k", DataType::Int)]),
            pairs
                .iter()
                .map(|(id, k)| vec![Value::Int(*id), Value::Int(*k)])
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn columnar_build_and_probe_match_row_path() {
        let j = HashJoinOp::new("j", &["k"], &["k"]);
        let mut inst = j.create();
        let mut out = OutputCollector::new();
        inst.on_batch(&build_cb(&[(1, "a"), (2, "b"), (1, "c")]), 0, &mut out)
            .unwrap();
        inst.on_port_complete(0, &mut out).unwrap();
        inst.on_batch(&probe_cb(&[(10, 1), (20, 2), (30, 9)]), 1, &mut out)
            .unwrap();
        let mut rows: Vec<String> = out.take().iter().map(|t| t.to_string()).collect();
        rows.sort_unstable();
        let mut expect: Vec<String> = run_join(JoinType::Inner)
            .iter()
            .map(|t| t.to_string())
            .collect();
        expect.sort_unstable();
        assert_eq!(rows, expect);
    }

    #[test]
    fn disjoint_probe_batch_is_pruned() {
        let j = HashJoinOp::new("j", &["k"], &["k"]);
        let mut inst = j.create();
        let mut out = OutputCollector::new();
        // Build keys span [1, 2].
        inst.on_batch(&build_cb(&[(1, "a"), (2, "b")]), 0, &mut out)
            .unwrap();
        inst.on_port_complete(0, &mut out).unwrap();
        // Probe keys span [50, 60]: disjoint, skipped whole.
        inst.on_batch(&probe_cb(&[(1, 50), (2, 60)]), 1, &mut out)
            .unwrap();
        assert!(out.is_empty());
        assert_eq!(out.batches_skipped(), 1);
        // Overlapping batch still probes.
        inst.on_batch(&probe_cb(&[(3, 2), (4, 40)]), 1, &mut out)
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.batches_skipped(), 1);
    }

    #[test]
    fn left_outer_never_prunes() {
        let j = HashJoinOp::new("j", &["k"], &["k"]).with_join_type(JoinType::LeftOuter);
        let mut inst = j.create();
        let mut out = OutputCollector::new();
        inst.on_batch(&build_cb(&[(1, "a")]), 0, &mut out).unwrap();
        inst.on_port_complete(0, &mut out).unwrap();
        inst.on_batch(&probe_cb(&[(9, 50)]), 1, &mut out).unwrap();
        // The unmatched probe row must still surface, null-padded.
        assert_eq!(out.len(), 1);
        assert_eq!(out.batches_skipped(), 0);
    }

    #[test]
    fn row_built_table_still_prunes_probe_batches() {
        // Build via on_tuple (row path), probe via on_batch: the range
        // must have been tracked on the row path too.
        let j = HashJoinOp::new("j", &["k"], &["k"]);
        let mut inst = j.create();
        let mut out = OutputCollector::new();
        for (k, tag) in [(5, "a"), (7, "b")] {
            inst.on_tuple(build_tuple(k, tag), 0, &mut out).unwrap();
        }
        inst.on_port_complete(0, &mut out).unwrap();
        inst.on_batch(&probe_cb(&[(1, 100), (2, 200)]), 1, &mut out)
            .unwrap();
        assert!(out.is_empty());
        assert_eq!(out.batches_skipped(), 1);
    }

    #[test]
    fn output_schema_renames_duplicates() {
        let j = HashJoinOp::new("j", &["k"], &["k"]);
        let build = Schema::of(&[("k", DataType::Int), ("tag", DataType::Str)]);
        let probe = Schema::of(&[("id", DataType::Int), ("k", DataType::Int)]);
        let s = j.output_schema(&[build, probe]).unwrap();
        assert_eq!(s.to_string(), "id: Int, k: Int, k_r: Int, tag: Str");
    }

    #[test]
    fn output_schema_validates_keys() {
        let j = HashJoinOp::new("j", &["nope"], &["k"]);
        let build = Schema::of(&[("k", DataType::Int)]);
        let probe = Schema::of(&[("id", DataType::Int)]);
        assert!(j.output_schema(&[build, probe]).is_err());
    }

    #[test]
    fn build_port_is_blocking() {
        let j = HashJoinOp::new("j", &["k"], &["k"]);
        assert_eq!(j.blocking_ports(), vec![0]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_key_lists_panic() {
        HashJoinOp::new("j", &["a", "b"], &["k"]);
    }
}
