//! Hash join operator: build on port 0, probe on port 1.

use std::collections::HashMap;
use std::sync::Arc;

use scriptflow_datakit::{HashKey, Schema, SchemaRef, Tuple, Value};
use scriptflow_simcluster::Language;

use crate::cost::CostProfile;
use crate::operator::{Operator, OperatorFactory, OutputCollector, WorkflowError, WorkflowResult};

/// Join semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// Emit only matching pairs.
    Inner,
    /// Emit every probe tuple; unmatched build columns become null.
    LeftOuter,
}

/// Hash join: port 0 (build) is consumed fully into an in-memory hash
/// table, then port 1 (probe) streams through.
///
/// This is the operator whose Python↔Scala swap drives Table I of the
/// paper. With parallelism > 1, both inputs must be hash-partitioned on
/// the join keys (or the build side broadcast).
pub struct HashJoinOp {
    name: String,
    build_keys: Vec<String>,
    probe_keys: Vec<String>,
    join_type: JoinType,
    cost: CostProfile,
    language: Language,
}

impl HashJoinOp {
    /// An inner join matching `probe_keys` (port 1) to `build_keys`
    /// (port 0).
    pub fn new(name: impl Into<String>, probe_keys: &[&str], build_keys: &[&str]) -> Self {
        assert_eq!(
            probe_keys.len(),
            build_keys.len(),
            "join key lists must have equal length"
        );
        assert!(!probe_keys.is_empty(), "join needs at least one key");
        HashJoinOp {
            name: name.into(),
            build_keys: build_keys.iter().map(|s| (*s).to_owned()).collect(),
            probe_keys: probe_keys.iter().map(|s| (*s).to_owned()).collect(),
            join_type: JoinType::Inner,
            // Hash probe + tuple concat: ~3 µs per probe tuple in Python.
            cost: CostProfile::per_tuple_micros(3),
            language: Language::Python,
        }
    }

    /// Change the join semantics.
    pub fn with_join_type(mut self, join_type: JoinType) -> Self {
        self.join_type = join_type;
        self
    }

    /// Override the cost profile.
    pub fn with_cost(mut self, cost: CostProfile) -> Self {
        self.cost = cost;
        self
    }

    /// Override the implementation language (the Table I knob).
    pub fn with_language(mut self, language: Language) -> Self {
        self.language = language;
        self
    }
}

struct HashJoinInstance {
    name: String,
    build_keys: Vec<String>,
    probe_keys: Vec<String>,
    join_type: JoinType,
    table: HashMap<HashKey, Vec<Tuple>>,
    out_schema: Option<SchemaRef>,
}

impl HashJoinInstance {
    fn key_of(&self, tuple: &Tuple, cols: &[String]) -> WorkflowResult<HashKey> {
        let names: Vec<&str> = cols.iter().map(String::as_str).collect();
        HashKey::from_tuple(tuple, &names).map_err(|e| WorkflowError::from_data(&self.name, e))
    }
}

impl Operator for HashJoinInstance {
    fn on_tuple(
        &mut self,
        tuple: Tuple,
        port: usize,
        out: &mut OutputCollector,
    ) -> WorkflowResult<()> {
        match port {
            0 => {
                let key = self.key_of(&tuple, &self.build_keys.clone())?;
                self.table.entry(key).or_default().push(tuple);
                Ok(())
            }
            1 => {
                if self.out_schema.is_none() {
                    // Derive the joined schema lazily from the first probe
                    // tuple + any build tuple (the executor checked it at
                    // build time; this is the instance-local copy).
                    let build_schema = self
                        .table
                        .values()
                        .next()
                        .and_then(|v| v.first())
                        .map(|t| (**t.schema()).clone());
                    let joined = match build_schema {
                        Some(bs) => tuple
                            .schema()
                            .join(&bs, "_r")
                            .map_err(|e| WorkflowError::from_data(&self.name, e))?,
                        // Empty build side: schema only matters for
                        // LeftOuter nulls; synthesize probe-only schema.
                        None => (**tuple.schema()).clone(),
                    };
                    self.out_schema = Some(Arc::new(joined));
                }
                let key = self.key_of(&tuple, &self.probe_keys.clone())?;
                let schema = self.out_schema.clone().expect("set above");
                match self.table.get(&key) {
                    Some(matches) => {
                        for m in matches {
                            let mut values =
                                Vec::with_capacity(tuple.values().len() + m.values().len());
                            values.extend_from_slice(tuple.values());
                            values.extend_from_slice(m.values());
                            out.emit(Tuple::new_unchecked(schema.clone(), values));
                        }
                    }
                    None if self.join_type == JoinType::LeftOuter => {
                        let mut values = Vec::with_capacity(schema.arity());
                        values.extend_from_slice(tuple.values());
                        values.extend(std::iter::repeat_n(
                            Value::Null,
                            schema.arity() - tuple.values().len(),
                        ));
                        out.emit(Tuple::new_unchecked(schema, values));
                    }
                    None => {}
                }
                Ok(())
            }
            other => Err(WorkflowError::OperatorFailed {
                operator: self.name.clone(),
                message: format!("join has ports 0 and 1, got {other}"),
            }),
        }
    }
}

impl OperatorFactory for HashJoinOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn input_ports(&self) -> usize {
        2
    }

    fn blocking_ports(&self) -> Vec<usize> {
        vec![0]
    }

    fn output_schema(&self, inputs: &[SchemaRef]) -> WorkflowResult<Schema> {
        let build = &inputs[0];
        let probe = &inputs[1];
        for (cols, schema, side) in [
            (&self.build_keys, build, "build"),
            (&self.probe_keys, probe, "probe"),
        ] {
            for c in cols {
                schema.index_of(c).map_err(|e| WorkflowError::SchemaError {
                    operator: format!("{} ({side} side)", self.name),
                    error: e,
                })?;
            }
        }
        probe
            .join(build, "_r")
            .map_err(|e| WorkflowError::SchemaError {
                operator: self.name.clone(),
                error: e,
            })
    }

    fn language(&self) -> Language {
        self.language
    }

    fn cost(&self) -> CostProfile {
        self.cost.clone()
    }

    fn create(&self) -> Box<dyn Operator> {
        Box::new(HashJoinInstance {
            name: self.name.clone(),
            build_keys: self.build_keys.clone(),
            probe_keys: self.probe_keys.clone(),
            join_type: self.join_type,
            table: HashMap::new(),
            out_schema: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scriptflow_datakit::DataType;

    fn build_tuple(k: i64, tag: &str) -> Tuple {
        Tuple::new(
            Schema::of(&[("k", DataType::Int), ("tag", DataType::Str)]),
            vec![Value::Int(k), Value::Str(tag.into())],
        )
        .unwrap()
    }

    fn probe_tuple(id: i64, k: i64) -> Tuple {
        Tuple::new(
            Schema::of(&[("id", DataType::Int), ("k", DataType::Int)]),
            vec![Value::Int(id), Value::Int(k)],
        )
        .unwrap()
    }

    fn run_join(join_type: JoinType) -> Vec<Tuple> {
        let j = HashJoinOp::new("j", &["k"], &["k"]).with_join_type(join_type);
        let mut inst = j.create();
        let mut out = OutputCollector::new();
        for (k, tag) in [(1, "a"), (2, "b"), (1, "c")] {
            inst.on_tuple(build_tuple(k, tag), 0, &mut out).unwrap();
        }
        inst.on_port_complete(0, &mut out).unwrap();
        for (id, k) in [(10, 1), (20, 2), (30, 9)] {
            inst.on_tuple(probe_tuple(id, k), 1, &mut out).unwrap();
        }
        inst.on_port_complete(1, &mut out).unwrap();
        out.take()
    }

    #[test]
    fn inner_join_matches() {
        let rows = run_join(JoinType::Inner);
        // probe k=1 matches two build rows, k=2 one, k=9 none.
        assert_eq!(rows.len(), 3);
        let tags: Vec<&str> = rows.iter().map(|t| t.get_str("tag").unwrap()).collect();
        assert!(tags.contains(&"a") && tags.contains(&"b") && tags.contains(&"c"));
    }

    #[test]
    fn left_outer_pads_nulls() {
        let rows = run_join(JoinType::LeftOuter);
        assert_eq!(rows.len(), 4);
        let unmatched: Vec<&Tuple> = rows
            .iter()
            .filter(|t| t.get_int("id").unwrap() == 30)
            .collect();
        assert_eq!(unmatched.len(), 1);
        assert!(unmatched[0].get("tag").unwrap().is_null());
        assert!(unmatched[0].get("k_r").unwrap().is_null());
    }

    #[test]
    fn output_schema_renames_duplicates() {
        let j = HashJoinOp::new("j", &["k"], &["k"]);
        let build = Schema::of(&[("k", DataType::Int), ("tag", DataType::Str)]);
        let probe = Schema::of(&[("id", DataType::Int), ("k", DataType::Int)]);
        let s = j.output_schema(&[build, probe]).unwrap();
        assert_eq!(s.to_string(), "id: Int, k: Int, k_r: Int, tag: Str");
    }

    #[test]
    fn output_schema_validates_keys() {
        let j = HashJoinOp::new("j", &["nope"], &["k"]);
        let build = Schema::of(&[("k", DataType::Int)]);
        let probe = Schema::of(&[("id", DataType::Int)]);
        assert!(j.output_schema(&[build, probe]).is_err());
    }

    #[test]
    fn build_port_is_blocking() {
        let j = HashJoinOp::new("j", &["k"], &["k"]);
        assert_eq!(j.blocking_ports(), vec![0]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_key_lists_panic() {
        HashJoinOp::new("j", &["a", "b"], &["k"]);
    }
}
