//! Hash join operator: build on port 0, probe on port 1. Under a memory
//! budget it degrades to a grace hash join over the compressed block
//! store, recursing on overflow partitions.

use std::collections::HashMap;
use std::sync::Arc;

use scriptflow_datakit::blockstore::{ranges_disjoint, Segment};
use scriptflow_datakit::column::cmp_values;
use scriptflow_datakit::{ColumnVec, ColumnarBatch, HashKey, Schema, SchemaRef, Tuple, Value};
use scriptflow_simcluster::Language;

use scriptflow_core::fingerprint::OpFingerprint;

use crate::cost::CostProfile;
use crate::operator::{
    spec_fingerprinter, Operator, OperatorFactory, OutputCollector, WorkflowError, WorkflowResult,
};
use crate::spill::{tuple_footprint, PartitionWriter, SPILL_FANOUT, SPILL_MAX_DEPTH};

/// Join semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// Emit only matching pairs.
    Inner,
    /// Emit every probe tuple; unmatched build columns become null.
    LeftOuter,
}

/// Hash join: port 0 (build) is consumed fully into an in-memory hash
/// table, then port 1 (probe) streams through.
///
/// This is the operator whose Python↔Scala swap drives Table I of the
/// paper. With parallelism > 1, both inputs must be hash-partitioned on
/// the join keys (or the build side broadcast).
pub struct HashJoinOp {
    name: String,
    build_keys: Vec<String>,
    probe_keys: Vec<String>,
    join_type: JoinType,
    cost: CostProfile,
    language: Language,
    memory_budget: Option<usize>,
}

impl HashJoinOp {
    /// An inner join matching `probe_keys` (port 1) to `build_keys`
    /// (port 0).
    pub fn new(name: impl Into<String>, probe_keys: &[&str], build_keys: &[&str]) -> Self {
        assert_eq!(
            probe_keys.len(),
            build_keys.len(),
            "join key lists must have equal length"
        );
        assert!(!probe_keys.is_empty(), "join needs at least one key");
        HashJoinOp {
            name: name.into(),
            build_keys: build_keys.iter().map(|s| (*s).to_owned()).collect(),
            probe_keys: probe_keys.iter().map(|s| (*s).to_owned()).collect(),
            join_type: JoinType::Inner,
            // Hash probe + tuple concat: ~3 µs per probe tuple in Python.
            cost: CostProfile::per_tuple_micros(3),
            language: Language::Python,
            memory_budget: None,
        }
    }

    /// Change the join semantics.
    pub fn with_join_type(mut self, join_type: JoinType) -> Self {
        self.join_type = join_type;
        self
    }

    /// Per-operator memory budget override: once the build table exceeds
    /// `bytes` it is hash-partitioned to the block store and the join
    /// proceeds grace-style, partition by partition, recursing on
    /// overflow partitions. Takes precedence over the engine-level
    /// [`crate::EngineConfig::memory_budget`].
    pub fn with_memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Override the cost profile.
    pub fn with_cost(mut self, cost: CostProfile) -> Self {
        self.cost = cost;
        self
    }

    /// Override the implementation language (the Table I knob).
    pub fn with_language(mut self, language: Language) -> Self {
        self.language = language;
        self
    }
}

struct HashJoinInstance {
    name: String,
    build_keys: Vec<String>,
    probe_keys: Vec<String>,
    join_type: JoinType,
    table: HashMap<HashKey, Vec<Tuple>>,
    out_schema: Option<SchemaRef>,
    // Min/max of the build-side key column (single-key joins only),
    // folded in while the hash table builds. Probe batches whose key
    // zone map misses this range entirely are pruned (inner joins: a
    // disjoint range proves zero matches).
    build_key_range: BuildKeyRange,
    // A null build key matches null probe keys (Texera's semantics), so
    // probe batches containing null keys must not be pruned when one
    // exists — the min/max range only covers non-null keys.
    build_has_null_key: bool,
    // Memory budget for the build table; past it the join goes grace.
    budget: Option<usize>,
    budget_fixed: bool,
    build_bytes: usize,
    spill: Option<JoinSpill>,
}

/// Partitioned spill state of a grace hash join. Lives in the operator
/// instance, so flushed blocks *and* not-yet-flushed buffers survive a
/// faulted run quantum and are never rebuilt from upstream on replay.
struct JoinSpill {
    build: Vec<PartitionWriter>,
    probe: Vec<PartitionWriter>,
    build_sealed: Vec<Segment>,
}

impl JoinSpill {
    fn new() -> JoinSpill {
        JoinSpill {
            build: (0..SPILL_FANOUT).map(|_| PartitionWriter::new()).collect(),
            probe: (0..SPILL_FANOUT).map(|_| PartitionWriter::new()).collect(),
            build_sealed: Vec::new(),
        }
    }
}

/// Running build-side key range. `Poisoned` is sticky: once an
/// unorderable key (NaN, heterogeneous types) is seen, pruning stays off
/// for the rest of the run — a later clean value must not resurrect a
/// range that silently forgot the poisoned one.
#[derive(Debug, Clone, PartialEq)]
enum BuildKeyRange {
    Empty,
    Range(Value, Value),
    Poisoned,
}

impl HashJoinInstance {
    fn key_of(&self, tuple: &Tuple, cols: &[String]) -> WorkflowResult<HashKey> {
        let names: Vec<&str> = cols.iter().map(String::as_str).collect();
        HashKey::from_tuple(tuple, &names).map_err(|e| WorkflowError::from_data(&self.name, e))
    }

    /// Fold one build-side key value into the running min/max.
    fn widen_build_range(&mut self, v: &Value) {
        if v.is_null() {
            self.build_has_null_key = true;
            return;
        }
        match &mut self.build_key_range {
            BuildKeyRange::Poisoned => {}
            BuildKeyRange::Empty => {
                self.build_key_range = BuildKeyRange::Range(v.clone(), v.clone());
            }
            BuildKeyRange::Range(min, max) => match (cmp_values(v, min), cmp_values(v, max)) {
                (Some(lo), Some(hi)) => {
                    if lo == std::cmp::Ordering::Less {
                        *min = v.clone();
                    }
                    if hi == std::cmp::Ordering::Greater {
                        *max = v.clone();
                    }
                }
                _ => self.build_key_range = BuildKeyRange::Poisoned,
            },
        }
    }

    /// True when the probe batch's key range cannot intersect the build
    /// side's: `probe_max < build_min || probe_min > build_max`.
    fn probe_batch_disjoint(&self, batch: &ColumnarBatch, key_idx: usize) -> bool {
        let BuildKeyRange::Range(build_min, build_max) = &self.build_key_range else {
            return false;
        };
        let stats = batch.stats().column(key_idx);
        if self.build_has_null_key && stats.null_count > 0 {
            return false;
        }
        let (Some(probe_min), Some(probe_max)) = (&stats.min, &stats.max) else {
            return false;
        };
        matches!(
            cmp_values(probe_max, build_min),
            Some(std::cmp::Ordering::Less)
        ) || matches!(
            cmp_values(probe_min, build_max),
            Some(std::cmp::Ordering::Greater)
        )
    }

    /// Derive (once) the joined output schema from a probe tuple and the
    /// build side's schema, falling back to the probe schema when the
    /// build side is empty (nulls are only padded for LeftOuter anyway).
    fn ensure_out_schema(
        &mut self,
        probe: &Tuple,
        build_schema: Option<&Schema>,
    ) -> WorkflowResult<SchemaRef> {
        if let Some(s) = &self.out_schema {
            return Ok(s.clone());
        }
        let joined = match build_schema {
            Some(bs) => probe
                .schema()
                .join(bs, "_r")
                .map_err(|e| WorkflowError::from_data(&self.name, e))?,
            None => (**probe.schema()).clone(),
        };
        let schema = Arc::new(joined);
        self.out_schema = Some(schema.clone());
        Ok(schema)
    }

    /// Emit join output for one probe tuple against its key's matches.
    fn emit_probe(
        schema: &SchemaRef,
        join_type: JoinType,
        tuple: &Tuple,
        matches: Option<&Vec<Tuple>>,
        out: &mut OutputCollector,
    ) {
        match matches {
            Some(matches) => {
                for m in matches {
                    let mut values = Vec::with_capacity(tuple.values().len() + m.values().len());
                    values.extend_from_slice(tuple.values());
                    values.extend_from_slice(m.values());
                    out.emit(Tuple::new_unchecked(schema.clone(), values));
                }
            }
            None if join_type == JoinType::LeftOuter => {
                let mut values = Vec::with_capacity(schema.arity());
                values.extend_from_slice(tuple.values());
                values.extend(std::iter::repeat_n(
                    Value::Null,
                    schema.arity() - tuple.values().len(),
                ));
                out.emit(Tuple::new_unchecked(schema.clone(), values));
            }
            None => {}
        }
    }

    /// Per-partition flush threshold: keep each partition's buffered
    /// remainder within its share of the budget.
    fn flush_at(&self) -> usize {
        self.budget.map_or(usize::MAX, |b| (b / SPILL_FANOUT).max(1))
    }

    /// The build table hit the budget: switch to grace mode by draining
    /// it hash-partitioned into the block store. Later build tuples go
    /// straight to their partition; probing is deferred to
    /// `on_port_complete(1)`.
    fn activate_spill(&mut self, out: &mut OutputCollector) {
        let mut spill = JoinSpill::new();
        let flush_at = self.flush_at();
        for (key, tuples) in std::mem::take(&mut self.table) {
            let p = key.bucket_salted(0, SPILL_FANOUT);
            for t in tuples {
                spill.build[p].push(t, flush_at, out);
            }
        }
        self.build_bytes = 0;
        self.spill = Some(spill);
    }

    /// Join one spilled partition pair. Decodes the build side into an
    /// in-memory table unless it still exceeds the budget, in which case
    /// both sides are repartitioned under a fresh salt and the join
    /// recurses (bounded by [`SPILL_MAX_DEPTH`]).
    fn join_partition(
        &mut self,
        build_seg: Segment,
        probe_seg: Segment,
        depth: u32,
        build_schema: Option<&Schema>,
        out: &mut OutputCollector,
    ) -> WorkflowResult<()> {
        if probe_seg.is_empty() {
            return Ok(());
        }
        let name = self.name.clone();
        let key_col = if self.build_keys.len() == 1 && self.join_type == JoinType::Inner {
            Some((self.build_keys[0].clone(), self.probe_keys[0].clone()))
        } else {
            None
        };
        // Build-side zone map of this partition, from the segment manifest.
        let build_stats = key_col.as_ref().and_then(|(bk, _)| {
            let schema = build_seg.blocks().first().map(|b| b.schema().clone())?;
            let idx = schema.index_of(bk).ok()?;
            build_seg.manifest().column_stats(idx).cloned()
        });
        let build_has_nulls = build_stats.as_ref().is_some_and(|s| s.null_count > 0);

        // Overflow partition: repartition both sides under a fresh salt
        // and recurse, rather than building a table over budget.
        let over_budget = self
            .budget
            .is_some_and(|b| build_seg.manifest().raw_bytes as usize > b);
        if over_budget && depth < SPILL_MAX_DEPTH {
            let flush_at = self.flush_at();
            let mut sub_build: Vec<PartitionWriter> =
                (0..SPILL_FANOUT).map(|_| PartitionWriter::new()).collect();
            let mut sub_probe: Vec<PartitionWriter> =
                (0..SPILL_FANOUT).map(|_| PartitionWriter::new()).collect();
            let salt = u64::from(depth);
            for (seg, writers, keys) in [
                (&build_seg, &mut sub_build, self.build_keys.clone()),
                (&probe_seg, &mut sub_probe, self.probe_keys.clone()),
            ] {
                let names: Vec<&str> = keys.iter().map(String::as_str).collect();
                for block in seg.blocks() {
                    out.note_spill_read();
                    let batch = block.decode().map_err(|e| WorkflowError::from_data(&name, e))?;
                    for t in batch.to_tuples() {
                        let key = HashKey::from_tuple(&t, &names)
                            .map_err(|e| WorkflowError::from_data(&name, e))?;
                        writers[key.bucket_salted(salt, SPILL_FANOUT)].push(t, flush_at, out);
                    }
                }
            }
            for (b, p) in sub_build.into_iter().zip(sub_probe) {
                self.join_partition(b.seal(out), p.seal(out), depth + 1, build_schema, out)?;
            }
            return Ok(());
        }

        // In-memory leg: decode the build partition into a local table.
        let mut local: HashMap<HashKey, Vec<Tuple>> = HashMap::new();
        {
            let names: Vec<&str> = self.build_keys.iter().map(String::as_str).collect();
            for block in build_seg.blocks() {
                out.note_spill_read();
                let batch = block.decode().map_err(|e| WorkflowError::from_data(&name, e))?;
                for t in batch.to_tuples() {
                    let key = HashKey::from_tuple(&t, &names)
                        .map_err(|e| WorkflowError::from_data(&name, e))?;
                    local.entry(key).or_default().push(t);
                }
            }
        }
        let probe_names: Vec<String> = self.probe_keys.clone();
        for block in probe_seg.blocks() {
            // Zone-map partition skip: an inner probe block whose key
            // range is disjoint from the build partition's merged range
            // cannot match — drop it without decompressing.
            if let (Some((_, pk)), Some(bs)) = (&key_col, &build_stats) {
                if let Ok(idx) = block.schema().index_of(pk) {
                    let ps = block.stats().column(idx);
                    let null_safe = !(build_has_nulls && ps.null_count > 0);
                    if null_safe && ranges_disjoint(bs, ps) {
                        out.note_batch_skipped();
                        continue;
                    }
                }
            }
            out.note_spill_read();
            let batch = block.decode().map_err(|e| WorkflowError::from_data(&name, e))?;
            let names: Vec<&str> = probe_names.iter().map(String::as_str).collect();
            for t in batch.to_tuples() {
                let schema = self.ensure_out_schema(&t, build_schema)?;
                let key = HashKey::from_tuple(&t, &names)
                    .map_err(|e| WorkflowError::from_data(&name, e))?;
                Self::emit_probe(&schema, self.join_type, &t, local.get(&key), out);
            }
        }
        Ok(())
    }
}

impl Operator for HashJoinInstance {
    fn set_memory_budget(&mut self, bytes: Option<usize>) {
        if !self.budget_fixed {
            self.budget = bytes;
        }
    }

    fn on_tuple(
        &mut self,
        tuple: Tuple,
        port: usize,
        out: &mut OutputCollector,
    ) -> WorkflowResult<()> {
        match port {
            0 => {
                if self.build_keys.len() == 1 {
                    let v = tuple
                        .get(&self.build_keys[0])
                        .map_err(|e| WorkflowError::from_data(&self.name, e))?
                        .clone();
                    self.widen_build_range(&v);
                }
                let key = self.key_of(&tuple, &self.build_keys.clone())?;
                if let Some(spill) = self.spill.as_mut() {
                    let flush_at = self.budget.map_or(usize::MAX, |b| (b / SPILL_FANOUT).max(1));
                    spill.build[key.bucket_salted(0, SPILL_FANOUT)].push(tuple, flush_at, out);
                    return Ok(());
                }
                self.build_bytes += tuple_footprint(&tuple);
                self.table.entry(key).or_default().push(tuple);
                if self.budget.is_some_and(|b| self.build_bytes > b) {
                    self.activate_spill(out);
                }
                Ok(())
            }
            1 => {
                let key = self.key_of(&tuple, &self.probe_keys.clone())?;
                if let Some(spill) = self.spill.as_mut() {
                    // Grace mode: probing is deferred until the probe port
                    // completes and partitions join pairwise.
                    let flush_at = self.budget.map_or(usize::MAX, |b| (b / SPILL_FANOUT).max(1));
                    spill.probe[key.bucket_salted(0, SPILL_FANOUT)].push(tuple, flush_at, out);
                    return Ok(());
                }
                // Derive the joined schema lazily from the first probe
                // tuple + any build tuple (the executor checked it at
                // build time; this is the instance-local copy).
                let build_schema = self
                    .table
                    .values()
                    .next()
                    .and_then(|v| v.first())
                    .map(|t| (**t.schema()).clone());
                let schema = self.ensure_out_schema(&tuple, build_schema.as_ref())?;
                Self::emit_probe(&schema, self.join_type, &tuple, self.table.get(&key), out);
                Ok(())
            }
            other => Err(WorkflowError::OperatorFailed {
                operator: self.name.clone(),
                message: format!("join has ports 0 and 1, got {other}"),
            }),
        }
    }

    fn on_port_complete(&mut self, port: usize, out: &mut OutputCollector) -> WorkflowResult<()> {
        let Some(mut spill) = self.spill.take() else {
            return Ok(());
        };
        match port {
            0 => {
                // Seal the build partitions under their manifests; probe
                // tuples keep streaming into probe partitions.
                spill.build_sealed = spill
                    .build
                    .drain(..)
                    .map(|w| w.seal(out))
                    .collect();
                self.spill = Some(spill);
            }
            1 => {
                let builds = std::mem::take(&mut spill.build_sealed);
                let probes: Vec<Segment> =
                    spill.probe.drain(..).map(|w| w.seal(out)).collect();
                // The build schema is global to the join; per-partition
                // derivation would mis-pad LeftOuter rows whose build
                // partition happens to be empty.
                let build_schema: Option<Schema> = builds
                    .iter()
                    .find_map(|s| s.blocks().first())
                    .map(|b| (**b.schema()).clone());
                for (b, p) in builds.into_iter().zip(probes) {
                    self.join_partition(b, p, 1, build_schema.as_ref(), out)?;
                }
            }
            _ => self.spill = Some(spill),
        }
        Ok(())
    }

    fn on_batch(
        &mut self,
        batch: &ColumnarBatch,
        port: usize,
        out: &mut OutputCollector,
    ) -> WorkflowResult<()> {
        if port == 0 && self.budget.is_some() {
            // Budgeted build: the row path tracks byte accounting and the
            // spill switch per tuple; the columnar fast path would bypass
            // both.
            for i in 0..batch.len() {
                self.on_tuple(batch.tuple_at(i), port, out)?;
            }
            return Ok(());
        }
        if port == 0 && self.build_keys.len() == 1 {
            let idx = batch
                .schema()
                .index_of(&self.build_keys[0])
                .map_err(|e| WorkflowError::from_data(&self.name, e))?;
            // Fold the whole batch's key range from its sealed stats
            // (one comparison pair instead of one per build row).
            let stats = batch.stats().column(idx);
            if stats.null_count > 0 {
                self.build_has_null_key = true;
            }
            let non_null = batch.len() as u64 - stats.null_count;
            match (&stats.min, &stats.max) {
                (Some(min), Some(max)) => {
                    self.widen_build_range(min);
                    self.widen_build_range(max);
                }
                // Valid rows without an orderable range (NaN, Mixed):
                // pruning would be unsound from here on.
                _ if non_null > 0 => self.build_key_range = BuildKeyRange::Poisoned,
                _ => {}
            }
            // Build the hash table from the typed key column: keys come
            // straight off the dense vector, no per-tuple name lookup.
            match batch.column(idx) {
                ColumnVec::Int { data, validity } => {
                    for (i, &k) in data.iter().enumerate() {
                        let key = if validity.is_valid(i) {
                            HashKey::Int(k)
                        } else {
                            HashKey::Null
                        };
                        self.table.entry(key).or_default().push(batch.tuple_at(i));
                    }
                }
                ColumnVec::Str { data, validity } => {
                    for (i, k) in data.iter().enumerate() {
                        let key = if validity.is_valid(i) {
                            HashKey::Str(k.clone())
                        } else {
                            HashKey::Null
                        };
                        self.table.entry(key).or_default().push(batch.tuple_at(i));
                    }
                }
                col => {
                    for i in 0..col.len() {
                        let key = HashKey::from_value(&col.value_at(i))
                            .map_err(|e| WorkflowError::from_data(&self.name, e))?;
                        self.table.entry(key).or_default().push(batch.tuple_at(i));
                    }
                }
            }
            return Ok(());
        }
        if port == 1 && self.join_type == JoinType::Inner && self.probe_keys.len() == 1 {
            let idx = batch
                .schema()
                .index_of(&self.probe_keys[0])
                .map_err(|e| WorkflowError::from_data(&self.name, e))?;
            if self.probe_batch_disjoint(batch, idx) {
                // Build-side zone map proves zero matches in this batch.
                out.note_batch_skipped();
                return Ok(());
            }
        }
        for i in 0..batch.len() {
            self.on_tuple(batch.tuple_at(i), port, out)?;
        }
        Ok(())
    }
}

impl OperatorFactory for HashJoinOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn input_ports(&self) -> usize {
        2
    }

    fn blocking_ports(&self) -> Vec<usize> {
        vec![0]
    }

    fn output_schema(&self, inputs: &[SchemaRef]) -> WorkflowResult<Schema> {
        let build = &inputs[0];
        let probe = &inputs[1];
        for (cols, schema, side) in [
            (&self.build_keys, build, "build"),
            (&self.probe_keys, probe, "probe"),
        ] {
            for c in cols {
                schema.index_of(c).map_err(|e| WorkflowError::SchemaError {
                    operator: format!("{} ({side} side)", self.name),
                    error: e,
                })?;
            }
        }
        probe
            .join(build, "_r")
            .map_err(|e| WorkflowError::SchemaError {
                operator: self.name.clone(),
                error: e,
            })
    }

    fn language(&self) -> Language {
        self.language
    }

    fn cost(&self) -> CostProfile {
        self.cost.clone()
    }

    fn create(&self) -> Box<dyn Operator> {
        Box::new(HashJoinInstance {
            name: self.name.clone(),
            build_keys: self.build_keys.clone(),
            probe_keys: self.probe_keys.clone(),
            join_type: self.join_type,
            table: HashMap::new(),
            out_schema: None,
            build_key_range: BuildKeyRange::Empty,
            build_has_null_key: false,
            budget: self.memory_budget,
            budget_fixed: self.memory_budget.is_some(),
            build_bytes: 0,
            spill: None,
        })
    }

    fn fingerprint(&self) -> OpFingerprint {
        let mut h = spec_fingerprinter(self);
        h.write_usize(self.build_keys.len());
        for k in &self.build_keys {
            h.write_str(k);
        }
        for k in &self.probe_keys {
            h.write_str(k);
        }
        h.write_str(&format!("{:?}", self.join_type));
        match self.memory_budget {
            Some(b) => h.write_usize(b),
            None => h.write_str("unbounded"),
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scriptflow_datakit::DataType;

    fn build_tuple(k: i64, tag: &str) -> Tuple {
        Tuple::new(
            Schema::of(&[("k", DataType::Int), ("tag", DataType::Str)]),
            vec![Value::Int(k), Value::Str(tag.into())],
        )
        .unwrap()
    }

    fn probe_tuple(id: i64, k: i64) -> Tuple {
        Tuple::new(
            Schema::of(&[("id", DataType::Int), ("k", DataType::Int)]),
            vec![Value::Int(id), Value::Int(k)],
        )
        .unwrap()
    }

    fn run_join(join_type: JoinType) -> Vec<Tuple> {
        let j = HashJoinOp::new("j", &["k"], &["k"]).with_join_type(join_type);
        let mut inst = j.create();
        let mut out = OutputCollector::new();
        for (k, tag) in [(1, "a"), (2, "b"), (1, "c")] {
            inst.on_tuple(build_tuple(k, tag), 0, &mut out).unwrap();
        }
        inst.on_port_complete(0, &mut out).unwrap();
        for (id, k) in [(10, 1), (20, 2), (30, 9)] {
            inst.on_tuple(probe_tuple(id, k), 1, &mut out).unwrap();
        }
        inst.on_port_complete(1, &mut out).unwrap();
        out.take()
    }

    #[test]
    fn inner_join_matches() {
        let rows = run_join(JoinType::Inner);
        // probe k=1 matches two build rows, k=2 one, k=9 none.
        assert_eq!(rows.len(), 3);
        let tags: Vec<&str> = rows.iter().map(|t| t.get_str("tag").unwrap()).collect();
        assert!(tags.contains(&"a") && tags.contains(&"b") && tags.contains(&"c"));
    }

    #[test]
    fn left_outer_pads_nulls() {
        let rows = run_join(JoinType::LeftOuter);
        assert_eq!(rows.len(), 4);
        let unmatched: Vec<&Tuple> = rows
            .iter()
            .filter(|t| t.get_int("id").unwrap() == 30)
            .collect();
        assert_eq!(unmatched.len(), 1);
        assert!(unmatched[0].get("tag").unwrap().is_null());
        assert!(unmatched[0].get("k_r").unwrap().is_null());
    }

    use scriptflow_datakit::ColumnarBatch;

    fn build_cb(pairs: &[(i64, &str)]) -> ColumnarBatch {
        ColumnarBatch::from_rows(
            Schema::of(&[("k", DataType::Int), ("tag", DataType::Str)]),
            pairs
                .iter()
                .map(|(k, t)| vec![Value::Int(*k), Value::Str((*t).into())])
                .collect(),
        )
        .unwrap()
    }

    fn probe_cb(pairs: &[(i64, i64)]) -> ColumnarBatch {
        ColumnarBatch::from_rows(
            Schema::of(&[("id", DataType::Int), ("k", DataType::Int)]),
            pairs
                .iter()
                .map(|(id, k)| vec![Value::Int(*id), Value::Int(*k)])
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn columnar_build_and_probe_match_row_path() {
        let j = HashJoinOp::new("j", &["k"], &["k"]);
        let mut inst = j.create();
        let mut out = OutputCollector::new();
        inst.on_batch(&build_cb(&[(1, "a"), (2, "b"), (1, "c")]), 0, &mut out)
            .unwrap();
        inst.on_port_complete(0, &mut out).unwrap();
        inst.on_batch(&probe_cb(&[(10, 1), (20, 2), (30, 9)]), 1, &mut out)
            .unwrap();
        let mut rows: Vec<String> = out.take().iter().map(|t| t.to_string()).collect();
        rows.sort_unstable();
        let mut expect: Vec<String> = run_join(JoinType::Inner)
            .iter()
            .map(|t| t.to_string())
            .collect();
        expect.sort_unstable();
        assert_eq!(rows, expect);
    }

    #[test]
    fn disjoint_probe_batch_is_pruned() {
        let j = HashJoinOp::new("j", &["k"], &["k"]);
        let mut inst = j.create();
        let mut out = OutputCollector::new();
        // Build keys span [1, 2].
        inst.on_batch(&build_cb(&[(1, "a"), (2, "b")]), 0, &mut out)
            .unwrap();
        inst.on_port_complete(0, &mut out).unwrap();
        // Probe keys span [50, 60]: disjoint, skipped whole.
        inst.on_batch(&probe_cb(&[(1, 50), (2, 60)]), 1, &mut out)
            .unwrap();
        assert!(out.is_empty());
        assert_eq!(out.batches_skipped(), 1);
        // Overlapping batch still probes.
        inst.on_batch(&probe_cb(&[(3, 2), (4, 40)]), 1, &mut out)
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.batches_skipped(), 1);
    }

    #[test]
    fn left_outer_never_prunes() {
        let j = HashJoinOp::new("j", &["k"], &["k"]).with_join_type(JoinType::LeftOuter);
        let mut inst = j.create();
        let mut out = OutputCollector::new();
        inst.on_batch(&build_cb(&[(1, "a")]), 0, &mut out).unwrap();
        inst.on_port_complete(0, &mut out).unwrap();
        inst.on_batch(&probe_cb(&[(9, 50)]), 1, &mut out).unwrap();
        // The unmatched probe row must still surface, null-padded.
        assert_eq!(out.len(), 1);
        assert_eq!(out.batches_skipped(), 0);
    }

    #[test]
    fn row_built_table_still_prunes_probe_batches() {
        // Build via on_tuple (row path), probe via on_batch: the range
        // must have been tracked on the row path too.
        let j = HashJoinOp::new("j", &["k"], &["k"]);
        let mut inst = j.create();
        let mut out = OutputCollector::new();
        for (k, tag) in [(5, "a"), (7, "b")] {
            inst.on_tuple(build_tuple(k, tag), 0, &mut out).unwrap();
        }
        inst.on_port_complete(0, &mut out).unwrap();
        inst.on_batch(&probe_cb(&[(1, 100), (2, 200)]), 1, &mut out)
            .unwrap();
        assert!(out.is_empty());
        assert_eq!(out.batches_skipped(), 1);
    }

    fn run_join_budgeted(join_type: JoinType, budget: usize, n: i64) -> (Vec<Tuple>, u64, u64) {
        let j = HashJoinOp::new("j", &["k"], &["k"])
            .with_join_type(join_type)
            .with_memory_budget(budget);
        let mut inst = j.create();
        let mut out = OutputCollector::new();
        for i in 0..n {
            inst.on_tuple(build_tuple(i % 13, &format!("b{i}")), 0, &mut out)
                .unwrap();
        }
        inst.on_port_complete(0, &mut out).unwrap();
        for i in 0..n {
            inst.on_tuple(probe_tuple(i, i % 17), 1, &mut out).unwrap();
        }
        inst.on_port_complete(1, &mut out).unwrap();
        (out.take(), out.take_spill().0, out.take_batches_skipped())
    }

    fn sorted_strings(rows: &[Tuple]) -> Vec<String> {
        let mut v: Vec<String> = rows.iter().map(|t| t.to_string()).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn grace_join_matches_in_memory_join() {
        for join_type in [JoinType::Inner, JoinType::LeftOuter] {
            let (in_mem, spilled_blocks, _) = run_join_budgeted(join_type, 1 << 30, 120);
            assert_eq!(spilled_blocks, 0, "huge budget must not spill");
            let (graced, spilled, _) = run_join_budgeted(join_type, 256, 120);
            assert!(spilled > 0, "256-byte budget must spill the build table");
            assert_eq!(sorted_strings(&graced), sorted_strings(&in_mem));
        }
    }

    #[test]
    fn overflow_partitions_recurse_and_still_match() {
        // A budget small enough that every partition also overflows,
        // forcing at least one recursive repartitioning round.
        let (in_mem, _, _) = run_join_budgeted(JoinType::Inner, 1 << 30, 300);
        let (graced, spilled, _) = run_join_budgeted(JoinType::Inner, 64, 300);
        assert!(spilled > SPILL_FANOUT as u64);
        assert_eq!(sorted_strings(&graced), sorted_strings(&in_mem));
    }

    #[test]
    fn spilled_partitions_skip_disjoint_probe_blocks() {
        // Build keys all < 100; probe keys all > 1000 → every probe
        // block's range misses every build partition's range.
        let j = HashJoinOp::new("j", &["k"], &["k"]).with_memory_budget(128);
        let mut inst = j.create();
        let mut out = OutputCollector::new();
        for i in 0..60 {
            inst.on_tuple(build_tuple(i, "b"), 0, &mut out).unwrap();
        }
        inst.on_port_complete(0, &mut out).unwrap();
        for i in 0..60 {
            inst.on_tuple(probe_tuple(i, 1000 + i), 1, &mut out).unwrap();
        }
        let reads_before_probe = out.spill_reads();
        inst.on_port_complete(1, &mut out).unwrap();
        assert!(out.is_empty(), "disjoint keys must produce no matches");
        assert!(
            out.batches_skipped() > 0,
            "zone maps must skip disjoint probe blocks"
        );
        // Skipped probe blocks are never decompressed; only build blocks
        // (and any repartitioning) pay reads.
        assert!(out.spill_reads() >= reads_before_probe);
    }

    #[test]
    fn engine_budget_reaches_join_unless_overridden() {
        let j = HashJoinOp::new("j", &["k"], &["k"]);
        let mut inst = j.create();
        inst.set_memory_budget(Some(128));
        let mut out = OutputCollector::new();
        for i in 0..60 {
            inst.on_tuple(build_tuple(i, "b"), 0, &mut out).unwrap();
        }
        inst.on_port_complete(0, &mut out).unwrap();
        assert!(out.spilled_blocks() > 0);

        let fixed = HashJoinOp::new("j", &["k"], &["k"]).with_memory_budget(1 << 30);
        let mut inst = fixed.create();
        inst.set_memory_budget(Some(128));
        let mut out = OutputCollector::new();
        for i in 0..60 {
            inst.on_tuple(build_tuple(i, "b"), 0, &mut out).unwrap();
        }
        inst.on_port_complete(0, &mut out).unwrap();
        assert_eq!(out.spilled_blocks(), 0, "override must shadow engine budget");
    }

    #[test]
    fn output_schema_renames_duplicates() {
        let j = HashJoinOp::new("j", &["k"], &["k"]);
        let build = Schema::of(&[("k", DataType::Int), ("tag", DataType::Str)]);
        let probe = Schema::of(&[("id", DataType::Int), ("k", DataType::Int)]);
        let s = j.output_schema(&[build, probe]).unwrap();
        assert_eq!(s.to_string(), "id: Int, k: Int, k_r: Int, tag: Str");
    }

    #[test]
    fn output_schema_validates_keys() {
        let j = HashJoinOp::new("j", &["nope"], &["k"]);
        let build = Schema::of(&[("k", DataType::Int)]);
        let probe = Schema::of(&[("id", DataType::Int)]);
        assert!(j.output_schema(&[build, probe]).is_err());
    }

    #[test]
    fn build_port_is_blocking() {
        let j = HashJoinOp::new("j", &["k"], &["k"]);
        assert_eq!(j.blocking_ports(), vec![0]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_key_lists_panic() {
        HashJoinOp::new("j", &["a", "b"], &["k"]);
    }
}
