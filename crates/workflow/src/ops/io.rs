//! Text-format source and sink operators (CSV / JSONL).
//!
//! The paper's Fig. 9 workflow starts from a "JSONL Processing" source;
//! these operators bridge the [`scriptflow_datakit::codec`] formats into
//! the engine. Sources decode eagerly at build time (malformed input is
//! a *construction* error, before any execution); sinks encode tuples
//! back to text retrievable through a shared handle.

use std::sync::Arc;

use parking_lot::Mutex;
use scriptflow_datakit::codec;
use scriptflow_datakit::{DataResult, Schema, SchemaRef, Tuple};
use scriptflow_simcluster::Language;

use crate::cost::CostProfile;
use crate::operator::{Operator, OperatorFactory, OutputCollector, WorkflowResult};
use crate::ops::ScanOp;

/// Build a scan over CSV text (header + typed rows). Decoding errors
/// surface immediately with their line numbers.
pub fn csv_scan(name: impl Into<String>, schema: SchemaRef, text: &str) -> DataResult<ScanOp> {
    let batch = codec::from_csv(schema, text)?;
    // Text parsing is pricier than re-emitting in-memory rows.
    Ok(ScanOp::new(name, batch).with_cost(CostProfile::per_tuple_micros(12)))
}

/// Build a scan over JSONL text (one object per line).
pub fn jsonl_scan(name: impl Into<String>, schema: SchemaRef, text: &str) -> DataResult<ScanOp> {
    let batch = codec::from_jsonl(schema, text)?;
    Ok(ScanOp::new(name, batch).with_cost(CostProfile::per_tuple_micros(15)))
}

/// Output format of a [`TextSinkOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TextFormat {
    /// JSON Lines.
    Jsonl,
    /// CSV (header written by [`TextSinkHandle::text`]).
    Csv,
}

/// A sink that encodes every received tuple as a text line.
pub struct TextSinkOp {
    name: String,
    format: TextFormat,
    rows: Arc<Mutex<Vec<Tuple>>>,
    language: Language,
}

impl TextSinkOp {
    /// A text sink in the given format.
    pub fn new(name: impl Into<String>, format: TextFormat) -> Self {
        TextSinkOp {
            name: name.into(),
            format,
            rows: Arc::new(Mutex::new(Vec::new())),
            language: Language::Python,
        }
    }

    /// Shared handle to retrieve the encoded text after the run.
    pub fn handle(&self) -> TextSinkHandle {
        TextSinkHandle {
            format: self.format,
            rows: self.rows.clone(),
        }
    }
}

/// Handle to a [`TextSinkOp`]'s collected output.
#[derive(Clone)]
pub struct TextSinkHandle {
    format: TextFormat,
    rows: Arc<Mutex<Vec<Tuple>>>,
}

impl TextSinkHandle {
    /// Number of rows received.
    pub fn len(&self) -> usize {
        self.rows.lock().len()
    }

    /// True if nothing arrived.
    pub fn is_empty(&self) -> bool {
        self.rows.lock().is_empty()
    }

    /// Encode everything received so far (rows sorted for determinism
    /// under parallel execution).
    pub fn text(&self) -> String {
        let rows = self.rows.lock();
        if rows.is_empty() {
            return String::new();
        }
        let schema = rows[0].schema().clone();
        let mut sorted = rows.clone();
        sorted.sort_by_key(|t| t.to_string());
        let batch =
            scriptflow_datakit::Batch::new(schema, sorted).expect("sink rows share one schema");
        match self.format {
            TextFormat::Jsonl => codec::to_jsonl(&batch),
            TextFormat::Csv => codec::to_csv(&batch),
        }
    }
}

struct TextSinkInstance {
    rows: Arc<Mutex<Vec<Tuple>>>,
}

impl Operator for TextSinkInstance {
    fn on_tuple(
        &mut self,
        tuple: Tuple,
        _port: usize,
        _out: &mut OutputCollector,
    ) -> WorkflowResult<()> {
        self.rows.lock().push(tuple);
        Ok(())
    }
}

impl OperatorFactory for TextSinkOp {
    fn name(&self) -> &str {
        &self.name
    }
    fn input_ports(&self) -> usize {
        1
    }
    fn output_schema(&self, inputs: &[SchemaRef]) -> WorkflowResult<Schema> {
        Ok((*inputs[0]).clone())
    }
    fn language(&self) -> Language {
        self.language
    }
    fn cost(&self) -> CostProfile {
        // Serialization to text per row.
        CostProfile::per_tuple_micros(8)
    }
    fn create(&self) -> Box<dyn Operator> {
        Box::new(TextSinkInstance {
            rows: self.rows.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::WorkflowBuilder;
    use crate::exec_sim::SimExecutor;
    use crate::ops::FilterOp;
    use crate::partition::PartitionStrategy;
    use crate::EngineConfig;
    use scriptflow_datakit::DataType;

    fn schema() -> SchemaRef {
        Schema::of(&[("id", DataType::Int), ("name", DataType::Str)])
    }

    const CSV: &str = "id,name\n1,ada\n2,grace\n3,edsger\n";

    #[test]
    fn csv_roundtrip_through_a_workflow() {
        let scan = csv_scan("JSONL Processing", schema(), CSV).unwrap();
        let sink = TextSinkOp::new("Write JSONL", TextFormat::Jsonl);
        let handle = sink.handle();
        let mut b = WorkflowBuilder::new();
        let s = b.add(Arc::new(scan), 1);
        let f = b.add(
            Arc::new(FilterOp::new("keep", |t| Ok(t.get_int("id")? != 2))),
            2,
        );
        let k = b.add(Arc::new(sink), 1);
        b.connect(s, f, 0, PartitionStrategy::RoundRobin);
        b.connect(f, k, 0, PartitionStrategy::Single);
        let wf = b.build().unwrap();
        SimExecutor::new(EngineConfig::default()).run(&wf).unwrap();
        let text = handle.text();
        assert!(text.contains(r#"{"id":1,"name":"ada"}"#), "{text}");
        assert!(!text.contains("grace"));
        assert_eq!(handle.len(), 2);
    }

    #[test]
    fn jsonl_scan_decodes() {
        let text = "{\"id\":7,\"name\":\"x\"}\n{\"id\":8,\"name\":\"y\"}\n";
        let scan = jsonl_scan("src", schema(), text).unwrap();
        assert_eq!(scan.len(), 2);
    }

    #[test]
    fn malformed_input_fails_at_construction() {
        let err = match csv_scan("src", schema(), "id,name\nnotanint,x\n") {
            Err(e) => e,
            Ok(_) => panic!("expected a decode error"),
        };
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(jsonl_scan("src", schema(), "{broken").is_err());
    }

    #[test]
    fn csv_sink_emits_header() {
        let scan = csv_scan("src", schema(), CSV).unwrap();
        let sink = TextSinkOp::new("csv out", TextFormat::Csv);
        let handle = sink.handle();
        let mut b = WorkflowBuilder::new();
        let s = b.add(Arc::new(scan), 1);
        let k = b.add(Arc::new(sink), 1);
        b.connect(s, k, 0, PartitionStrategy::Single);
        let wf = b.build().unwrap();
        SimExecutor::new(EngineConfig::default()).run(&wf).unwrap();
        let text = handle.text();
        assert!(text.starts_with("id,name\n"), "{text}");
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    fn empty_sink_renders_empty() {
        let sink = TextSinkOp::new("s", TextFormat::Csv);
        assert!(sink.handle().is_empty());
        assert_eq!(sink.handle().text(), "");
    }
}
