//! Built-in operator library.
//!
//! Texera ships a broad palette of off-the-shelf operators "ranging from
//! simple filtering and projection to visualization" (§I); this module is
//! the analogue. Every factory supports `with_cost`, `with_language`, and
//! `with_parallel_hint` style configuration so tasks can model the exact
//! operator mix the paper used.

mod aggregate;
mod hash_join;
mod io;
mod relational;
mod scan;
mod sink;
mod sort;
mod udf;
mod union;

pub use aggregate::{AggFn, AggregateOp};
pub use hash_join::{HashJoinOp, JoinType};
pub use io::{csv_scan, jsonl_scan, TextFormat, TextSinkHandle, TextSinkOp};
pub use relational::{DistinctOp, FilterOp, LimitOp, ProjectOp};
pub use scan::ScanOp;
pub use sink::{SinkHandle, SinkOp};
pub use sort::{SortOp, SortOrder};
pub use udf::{StatefulUdfOp, UdfOp};
pub use union::UnionOp;
