//! Simple relational operators: filter, project, limit, distinct.

use std::collections::HashSet;
use std::sync::Arc;

use scriptflow_datakit::column::{cmp_value, CmpOp};
use scriptflow_datakit::{
    ColumnVec, ColumnarBatch, DataResult, HashKey, Schema, SchemaRef, Tuple, Value,
};
use scriptflow_simcluster::Language;

use scriptflow_core::fingerprint::OpFingerprint;

use crate::cost::CostProfile;
use crate::operator::{
    fingerprint_value, spec_fingerprinter, Operator, OperatorFactory, OutputCollector,
    WorkflowError, WorkflowResult,
};

type Predicate = Arc<dyn Fn(&Tuple) -> DataResult<bool> + Send + Sync>;

/// A structured `column op literal` comparison the engine can evaluate
/// against a batch's zone map (opaque closure predicates cannot be
/// reasoned about, so only filters built via [`FilterOp::cmp`] skip
/// batches).
#[derive(Debug, Clone)]
struct CmpPredicate {
    column: String,
    op: CmpOp,
    literal: Value,
}

/// Keep tuples matching a predicate.
pub struct FilterOp {
    name: String,
    predicate: Predicate,
    cmp: Option<CmpPredicate>,
    cost: CostProfile,
    language: Language,
}

impl FilterOp {
    /// A filter with the given predicate.
    pub fn new(
        name: impl Into<String>,
        predicate: impl Fn(&Tuple) -> DataResult<bool> + Send + Sync + 'static,
    ) -> Self {
        FilterOp {
            name: name.into(),
            predicate: Arc::new(predicate),
            cmp: None,
            cost: CostProfile::default(),
            language: Language::Python,
        }
    }

    /// A structured comparison filter: keep tuples where
    /// `column op literal` (nulls and incomparable type mixes never
    /// match). Unlike [`FilterOp::new`], the predicate's shape is known
    /// to the engine, so the columnar path first consults the batch's
    /// min/max zone map — batches whose range cannot satisfy the
    /// comparison are skipped whole, batches whose range trivially
    /// satisfies it pass through untouched, and only the remainder run
    /// the tight typed-column loop.
    pub fn cmp(
        name: impl Into<String>,
        column: impl Into<String>,
        op: CmpOp,
        literal: Value,
    ) -> Self {
        let column = column.into();
        let cmp = CmpPredicate {
            column: column.clone(),
            op,
            literal: literal.clone(),
        };
        FilterOp {
            name: name.into(),
            predicate: Arc::new(move |t: &Tuple| Ok(cmp_value(t.get(&column)?, op, &literal))),
            cmp: Some(cmp),
            cost: CostProfile::default(),
            language: Language::Python,
        }
    }

    /// Override the cost profile.
    pub fn with_cost(mut self, cost: CostProfile) -> Self {
        self.cost = cost;
        self
    }

    /// Override the implementation language.
    pub fn with_language(mut self, language: Language) -> Self {
        self.language = language;
        self
    }
}

struct FilterInstance {
    name: String,
    predicate: Predicate,
    cmp: Option<CmpPredicate>,
}

impl FilterInstance {
    /// Tight monomorphic keep-mask loop for a comparison predicate over
    /// one typed column; falls back to boxed comparison for `Mixed`.
    fn columnar_mask(col: &ColumnVec, op: CmpOp, literal: &Value) -> Vec<bool> {
        match (col, literal) {
            (ColumnVec::Int { data, validity }, Value::Int(lit)) => data
                .iter()
                .enumerate()
                .map(|(i, x)| validity.is_valid(i) && op.eval(x.cmp(lit)))
                .collect(),
            (ColumnVec::Float { data, validity }, Value::Float(lit)) => data
                .iter()
                .enumerate()
                .map(|(i, x)| {
                    validity.is_valid(i) && x.partial_cmp(lit).is_some_and(|o| op.eval(o))
                })
                .collect(),
            (ColumnVec::Str { data, validity }, Value::Str(lit)) => data
                .iter()
                .enumerate()
                .map(|(i, s)| validity.is_valid(i) && op.eval(s.as_str().cmp(lit)))
                .collect(),
            _ => (0..col.len())
                .map(|i| cmp_value(&col.value_at(i), op, literal))
                .collect(),
        }
    }
}

impl Operator for FilterInstance {
    fn on_tuple(
        &mut self,
        tuple: Tuple,
        _port: usize,
        out: &mut OutputCollector,
    ) -> WorkflowResult<()> {
        let keep = (self.predicate)(&tuple).map_err(|e| WorkflowError::from_data(&self.name, e))?;
        if keep {
            out.emit(tuple);
        }
        Ok(())
    }

    fn on_batch(
        &mut self,
        batch: &ColumnarBatch,
        port: usize,
        out: &mut OutputCollector,
    ) -> WorkflowResult<()> {
        let Some(cmp) = &self.cmp else {
            // Opaque closure: row-at-a-time is the only option.
            for i in 0..batch.len() {
                self.on_tuple(batch.tuple_at(i), port, out)?;
            }
            return Ok(());
        };
        let idx = batch
            .schema()
            .index_of(&cmp.column)
            .map_err(|e| WorkflowError::from_data(&self.name, e))?;
        let stats = batch.stats().column(idx);
        if stats.range_excludes(cmp.op, &cmp.literal) {
            // Zone map proves no row matches: prune the whole batch.
            out.note_batch_skipped();
            return Ok(());
        }
        if stats.range_satisfies(cmp.op, &cmp.literal) {
            out.emit_all(batch.to_tuples());
            return Ok(());
        }
        let mask = Self::columnar_mask(batch.column(idx), cmp.op, &cmp.literal);
        for (i, keep) in mask.into_iter().enumerate() {
            if keep {
                out.emit(batch.tuple_at(i));
            }
        }
        Ok(())
    }
}

impl OperatorFactory for FilterOp {
    fn name(&self) -> &str {
        &self.name
    }
    fn input_ports(&self) -> usize {
        1
    }
    fn output_schema(&self, inputs: &[SchemaRef]) -> WorkflowResult<Schema> {
        if let Some(cmp) = &self.cmp {
            // Structured predicates validate their column eagerly — the
            // workflow paradigm's early schema checking.
            inputs[0]
                .index_of(&cmp.column)
                .map_err(|e| WorkflowError::SchemaError {
                    operator: self.name.clone(),
                    error: e,
                })?;
        }
        Ok((*inputs[0]).clone())
    }
    fn language(&self) -> Language {
        self.language
    }
    fn cost(&self) -> CostProfile {
        self.cost.clone()
    }
    fn create(&self) -> Box<dyn Operator> {
        Box::new(FilterInstance {
            name: self.name.clone(),
            predicate: self.predicate.clone(),
            cmp: self.cmp.clone(),
        })
    }

    /// Structured comparisons hash their full predicate; opaque closure
    /// filters fall back to the name-and-config digest (the closure's
    /// body is unobservable).
    fn fingerprint(&self) -> OpFingerprint {
        let mut h = spec_fingerprinter(self);
        match &self.cmp {
            Some(cmp) => {
                h.write_str("cmp");
                h.write_str(&cmp.column);
                h.write_str(&format!("{:?}", cmp.op));
                fingerprint_value(&mut h, &cmp.literal);
            }
            None => h.write_str("closure"),
        }
        h.finish()
    }
}

/// Keep only the named columns.
pub struct ProjectOp {
    name: String,
    columns: Vec<String>,
    cost: CostProfile,
    language: Language,
}

impl ProjectOp {
    /// Project to `columns`, in the given order.
    pub fn new(name: impl Into<String>, columns: &[&str]) -> Self {
        ProjectOp {
            name: name.into(),
            columns: columns.iter().map(|s| (*s).to_owned()).collect(),
            cost: CostProfile::per_tuple_micros(1),
            language: Language::Python,
        }
    }

    /// Override the cost profile.
    pub fn with_cost(mut self, cost: CostProfile) -> Self {
        self.cost = cost;
        self
    }

    /// Override the implementation language.
    pub fn with_language(mut self, language: Language) -> Self {
        self.language = language;
        self
    }
}

struct ProjectInstance {
    name: String,
    indices: Option<Vec<usize>>,
    columns: Vec<String>,
    out_schema: Option<SchemaRef>,
}

impl Operator for ProjectInstance {
    fn on_tuple(
        &mut self,
        tuple: Tuple,
        _port: usize,
        out: &mut OutputCollector,
    ) -> WorkflowResult<()> {
        if self.indices.is_none() {
            let mut idx = Vec::with_capacity(self.columns.len());
            for c in &self.columns {
                idx.push(
                    tuple
                        .schema()
                        .index_of(c)
                        .map_err(|e| WorkflowError::from_data(&self.name, e))?,
                );
            }
            let projected = tuple
                .schema()
                .project(&self.columns.iter().map(String::as_str).collect::<Vec<_>>())
                .map_err(|e| WorkflowError::from_data(&self.name, e))?;
            self.indices = Some(idx);
            self.out_schema = Some(Arc::new(projected));
        }
        let indices = self.indices.as_ref().expect("initialized above");
        let schema = self.out_schema.clone().expect("initialized above");
        let values = indices.iter().map(|&i| tuple.at(i).clone()).collect();
        out.emit(Tuple::new_unchecked(schema, values));
        Ok(())
    }
}

impl OperatorFactory for ProjectOp {
    fn name(&self) -> &str {
        &self.name
    }
    fn input_ports(&self) -> usize {
        1
    }
    fn output_schema(&self, inputs: &[SchemaRef]) -> WorkflowResult<Schema> {
        let cols: Vec<&str> = self.columns.iter().map(String::as_str).collect();
        inputs[0]
            .project(&cols)
            .map_err(|e| WorkflowError::SchemaError {
                operator: self.name.clone(),
                error: e,
            })
    }
    fn language(&self) -> Language {
        self.language
    }
    fn cost(&self) -> CostProfile {
        self.cost.clone()
    }
    fn create(&self) -> Box<dyn Operator> {
        Box::new(ProjectInstance {
            name: self.name.clone(),
            indices: None,
            columns: self.columns.clone(),
            out_schema: None,
        })
    }

    fn fingerprint(&self) -> OpFingerprint {
        let mut h = spec_fingerprinter(self);
        h.write_usize(self.columns.len());
        for c in &self.columns {
            h.write_str(c);
        }
        h.finish()
    }
}

/// Pass at most `n` tuples (per workflow — use parallelism 1).
pub struct LimitOp {
    name: String,
    n: usize,
}

impl LimitOp {
    /// Limit to `n` tuples.
    pub fn new(name: impl Into<String>, n: usize) -> Self {
        LimitOp {
            name: name.into(),
            n,
        }
    }
}

struct LimitInstance {
    remaining: usize,
}

impl Operator for LimitInstance {
    fn on_tuple(
        &mut self,
        tuple: Tuple,
        _port: usize,
        out: &mut OutputCollector,
    ) -> WorkflowResult<()> {
        if self.remaining > 0 {
            self.remaining -= 1;
            out.emit(tuple);
        }
        Ok(())
    }
}

impl OperatorFactory for LimitOp {
    fn name(&self) -> &str {
        &self.name
    }
    fn input_ports(&self) -> usize {
        1
    }
    fn output_schema(&self, inputs: &[SchemaRef]) -> WorkflowResult<Schema> {
        Ok((*inputs[0]).clone())
    }
    fn create(&self) -> Box<dyn Operator> {
        Box::new(LimitInstance { remaining: self.n })
    }

    fn fingerprint(&self) -> OpFingerprint {
        let mut h = spec_fingerprinter(self);
        h.write_usize(self.n);
        h.finish()
    }
}

/// Drop duplicate tuples, keyed by the named columns (or the whole tuple's
/// display form when keyed columns are unhashable).
pub struct DistinctOp {
    name: String,
    columns: Vec<String>,
}

impl DistinctOp {
    /// Distinct on `columns`. Use with hash partitioning on the same
    /// columns when parallelism > 1.
    pub fn new(name: impl Into<String>, columns: &[&str]) -> Self {
        DistinctOp {
            name: name.into(),
            columns: columns.iter().map(|s| (*s).to_owned()).collect(),
        }
    }
}

struct DistinctInstance {
    name: String,
    columns: Vec<String>,
    seen: HashSet<HashKey>,
}

impl Operator for DistinctInstance {
    fn on_tuple(
        &mut self,
        tuple: Tuple,
        _port: usize,
        out: &mut OutputCollector,
    ) -> WorkflowResult<()> {
        let cols: Vec<&str> = self.columns.iter().map(String::as_str).collect();
        let key = HashKey::from_tuple(&tuple, &cols)
            .map_err(|e| WorkflowError::from_data(&self.name, e))?;
        if self.seen.insert(key) {
            out.emit(tuple);
        }
        Ok(())
    }
}

impl OperatorFactory for DistinctOp {
    fn name(&self) -> &str {
        &self.name
    }
    fn input_ports(&self) -> usize {
        1
    }
    fn output_schema(&self, inputs: &[SchemaRef]) -> WorkflowResult<Schema> {
        // Validate the key columns exist.
        for c in &self.columns {
            inputs[0]
                .index_of(c)
                .map_err(|e| WorkflowError::SchemaError {
                    operator: self.name.clone(),
                    error: e,
                })?;
        }
        Ok((*inputs[0]).clone())
    }
    fn create(&self) -> Box<dyn Operator> {
        Box::new(DistinctInstance {
            name: self.name.clone(),
            columns: self.columns.clone(),
            seen: HashSet::new(),
        })
    }

    fn fingerprint(&self) -> OpFingerprint {
        let mut h = spec_fingerprinter(self);
        h.write_usize(self.columns.len());
        for c in &self.columns {
            h.write_str(c);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scriptflow_datakit::{DataType, Value};

    fn tuple(id: i64) -> Tuple {
        Tuple::new(Schema::of(&[("id", DataType::Int)]), vec![Value::Int(id)]).unwrap()
    }

    #[test]
    fn filter_keeps_matching() {
        let f = FilterOp::new("f", |t| Ok(t.get_int("id")? > 2));
        let mut inst = f.create();
        let mut out = OutputCollector::new();
        for i in 0..5 {
            inst.on_tuple(tuple(i), 0, &mut out).unwrap();
        }
        let kept = out.take();
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].get_int("id").unwrap(), 3);
    }

    fn columnar(ids: &[i64]) -> ColumnarBatch {
        ColumnarBatch::from_rows(
            Schema::of(&[("id", DataType::Int)]),
            ids.iter().map(|&i| vec![Value::Int(i)]).collect(),
        )
        .unwrap()
    }

    #[test]
    fn cmp_filter_skips_excluded_batches() {
        let f = FilterOp::cmp("f", "id", CmpOp::Gt, Value::Int(100));
        let mut inst = f.create();
        let mut out = OutputCollector::new();
        // ids in [0, 9]: the zone map excludes `> 100` outright.
        inst.on_batch(&columnar(&(0..10).collect::<Vec<_>>()), 0, &mut out)
            .unwrap();
        assert!(out.is_empty());
        assert_eq!(out.batches_skipped(), 1);
        // ids in [90, 110]: straddles the literal, runs the typed loop.
        inst.on_batch(&columnar(&(90..=110).collect::<Vec<_>>()), 0, &mut out)
            .unwrap();
        assert_eq!(out.len(), 10);
        assert_eq!(out.batches_skipped(), 1, "straddling batch is not a skip");
        // ids in [101, 105]: the range satisfies, whole batch passes.
        inst.on_batch(&columnar(&(101..=105).collect::<Vec<_>>()), 0, &mut out)
            .unwrap();
        assert_eq!(out.len(), 15);
        assert_eq!(out.take_batches_skipped(), 1);
        assert_eq!(out.batches_skipped(), 0);
    }

    #[test]
    fn cmp_filter_row_and_columnar_paths_agree() {
        for op in [
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
            CmpOp::Eq,
            CmpOp::Ne,
        ] {
            let f = FilterOp::cmp("f", "id", op, Value::Int(5));
            let batch = columnar(&[1, 5, 9, 5, 3]);
            let mut by_row = OutputCollector::new();
            let mut by_col = OutputCollector::new();
            let mut inst = f.create();
            for t in batch.to_tuples() {
                inst.on_tuple(t, 0, &mut by_row).unwrap();
            }
            let mut inst2 = f.create();
            inst2.on_batch(&batch, 0, &mut by_col).unwrap();
            assert_eq!(by_row.take(), by_col.take(), "{op:?}");
        }
    }

    #[test]
    fn cmp_filter_validates_column_at_schema_time() {
        let f = FilterOp::cmp("f", "nope", CmpOp::Eq, Value::Int(1));
        assert!(f
            .output_schema(&[Schema::of(&[("id", DataType::Int)])])
            .is_err());
    }

    #[test]
    fn closure_filter_columnar_batch_falls_back_to_rows() {
        let f = FilterOp::new("f", |t| Ok(t.get_int("id")? % 2 == 0));
        let mut inst = f.create();
        let mut out = OutputCollector::new();
        inst.on_batch(&columnar(&[1, 2, 3, 4]), 0, &mut out)
            .unwrap();
        let kept = out.take();
        assert_eq!(kept.len(), 2);
        assert_eq!(out.batches_skipped(), 0);
    }

    #[test]
    fn filter_propagates_predicate_error() {
        let f = FilterOp::new("f", |t| Ok(t.get_int("missing")? > 0));
        let mut inst = f.create();
        let mut out = OutputCollector::new();
        let err = inst.on_tuple(tuple(1), 0, &mut out).unwrap_err();
        assert!(err.to_string().contains("`f`"));
    }

    #[test]
    fn fingerprints_track_every_parameter() {
        // Filter: column, comparison op, and literal each matter.
        let base = FilterOp::cmp("f", "id", CmpOp::Gt, Value::Int(5));
        assert_eq!(
            base.fingerprint(),
            FilterOp::cmp("f", "id", CmpOp::Gt, Value::Int(5)).fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            FilterOp::cmp("f", "other", CmpOp::Gt, Value::Int(5)).fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            FilterOp::cmp("f", "id", CmpOp::Ge, Value::Int(5)).fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            FilterOp::cmp("f", "id", CmpOp::Gt, Value::Int(6)).fingerprint()
        );
        // Closure filters hash distinctly from structured ones.
        assert_ne!(
            base.fingerprint(),
            FilterOp::new("f", |_| Ok(true)).fingerprint()
        );
        // Project and distinct are keyed by their column lists.
        assert_ne!(
            ProjectOp::new("p", &["a", "b"]).fingerprint(),
            ProjectOp::new("p", &["b", "a"]).fingerprint()
        );
        assert_ne!(
            DistinctOp::new("d", &["a"]).fingerprint(),
            DistinctOp::new("d", &["a", "b"]).fingerprint()
        );
        // Limit is keyed by n.
        assert_ne!(
            LimitOp::new("l", 2).fingerprint(),
            LimitOp::new("l", 3).fingerprint()
        );
    }

    #[test]
    fn project_reorders() {
        let schema = Schema::of(&[("a", DataType::Int), ("b", DataType::Str)]);
        let p = ProjectOp::new("p", &["b", "a"]);
        let out_schema = p.output_schema(std::slice::from_ref(&schema)).unwrap();
        assert_eq!(out_schema.to_string(), "b: Str, a: Int");
        let mut inst = p.create();
        let mut out = OutputCollector::new();
        let t = Tuple::new(schema, vec![Value::Int(1), Value::Str("x".into())]).unwrap();
        inst.on_tuple(t, 0, &mut out).unwrap();
        let got = out.take();
        assert_eq!(got[0].get_str("b").unwrap(), "x");
        assert_eq!(got[0].values()[1], Value::Int(1));
    }

    #[test]
    fn project_unknown_column_fails_at_schema_time() {
        let schema = Schema::of(&[("a", DataType::Int)]);
        let p = ProjectOp::new("p", &["zzz"]);
        assert!(p.output_schema(&[schema]).is_err());
    }

    #[test]
    fn limit_truncates() {
        let l = LimitOp::new("l", 2);
        let mut inst = l.create();
        let mut out = OutputCollector::new();
        for i in 0..5 {
            inst.on_tuple(tuple(i), 0, &mut out).unwrap();
        }
        assert_eq!(out.take().len(), 2);
    }

    #[test]
    fn distinct_dedups() {
        let d = DistinctOp::new("d", &["id"]);
        let mut inst = d.create();
        let mut out = OutputCollector::new();
        for id in [1, 2, 1, 3, 2, 1] {
            inst.on_tuple(tuple(id), 0, &mut out).unwrap();
        }
        assert_eq!(out.take().len(), 3);
    }

    #[test]
    fn distinct_validates_columns() {
        let d = DistinctOp::new("d", &["nope"]);
        assert!(d
            .output_schema(&[Schema::of(&[("id", DataType::Int)])])
            .is_err());
    }
}
