//! Simple relational operators: filter, project, limit, distinct.

use std::collections::HashSet;
use std::sync::Arc;

use scriptflow_datakit::{DataResult, HashKey, Schema, SchemaRef, Tuple};
use scriptflow_simcluster::Language;

use crate::cost::CostProfile;
use crate::operator::{Operator, OperatorFactory, OutputCollector, WorkflowError, WorkflowResult};

type Predicate = Arc<dyn Fn(&Tuple) -> DataResult<bool> + Send + Sync>;

/// Keep tuples matching a predicate.
pub struct FilterOp {
    name: String,
    predicate: Predicate,
    cost: CostProfile,
    language: Language,
}

impl FilterOp {
    /// A filter with the given predicate.
    pub fn new(
        name: impl Into<String>,
        predicate: impl Fn(&Tuple) -> DataResult<bool> + Send + Sync + 'static,
    ) -> Self {
        FilterOp {
            name: name.into(),
            predicate: Arc::new(predicate),
            cost: CostProfile::default(),
            language: Language::Python,
        }
    }

    /// Override the cost profile.
    pub fn with_cost(mut self, cost: CostProfile) -> Self {
        self.cost = cost;
        self
    }

    /// Override the implementation language.
    pub fn with_language(mut self, language: Language) -> Self {
        self.language = language;
        self
    }
}

struct FilterInstance {
    name: String,
    predicate: Predicate,
}

impl Operator for FilterInstance {
    fn on_tuple(
        &mut self,
        tuple: Tuple,
        _port: usize,
        out: &mut OutputCollector,
    ) -> WorkflowResult<()> {
        let keep = (self.predicate)(&tuple).map_err(|e| WorkflowError::from_data(&self.name, e))?;
        if keep {
            out.emit(tuple);
        }
        Ok(())
    }
}

impl OperatorFactory for FilterOp {
    fn name(&self) -> &str {
        &self.name
    }
    fn input_ports(&self) -> usize {
        1
    }
    fn output_schema(&self, inputs: &[SchemaRef]) -> WorkflowResult<Schema> {
        Ok((*inputs[0]).clone())
    }
    fn language(&self) -> Language {
        self.language
    }
    fn cost(&self) -> CostProfile {
        self.cost.clone()
    }
    fn create(&self) -> Box<dyn Operator> {
        Box::new(FilterInstance {
            name: self.name.clone(),
            predicate: self.predicate.clone(),
        })
    }
}

/// Keep only the named columns.
pub struct ProjectOp {
    name: String,
    columns: Vec<String>,
    cost: CostProfile,
    language: Language,
}

impl ProjectOp {
    /// Project to `columns`, in the given order.
    pub fn new(name: impl Into<String>, columns: &[&str]) -> Self {
        ProjectOp {
            name: name.into(),
            columns: columns.iter().map(|s| (*s).to_owned()).collect(),
            cost: CostProfile::per_tuple_micros(1),
            language: Language::Python,
        }
    }

    /// Override the cost profile.
    pub fn with_cost(mut self, cost: CostProfile) -> Self {
        self.cost = cost;
        self
    }

    /// Override the implementation language.
    pub fn with_language(mut self, language: Language) -> Self {
        self.language = language;
        self
    }
}

struct ProjectInstance {
    name: String,
    indices: Option<Vec<usize>>,
    columns: Vec<String>,
    out_schema: Option<SchemaRef>,
}

impl Operator for ProjectInstance {
    fn on_tuple(
        &mut self,
        tuple: Tuple,
        _port: usize,
        out: &mut OutputCollector,
    ) -> WorkflowResult<()> {
        if self.indices.is_none() {
            let mut idx = Vec::with_capacity(self.columns.len());
            for c in &self.columns {
                idx.push(
                    tuple
                        .schema()
                        .index_of(c)
                        .map_err(|e| WorkflowError::from_data(&self.name, e))?,
                );
            }
            let projected = tuple
                .schema()
                .project(&self.columns.iter().map(String::as_str).collect::<Vec<_>>())
                .map_err(|e| WorkflowError::from_data(&self.name, e))?;
            self.indices = Some(idx);
            self.out_schema = Some(Arc::new(projected));
        }
        let indices = self.indices.as_ref().expect("initialized above");
        let schema = self.out_schema.clone().expect("initialized above");
        let values = indices.iter().map(|&i| tuple.at(i).clone()).collect();
        out.emit(Tuple::new_unchecked(schema, values));
        Ok(())
    }
}

impl OperatorFactory for ProjectOp {
    fn name(&self) -> &str {
        &self.name
    }
    fn input_ports(&self) -> usize {
        1
    }
    fn output_schema(&self, inputs: &[SchemaRef]) -> WorkflowResult<Schema> {
        let cols: Vec<&str> = self.columns.iter().map(String::as_str).collect();
        inputs[0]
            .project(&cols)
            .map_err(|e| WorkflowError::SchemaError {
                operator: self.name.clone(),
                error: e,
            })
    }
    fn language(&self) -> Language {
        self.language
    }
    fn cost(&self) -> CostProfile {
        self.cost.clone()
    }
    fn create(&self) -> Box<dyn Operator> {
        Box::new(ProjectInstance {
            name: self.name.clone(),
            indices: None,
            columns: self.columns.clone(),
            out_schema: None,
        })
    }
}

/// Pass at most `n` tuples (per workflow — use parallelism 1).
pub struct LimitOp {
    name: String,
    n: usize,
}

impl LimitOp {
    /// Limit to `n` tuples.
    pub fn new(name: impl Into<String>, n: usize) -> Self {
        LimitOp {
            name: name.into(),
            n,
        }
    }
}

struct LimitInstance {
    remaining: usize,
}

impl Operator for LimitInstance {
    fn on_tuple(
        &mut self,
        tuple: Tuple,
        _port: usize,
        out: &mut OutputCollector,
    ) -> WorkflowResult<()> {
        if self.remaining > 0 {
            self.remaining -= 1;
            out.emit(tuple);
        }
        Ok(())
    }
}

impl OperatorFactory for LimitOp {
    fn name(&self) -> &str {
        &self.name
    }
    fn input_ports(&self) -> usize {
        1
    }
    fn output_schema(&self, inputs: &[SchemaRef]) -> WorkflowResult<Schema> {
        Ok((*inputs[0]).clone())
    }
    fn create(&self) -> Box<dyn Operator> {
        Box::new(LimitInstance { remaining: self.n })
    }
}

/// Drop duplicate tuples, keyed by the named columns (or the whole tuple's
/// display form when keyed columns are unhashable).
pub struct DistinctOp {
    name: String,
    columns: Vec<String>,
}

impl DistinctOp {
    /// Distinct on `columns`. Use with hash partitioning on the same
    /// columns when parallelism > 1.
    pub fn new(name: impl Into<String>, columns: &[&str]) -> Self {
        DistinctOp {
            name: name.into(),
            columns: columns.iter().map(|s| (*s).to_owned()).collect(),
        }
    }
}

struct DistinctInstance {
    name: String,
    columns: Vec<String>,
    seen: HashSet<HashKey>,
}

impl Operator for DistinctInstance {
    fn on_tuple(
        &mut self,
        tuple: Tuple,
        _port: usize,
        out: &mut OutputCollector,
    ) -> WorkflowResult<()> {
        let cols: Vec<&str> = self.columns.iter().map(String::as_str).collect();
        let key = HashKey::from_tuple(&tuple, &cols)
            .map_err(|e| WorkflowError::from_data(&self.name, e))?;
        if self.seen.insert(key) {
            out.emit(tuple);
        }
        Ok(())
    }
}

impl OperatorFactory for DistinctOp {
    fn name(&self) -> &str {
        &self.name
    }
    fn input_ports(&self) -> usize {
        1
    }
    fn output_schema(&self, inputs: &[SchemaRef]) -> WorkflowResult<Schema> {
        // Validate the key columns exist.
        for c in &self.columns {
            inputs[0]
                .index_of(c)
                .map_err(|e| WorkflowError::SchemaError {
                    operator: self.name.clone(),
                    error: e,
                })?;
        }
        Ok((*inputs[0]).clone())
    }
    fn create(&self) -> Box<dyn Operator> {
        Box::new(DistinctInstance {
            name: self.name.clone(),
            columns: self.columns.clone(),
            seen: HashSet::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scriptflow_datakit::{DataType, Value};

    fn tuple(id: i64) -> Tuple {
        Tuple::new(Schema::of(&[("id", DataType::Int)]), vec![Value::Int(id)]).unwrap()
    }

    #[test]
    fn filter_keeps_matching() {
        let f = FilterOp::new("f", |t| Ok(t.get_int("id")? > 2));
        let mut inst = f.create();
        let mut out = OutputCollector::new();
        for i in 0..5 {
            inst.on_tuple(tuple(i), 0, &mut out).unwrap();
        }
        let kept = out.take();
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].get_int("id").unwrap(), 3);
    }

    #[test]
    fn filter_propagates_predicate_error() {
        let f = FilterOp::new("f", |t| Ok(t.get_int("missing")? > 0));
        let mut inst = f.create();
        let mut out = OutputCollector::new();
        let err = inst.on_tuple(tuple(1), 0, &mut out).unwrap_err();
        assert!(err.to_string().contains("`f`"));
    }

    #[test]
    fn project_reorders() {
        let schema = Schema::of(&[("a", DataType::Int), ("b", DataType::Str)]);
        let p = ProjectOp::new("p", &["b", "a"]);
        let out_schema = p.output_schema(std::slice::from_ref(&schema)).unwrap();
        assert_eq!(out_schema.to_string(), "b: Str, a: Int");
        let mut inst = p.create();
        let mut out = OutputCollector::new();
        let t = Tuple::new(schema, vec![Value::Int(1), Value::Str("x".into())]).unwrap();
        inst.on_tuple(t, 0, &mut out).unwrap();
        let got = out.take();
        assert_eq!(got[0].get_str("b").unwrap(), "x");
        assert_eq!(got[0].values()[1], Value::Int(1));
    }

    #[test]
    fn project_unknown_column_fails_at_schema_time() {
        let schema = Schema::of(&[("a", DataType::Int)]);
        let p = ProjectOp::new("p", &["zzz"]);
        assert!(p.output_schema(&[schema]).is_err());
    }

    #[test]
    fn limit_truncates() {
        let l = LimitOp::new("l", 2);
        let mut inst = l.create();
        let mut out = OutputCollector::new();
        for i in 0..5 {
            inst.on_tuple(tuple(i), 0, &mut out).unwrap();
        }
        assert_eq!(out.take().len(), 2);
    }

    #[test]
    fn distinct_dedups() {
        let d = DistinctOp::new("d", &["id"]);
        let mut inst = d.create();
        let mut out = OutputCollector::new();
        for id in [1, 2, 1, 3, 2, 1] {
            inst.on_tuple(tuple(id), 0, &mut out).unwrap();
        }
        assert_eq!(out.take().len(), 3);
    }

    #[test]
    fn distinct_validates_columns() {
        let d = DistinctOp::new("d", &["nope"]);
        assert!(d
            .output_schema(&[Schema::of(&[("id", DataType::Int)])])
            .is_err());
    }
}
