//! Source operator: emits a pre-materialized batch.

use scriptflow_core::fingerprint::OpFingerprint;
use scriptflow_datakit::{Batch, Schema, SchemaRef, Tuple};
use scriptflow_simcluster::Language;

use crate::cost::CostProfile;
use crate::operator::{
    fingerprint_tuple, spec_fingerprinter, Operator, OperatorFactory, OutputCollector,
    WorkflowError, WorkflowResult,
};

/// A source operator producing the tuples of a batch.
///
/// With parallelism *k*, the batch is round-robin split across the *k*
/// source workers, which then feed the pipeline concurrently (Texera's
/// parallel scan).
pub struct ScanOp {
    name: String,
    batch: Batch,
    cost: CostProfile,
    language: Language,
}

impl ScanOp {
    /// A scan over `batch`.
    pub fn new(name: impl Into<String>, batch: Batch) -> Self {
        ScanOp {
            name: name.into(),
            batch,
            // Reading + parsing a record is pricier than probing a hash
            // table; default to 4 µs per tuple.
            cost: CostProfile::per_tuple_micros(4),
            language: Language::Python,
        }
    }

    /// Override the cost profile.
    pub fn with_cost(mut self, cost: CostProfile) -> Self {
        self.cost = cost;
        self
    }

    /// Override the implementation language.
    pub fn with_language(mut self, language: Language) -> Self {
        self.language = language;
        self
    }

    /// Number of tuples this scan produces.
    pub fn len(&self) -> usize {
        self.batch.len()
    }

    /// True if the scan produces nothing.
    pub fn is_empty(&self) -> bool {
        self.batch.is_empty()
    }
}

/// Sources never receive tuples; the executor pulls their data through
/// [`OperatorFactory::source_partitions`] instead.
struct ScanInstance;

impl Operator for ScanInstance {
    fn on_tuple(
        &mut self,
        _tuple: Tuple,
        _port: usize,
        _out: &mut OutputCollector,
    ) -> WorkflowResult<()> {
        Err(WorkflowError::OperatorFailed {
            operator: "<scan>".into(),
            message: "source operators do not accept input".into(),
        })
    }
}

impl OperatorFactory for ScanOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn input_ports(&self) -> usize {
        0
    }

    fn output_schema(&self, inputs: &[SchemaRef]) -> WorkflowResult<Schema> {
        debug_assert!(inputs.is_empty());
        Ok((**self.batch.schema()).clone())
    }

    fn language(&self) -> Language {
        self.language
    }

    fn cost(&self) -> CostProfile {
        self.cost.clone()
    }

    fn create(&self) -> Box<dyn Operator> {
        Box::new(ScanInstance)
    }

    fn source_partitions(&self, workers: usize) -> Option<Vec<Vec<Tuple>>> {
        let mut parts: Vec<Vec<Tuple>> = (0..workers.max(1)).map(|_| Vec::new()).collect();
        for (i, t) in self.batch.tuples().iter().enumerate() {
            parts[i % workers.max(1)].push(t.clone());
        }
        Some(parts)
    }

    /// A scan is content-addressed by its actual data: schema plus every
    /// row, so editing the input invalidates the whole downstream cone.
    fn fingerprint(&self) -> OpFingerprint {
        let mut h = spec_fingerprinter(self);
        h.write_str(&self.batch.schema().to_string());
        h.write_usize(self.batch.len());
        for t in self.batch.tuples() {
            fingerprint_tuple(&mut h, t);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scriptflow_datakit::{DataType, Value};

    fn scan(n: i64) -> ScanOp {
        let schema = Schema::of(&[("id", DataType::Int)]);
        let rows = (0..n).map(|i| vec![Value::Int(i)]).collect();
        ScanOp::new("scan", Batch::from_rows(schema, rows).unwrap())
    }

    #[test]
    fn partitions_cover_all_tuples() {
        let s = scan(10);
        let parts = s.source_partitions(3).unwrap();
        assert_eq!(parts.len(), 3);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, 10);
        // Round-robin: first partition gets ceil(10/3) = 4.
        assert_eq!(parts[0].len(), 4);
        assert_eq!(parts[1].len(), 3);
    }

    #[test]
    fn schema_comes_from_batch() {
        let s = scan(1);
        assert_eq!(s.output_schema(&[]).unwrap().to_string(), "id: Int");
        assert_eq!(s.input_ports(), 0);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn fingerprint_follows_content() {
        use crate::operator::OperatorFactory;
        assert_eq!(scan(5).fingerprint(), scan(5).fingerprint());
        assert_ne!(scan(5).fingerprint(), scan(6).fingerprint());
        assert_ne!(
            scan(5).fingerprint(),
            scan(5).with_language(Language::Scala).fingerprint()
        );
        assert_ne!(
            scan(5).fingerprint(),
            scan(5)
                .with_cost(CostProfile::per_tuple_micros(9))
                .fingerprint()
        );
    }

    #[test]
    fn instance_rejects_input() {
        let s = scan(1);
        let mut inst = s.create();
        let t = s.source_partitions(1).unwrap()[0][0].clone();
        let mut out = OutputCollector::new();
        assert!(inst.on_tuple(t, 0, &mut out).is_err());
    }
}
