//! Sink operator: collects workflow results.

use std::sync::Arc;

use parking_lot::Mutex;
use scriptflow_datakit::{Schema, SchemaRef, Tuple};

use crate::cost::CostProfile;
use crate::operator::{Operator, OperatorFactory, OutputCollector, WorkflowResult};

/// Terminal operator gathering result tuples (Texera's "View Results").
///
/// The factory owns shared storage; every worker instance appends into
/// it, so results survive the executor and are retrievable afterwards via
/// [`SinkOp::results`]. A `parking_lot` mutex keeps this safe for the
/// live multi-threaded executor; the simulated executor is single-
/// threaded and pays no contention.
pub struct SinkOp {
    name: String,
    results: Arc<Mutex<Vec<Tuple>>>,
}

impl SinkOp {
    /// A new sink.
    pub fn new(name: impl Into<String>) -> Self {
        SinkOp {
            name: name.into(),
            results: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Handle to the collected results (shared with all instances).
    pub fn handle(&self) -> SinkHandle {
        SinkHandle {
            results: self.results.clone(),
        }
    }

    /// Snapshot of the tuples collected so far.
    pub fn results(&self) -> Vec<Tuple> {
        self.results.lock().clone()
    }
}

/// Cloneable handle to a sink's collected results.
#[derive(Clone)]
pub struct SinkHandle {
    results: Arc<Mutex<Vec<Tuple>>>,
}

impl SinkHandle {
    /// Snapshot of the tuples collected so far.
    pub fn results(&self) -> Vec<Tuple> {
        self.results.lock().clone()
    }

    /// Number of tuples collected so far.
    pub fn len(&self) -> usize {
        self.results.lock().len()
    }

    /// True if nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.results.lock().is_empty()
    }

    /// Clear collected tuples (for re-running a workflow object).
    pub fn clear(&self) {
        self.results.lock().clear();
    }
}

struct SinkInstance {
    results: Arc<Mutex<Vec<Tuple>>>,
}

impl Operator for SinkInstance {
    fn on_tuple(
        &mut self,
        tuple: Tuple,
        _port: usize,
        _out: &mut OutputCollector,
    ) -> WorkflowResult<()> {
        self.results.lock().push(tuple);
        Ok(())
    }
}

impl OperatorFactory for SinkOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn input_ports(&self) -> usize {
        1
    }

    fn output_schema(&self, inputs: &[SchemaRef]) -> WorkflowResult<Schema> {
        Ok((*inputs[0]).clone())
    }

    fn cost(&self) -> CostProfile {
        // Appending a row to the results view is ~free.
        CostProfile::per_tuple_micros(1)
    }

    fn create(&self) -> Box<dyn Operator> {
        Box::new(SinkInstance {
            results: self.results.clone(),
        })
    }

    /// The result buffer is shared across instances *and* across clones
    /// of the workflow holding this factory: its address is the identity
    /// the service uses to serialize runs that would interleave rows.
    fn shared_state_id(&self) -> Option<usize> {
        Some(Arc::as_ptr(&self.results) as usize)
    }

    /// Re-assert the "sink cleared per run" invariant before a dispatch.
    fn reset_shared_state(&self) {
        self.results.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scriptflow_datakit::{DataType, Value};

    #[test]
    fn instances_share_result_storage() {
        let sink = SinkOp::new("sink");
        let handle = sink.handle();
        let schema = Schema::of(&[("x", DataType::Int)]);
        let mut a = sink.create();
        let mut b = sink.create();
        let mut out = OutputCollector::new();
        a.on_tuple(
            Tuple::new(schema.clone(), vec![Value::Int(1)]).unwrap(),
            0,
            &mut out,
        )
        .unwrap();
        b.on_tuple(
            Tuple::new(schema, vec![Value::Int(2)]).unwrap(),
            0,
            &mut out,
        )
        .unwrap();
        assert_eq!(handle.len(), 2);
        assert_eq!(sink.results().len(), 2);
        handle.clear();
        assert!(handle.is_empty());
    }

    #[test]
    fn shared_state_identity_and_reset() {
        let sink = SinkOp::new("sink");
        let other = SinkOp::new("other");
        // Identity follows the shared buffer, not the factory value.
        assert_eq!(sink.shared_state_id(), sink.shared_state_id());
        assert_ne!(sink.shared_state_id(), other.shared_state_id());
        assert!(sink.shared_state_id().is_some());

        let schema = Schema::of(&[("x", DataType::Int)]);
        let mut w = sink.create();
        let mut out = OutputCollector::new();
        w.on_tuple(
            Tuple::new(schema, vec![Value::Int(7)]).unwrap(),
            0,
            &mut out,
        )
        .unwrap();
        assert_eq!(sink.results().len(), 1);
        sink.reset_shared_state();
        assert!(sink.results().is_empty());
    }
}
