//! Sort operator (blocking).

use std::cmp::Ordering;

use scriptflow_datakit::{Schema, SchemaRef, Tuple, Value};
use scriptflow_simcluster::Language;

use crate::cost::CostProfile;
use crate::operator::{Operator, OperatorFactory, OutputCollector, WorkflowError, WorkflowResult};

/// Sort direction for one key column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Smallest first.
    Ascending,
    /// Largest first.
    Descending,
}

/// Blocking sort on one or more key columns.
///
/// Use parallelism 1 (or partition so that per-worker order is
/// sufficient): each worker sorts only the tuples it receives.
pub struct SortOp {
    name: String,
    keys: Vec<(String, SortOrder)>,
    cost: CostProfile,
    language: Language,
}

impl SortOp {
    /// Sort by `keys`, applied in order.
    pub fn new(name: impl Into<String>, keys: &[(&str, SortOrder)]) -> Self {
        assert!(!keys.is_empty(), "sort needs at least one key");
        SortOp {
            name: name.into(),
            keys: keys.iter().map(|(c, o)| ((*c).to_owned(), *o)).collect(),
            cost: CostProfile::per_tuple_micros(3),
            language: Language::Python,
        }
    }

    /// Override the cost profile.
    pub fn with_cost(mut self, cost: CostProfile) -> Self {
        self.cost = cost;
        self
    }

    /// Override the implementation language.
    pub fn with_language(mut self, language: Language) -> Self {
        self.language = language;
        self
    }
}

fn compare_values(a: &Value, b: &Value) -> Ordering {
    use Value::*;
    match (a, b) {
        (Null, Null) => Ordering::Equal,
        (Null, _) => Ordering::Less,
        (_, Null) => Ordering::Greater,
        (Bool(x), Bool(y)) => x.cmp(y),
        (Int(x), Int(y)) => x.cmp(y),
        (Float(x), Float(y)) => x.partial_cmp(y).unwrap_or(Ordering::Equal),
        (Int(x), Float(y)) => (*x as f64).partial_cmp(y).unwrap_or(Ordering::Equal),
        (Float(x), Int(y)) => x.partial_cmp(&(*y as f64)).unwrap_or(Ordering::Equal),
        (Str(x), Str(y)) => x.cmp(y),
        // Mixed/unordered types: stable but arbitrary (by type tag).
        _ => format!("{a}").cmp(&format!("{b}")),
    }
}

struct SortInstance {
    name: String,
    keys: Vec<(String, SortOrder)>,
    buffer: Vec<Tuple>,
}

impl Operator for SortInstance {
    fn on_tuple(
        &mut self,
        tuple: Tuple,
        _port: usize,
        _out: &mut OutputCollector,
    ) -> WorkflowResult<()> {
        // Validate key columns exist up front (operator-level error).
        for (k, _) in &self.keys {
            tuple
                .get(k)
                .map_err(|e| WorkflowError::from_data(&self.name, e))?;
        }
        self.buffer.push(tuple);
        Ok(())
    }

    fn on_port_complete(&mut self, _port: usize, out: &mut OutputCollector) -> WorkflowResult<()> {
        let keys = self.keys.clone();
        self.buffer.sort_by(|a, b| {
            for (k, order) in &keys {
                let av = a.get(k).expect("validated on ingest");
                let bv = b.get(k).expect("validated on ingest");
                let mut ord = compare_values(av, bv);
                if *order == SortOrder::Descending {
                    ord = ord.reverse();
                }
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
        out.emit_all(self.buffer.drain(..));
        Ok(())
    }
}

impl OperatorFactory for SortOp {
    fn name(&self) -> &str {
        &self.name
    }
    fn input_ports(&self) -> usize {
        1
    }
    fn blocking_ports(&self) -> Vec<usize> {
        vec![0]
    }
    fn output_schema(&self, inputs: &[SchemaRef]) -> WorkflowResult<Schema> {
        for (k, _) in &self.keys {
            inputs[0]
                .index_of(k)
                .map_err(|e| WorkflowError::SchemaError {
                    operator: self.name.clone(),
                    error: e,
                })?;
        }
        Ok((*inputs[0]).clone())
    }
    fn language(&self) -> Language {
        self.language
    }
    fn cost(&self) -> CostProfile {
        self.cost.clone()
    }
    fn create(&self) -> Box<dyn Operator> {
        Box::new(SortInstance {
            name: self.name.clone(),
            keys: self.keys.clone(),
            buffer: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scriptflow_datakit::DataType;

    fn tuple(a: i64, b: &str) -> Tuple {
        Tuple::new(
            Schema::of(&[("a", DataType::Int), ("b", DataType::Str)]),
            vec![Value::Int(a), Value::Str(b.into())],
        )
        .unwrap()
    }

    fn run_sort(op: &SortOp, rows: Vec<Tuple>) -> Vec<Tuple> {
        let mut inst = op.create();
        let mut out = OutputCollector::new();
        for t in rows {
            inst.on_tuple(t, 0, &mut out).unwrap();
        }
        assert!(out.is_empty(), "sort must be blocking");
        inst.on_port_complete(0, &mut out).unwrap();
        out.take()
    }

    #[test]
    fn single_key_ascending() {
        let op = SortOp::new("s", &[("a", SortOrder::Ascending)]);
        let got = run_sort(&op, vec![tuple(3, "x"), tuple(1, "y"), tuple(2, "z")]);
        let keys: Vec<i64> = got.iter().map(|t| t.get_int("a").unwrap()).collect();
        assert_eq!(keys, vec![1, 2, 3]);
    }

    #[test]
    fn compound_keys_with_direction() {
        let op = SortOp::new(
            "s",
            &[("b", SortOrder::Ascending), ("a", SortOrder::Descending)],
        );
        let got = run_sort(
            &op,
            vec![tuple(1, "x"), tuple(3, "x"), tuple(2, "y"), tuple(9, "x")],
        );
        let pairs: Vec<(String, i64)> = got
            .iter()
            .map(|t| (t.get_str("b").unwrap().to_owned(), t.get_int("a").unwrap()))
            .collect();
        assert_eq!(
            pairs,
            vec![
                ("x".into(), 9),
                ("x".into(), 3),
                ("x".into(), 1),
                ("y".into(), 2)
            ]
        );
    }

    #[test]
    fn nulls_sort_first() {
        let schema = Schema::of(&[("a", DataType::Int), ("b", DataType::Str)]);
        let null_row = Tuple::new(schema, vec![Value::Null, Value::Str("n".into())]).unwrap();
        let op = SortOp::new("s", &[("a", SortOrder::Ascending)]);
        let got = run_sort(&op, vec![tuple(1, "x"), null_row]);
        assert!(got[0].get("a").unwrap().is_null());
    }

    #[test]
    fn missing_key_is_operator_error() {
        let op = SortOp::new("s", &[("zzz", SortOrder::Ascending)]);
        let mut inst = op.create();
        let mut out = OutputCollector::new();
        let err = inst.on_tuple(tuple(1, "x"), 0, &mut out).unwrap_err();
        assert!(err.to_string().contains("`s`"));
        // And the builder catches it at schema time too.
        assert!(op
            .output_schema(&[Schema::of(&[("a", DataType::Int)])])
            .is_err());
    }

    #[test]
    fn value_comparison_total_enough() {
        assert_eq!(
            compare_values(&Value::Int(2), &Value::Float(2.0)),
            Ordering::Equal
        );
        assert_eq!(
            compare_values(&Value::Float(1.5), &Value::Int(2)),
            Ordering::Less
        );
        assert_eq!(
            compare_values(&Value::Bool(false), &Value::Bool(true)),
            Ordering::Less
        );
    }
}
