//! Sort operator (blocking), with external-sort spilling under a memory
//! budget.

use std::cmp::Ordering;

use scriptflow_datakit::blockstore::Segment;
use scriptflow_datakit::{Schema, SchemaRef, Tuple, Value};
use scriptflow_simcluster::Language;

use scriptflow_core::fingerprint::OpFingerprint;

use crate::cost::CostProfile;
use crate::operator::{
    spec_fingerprinter, Operator, OperatorFactory, OutputCollector, WorkflowError, WorkflowResult,
};
use crate::spill::{seal_run, tuple_footprint};

/// Sort direction for one key column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Smallest first.
    Ascending,
    /// Largest first.
    Descending,
}

/// Blocking sort on one or more key columns.
///
/// Use parallelism 1 (or partition so that per-worker order is
/// sufficient): each worker sorts only the tuples it receives.
pub struct SortOp {
    name: String,
    keys: Vec<(String, SortOrder)>,
    cost: CostProfile,
    language: Language,
    memory_budget: Option<usize>,
}

impl SortOp {
    /// Sort by `keys`, applied in order.
    pub fn new(name: impl Into<String>, keys: &[(&str, SortOrder)]) -> Self {
        assert!(!keys.is_empty(), "sort needs at least one key");
        SortOp {
            name: name.into(),
            keys: keys.iter().map(|(c, o)| ((*c).to_owned(), *o)).collect(),
            cost: CostProfile::per_tuple_micros(3),
            language: Language::Python,
            memory_budget: None,
        }
    }

    /// Override the cost profile.
    pub fn with_cost(mut self, cost: CostProfile) -> Self {
        self.cost = cost;
        self
    }

    /// Override the implementation language.
    pub fn with_language(mut self, language: Language) -> Self {
        self.language = language;
        self
    }

    /// Per-operator memory budget override: once the sort buffer exceeds
    /// `bytes`, it is sorted and sealed to the block store as a run, and
    /// runs are k-way merged at completion. Takes precedence over the
    /// engine-level [`crate::EngineConfig::memory_budget`].
    pub fn with_memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes);
        self
    }
}

fn compare_values(a: &Value, b: &Value) -> Ordering {
    use Value::*;
    match (a, b) {
        (Null, Null) => Ordering::Equal,
        (Null, _) => Ordering::Less,
        (_, Null) => Ordering::Greater,
        (Bool(x), Bool(y)) => x.cmp(y),
        (Int(x), Int(y)) => x.cmp(y),
        (Float(x), Float(y)) => x.partial_cmp(y).unwrap_or(Ordering::Equal),
        (Int(x), Float(y)) => (*x as f64).partial_cmp(y).unwrap_or(Ordering::Equal),
        (Float(x), Int(y)) => x.partial_cmp(&(*y as f64)).unwrap_or(Ordering::Equal),
        (Str(x), Str(y)) => x.cmp(y),
        // Mixed/unordered types: stable but arbitrary (by type tag).
        _ => format!("{a}").cmp(&format!("{b}")),
    }
}

fn compare_by_keys(keys: &[(String, SortOrder)], a: &Tuple, b: &Tuple) -> Ordering {
    for (k, order) in keys {
        let av = a.get(k).expect("validated on ingest");
        let bv = b.get(k).expect("validated on ingest");
        let mut ord = compare_values(av, bv);
        if *order == SortOrder::Descending {
            ord = ord.reverse();
        }
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Streaming reader over one sealed run: decodes one block at a time,
/// charging a spill read per block.
struct RunCursor {
    segment: Segment,
    next_block: usize,
    current: Vec<Tuple>,
    pos: usize,
}

impl RunCursor {
    fn in_memory(tuples: Vec<Tuple>) -> RunCursor {
        RunCursor {
            segment: scriptflow_datakit::blockstore::BlockAppender::new().seal(),
            next_block: 0,
            current: tuples,
            pos: 0,
        }
    }

    fn spilled(segment: Segment) -> RunCursor {
        RunCursor {
            segment,
            next_block: 0,
            current: Vec::new(),
            pos: 0,
        }
    }

    /// Ensure a tuple is available, decoding the next block if needed.
    fn peek(&mut self, name: &str, out: &mut OutputCollector) -> WorkflowResult<Option<&Tuple>> {
        while self.pos >= self.current.len() {
            let Some(block) = self.segment.blocks().get(self.next_block) else {
                return Ok(None);
            };
            out.note_spill_read();
            self.current = block
                .decode()
                .map_err(|e| WorkflowError::from_data(name, e))?
                .to_tuples();
            self.pos = 0;
            self.next_block += 1;
        }
        Ok(self.current.get(self.pos))
    }

    fn pop(&mut self) -> Tuple {
        let t = self.current[self.pos].clone();
        self.pos += 1;
        t
    }
}

struct SortInstance {
    name: String,
    keys: Vec<(String, SortOrder)>,
    buffer: Vec<Tuple>,
    buffer_bytes: usize,
    budget: Option<usize>,
    budget_fixed: bool,
    runs: Vec<Segment>,
}

impl SortInstance {
    fn sort_buffer(&mut self) {
        let keys = self.keys.clone();
        self.buffer.sort_by(|a, b| compare_by_keys(&keys, a, b));
    }

    /// Sort the buffer and seal it to the block store as one run.
    fn spill_run(&mut self, out: &mut OutputCollector) {
        if self.buffer.is_empty() {
            return;
        }
        self.sort_buffer();
        let schema = self.buffer[0].schema().clone();
        let seg = seal_run(&schema, &self.buffer, out);
        self.runs.push(seg);
        self.buffer.clear();
        self.buffer_bytes = 0;
    }
}

impl Operator for SortInstance {
    fn set_memory_budget(&mut self, bytes: Option<usize>) {
        if !self.budget_fixed {
            self.budget = bytes;
        }
    }

    fn on_tuple(
        &mut self,
        tuple: Tuple,
        _port: usize,
        out: &mut OutputCollector,
    ) -> WorkflowResult<()> {
        // Validate key columns exist up front (operator-level error).
        for (k, _) in &self.keys {
            tuple
                .get(k)
                .map_err(|e| WorkflowError::from_data(&self.name, e))?;
        }
        self.buffer_bytes += tuple_footprint(&tuple);
        self.buffer.push(tuple);
        if let Some(budget) = self.budget {
            if self.buffer_bytes > budget {
                self.spill_run(out);
            }
        }
        Ok(())
    }

    fn on_port_complete(&mut self, _port: usize, out: &mut OutputCollector) -> WorkflowResult<()> {
        self.sort_buffer();
        self.buffer_bytes = 0;
        if self.runs.is_empty() {
            out.emit_all(self.buffer.drain(..));
            return Ok(());
        }
        // K-way merge of the sealed runs plus the final in-memory run.
        let mut cursors: Vec<RunCursor> =
            self.runs.drain(..).map(RunCursor::spilled).collect();
        cursors.push(RunCursor::in_memory(std::mem::take(&mut self.buffer)));
        let keys = self.keys.clone();
        let name = self.name.clone();
        loop {
            let mut best: Option<usize> = None;
            for i in 0..cursors.len() {
                if cursors[i].peek(&name, out)?.is_none() {
                    continue;
                }
                best = Some(match best {
                    None => i,
                    Some(j) => {
                        // Both peeks succeeded above, so direct indexing
                        // into the decoded buffers is safe here.
                        let a = &cursors[i].current[cursors[i].pos];
                        let b = &cursors[j].current[cursors[j].pos];
                        if compare_by_keys(&keys, a, b) == Ordering::Less {
                            i
                        } else {
                            j
                        }
                    }
                });
            }
            match best {
                Some(i) => out.emit(cursors[i].pop()),
                None => break,
            }
        }
        Ok(())
    }
}

impl OperatorFactory for SortOp {
    fn name(&self) -> &str {
        &self.name
    }
    fn input_ports(&self) -> usize {
        1
    }
    fn blocking_ports(&self) -> Vec<usize> {
        vec![0]
    }
    fn output_schema(&self, inputs: &[SchemaRef]) -> WorkflowResult<Schema> {
        for (k, _) in &self.keys {
            inputs[0]
                .index_of(k)
                .map_err(|e| WorkflowError::SchemaError {
                    operator: self.name.clone(),
                    error: e,
                })?;
        }
        Ok((*inputs[0]).clone())
    }
    fn language(&self) -> Language {
        self.language
    }
    fn cost(&self) -> CostProfile {
        self.cost.clone()
    }
    fn create(&self) -> Box<dyn Operator> {
        Box::new(SortInstance {
            name: self.name.clone(),
            keys: self.keys.clone(),
            buffer: Vec::new(),
            buffer_bytes: 0,
            budget: self.memory_budget,
            budget_fixed: self.memory_budget.is_some(),
            runs: Vec::new(),
        })
    }

    fn fingerprint(&self) -> OpFingerprint {
        let mut h = spec_fingerprinter(self);
        h.write_usize(self.keys.len());
        for (col, order) in &self.keys {
            h.write_str(col);
            h.write_str(&format!("{order:?}"));
        }
        match self.memory_budget {
            Some(b) => h.write_usize(b),
            None => h.write_str("unbounded"),
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scriptflow_datakit::DataType;

    fn tuple(a: i64, b: &str) -> Tuple {
        Tuple::new(
            Schema::of(&[("a", DataType::Int), ("b", DataType::Str)]),
            vec![Value::Int(a), Value::Str(b.into())],
        )
        .unwrap()
    }

    fn run_sort(op: &SortOp, rows: Vec<Tuple>) -> Vec<Tuple> {
        let mut inst = op.create();
        let mut out = OutputCollector::new();
        for t in rows {
            inst.on_tuple(t, 0, &mut out).unwrap();
        }
        assert!(out.is_empty(), "sort must be blocking");
        inst.on_port_complete(0, &mut out).unwrap();
        out.take()
    }

    #[test]
    fn single_key_ascending() {
        let op = SortOp::new("s", &[("a", SortOrder::Ascending)]);
        let got = run_sort(&op, vec![tuple(3, "x"), tuple(1, "y"), tuple(2, "z")]);
        let keys: Vec<i64> = got.iter().map(|t| t.get_int("a").unwrap()).collect();
        assert_eq!(keys, vec![1, 2, 3]);
    }

    #[test]
    fn compound_keys_with_direction() {
        let op = SortOp::new(
            "s",
            &[("b", SortOrder::Ascending), ("a", SortOrder::Descending)],
        );
        let got = run_sort(
            &op,
            vec![tuple(1, "x"), tuple(3, "x"), tuple(2, "y"), tuple(9, "x")],
        );
        let pairs: Vec<(String, i64)> = got
            .iter()
            .map(|t| (t.get_str("b").unwrap().to_owned(), t.get_int("a").unwrap()))
            .collect();
        assert_eq!(
            pairs,
            vec![
                ("x".into(), 9),
                ("x".into(), 3),
                ("x".into(), 1),
                ("y".into(), 2)
            ]
        );
    }

    #[test]
    fn nulls_sort_first() {
        let schema = Schema::of(&[("a", DataType::Int), ("b", DataType::Str)]);
        let null_row = Tuple::new(schema, vec![Value::Null, Value::Str("n".into())]).unwrap();
        let op = SortOp::new("s", &[("a", SortOrder::Ascending)]);
        let got = run_sort(&op, vec![tuple(1, "x"), null_row]);
        assert!(got[0].get("a").unwrap().is_null());
    }

    #[test]
    fn missing_key_is_operator_error() {
        let op = SortOp::new("s", &[("zzz", SortOrder::Ascending)]);
        let mut inst = op.create();
        let mut out = OutputCollector::new();
        let err = inst.on_tuple(tuple(1, "x"), 0, &mut out).unwrap_err();
        assert!(err.to_string().contains("`s`"));
        // And the builder catches it at schema time too.
        assert!(op
            .output_schema(&[Schema::of(&[("a", DataType::Int)])])
            .is_err());
    }

    #[test]
    fn tiny_budget_spills_runs_and_merges_identically() {
        let rows: Vec<Tuple> = (0..200)
            .map(|i| tuple((i * 37) % 101, if i % 2 == 0 { "even" } else { "odd" }))
            .collect();
        let in_memory = run_sort(&SortOp::new("s", &[("a", SortOrder::Ascending)]), rows.clone());

        let op = SortOp::new("s", &[("a", SortOrder::Ascending)]).with_memory_budget(512);
        let mut inst = op.create();
        let mut out = OutputCollector::new();
        for t in rows {
            inst.on_tuple(t, 0, &mut out).unwrap();
        }
        assert!(
            out.spilled_blocks() > 0,
            "512-byte budget must force sorted runs to spill"
        );
        inst.on_port_complete(0, &mut out).unwrap();
        assert!(out.spill_reads() > 0, "merge must read runs back");
        let spilled = out.take();
        let keys = |ts: &[Tuple]| -> Vec<i64> {
            ts.iter().map(|t| t.get_int("a").unwrap()).collect()
        };
        assert_eq!(keys(&spilled), keys(&in_memory));
    }

    #[test]
    fn engine_budget_applies_unless_operator_override_set() {
        // Engine-level budget reaches an un-overridden instance...
        let op = SortOp::new("s", &[("a", SortOrder::Ascending)]);
        let mut inst = op.create();
        inst.set_memory_budget(Some(256));
        let mut out = OutputCollector::new();
        for i in 0..100 {
            inst.on_tuple(tuple(i, "x"), 0, &mut out).unwrap();
        }
        assert!(out.spilled_blocks() > 0);

        // ...but a per-operator override wins over the engine value.
        let fixed = SortOp::new("s", &[("a", SortOrder::Ascending)]).with_memory_budget(1 << 30);
        let mut inst = fixed.create();
        inst.set_memory_budget(Some(256));
        let mut out = OutputCollector::new();
        for i in 0..100 {
            inst.on_tuple(tuple(i, "x"), 0, &mut out).unwrap();
        }
        assert_eq!(out.spilled_blocks(), 0, "override must shadow engine budget");
    }

    #[test]
    fn value_comparison_total_enough() {
        assert_eq!(
            compare_values(&Value::Int(2), &Value::Float(2.0)),
            Ordering::Equal
        );
        assert_eq!(
            compare_values(&Value::Float(1.5), &Value::Int(2)),
            Ordering::Less
        );
        assert_eq!(
            compare_values(&Value::Bool(false), &Value::Bool(true)),
            Ordering::Less
        );
    }
}
