//! User-defined operators (Texera's Python/Scala UDF boxes).

use std::sync::Arc;

use scriptflow_datakit::{Schema, SchemaRef, Tuple};
use scriptflow_simcluster::Language;

use crate::cost::CostProfile;
use crate::operator::{Operator, OperatorFactory, OutputCollector, WorkflowResult};

type SchemaFn = Arc<dyn Fn(&[SchemaRef]) -> WorkflowResult<Schema> + Send + Sync>;
type TupleFn = Arc<dyn Fn(Tuple, usize, &mut OutputCollector) -> WorkflowResult<()> + Send + Sync>;

/// A stateless user-defined operator: one closure maps each input tuple
/// to zero or more output tuples.
///
/// This is the workhorse the task implementations use for their custom
/// logic — exactly the role of Texera's UDF operators in the paper's
/// workflows.
pub struct UdfOp {
    name: String,
    ports: usize,
    schema_fn: SchemaFn,
    tuple_fn: TupleFn,
    cost: CostProfile,
    language: Language,
}

impl UdfOp {
    /// A single-input UDF with a fixed output schema.
    pub fn new(
        name: impl Into<String>,
        output: Schema,
        f: impl Fn(Tuple, usize, &mut OutputCollector) -> WorkflowResult<()> + Send + Sync + 'static,
    ) -> Self {
        let schema = output.clone();
        UdfOp {
            name: name.into(),
            ports: 1,
            schema_fn: Arc::new(move |_| Ok(schema.clone())),
            tuple_fn: Arc::new(f),
            cost: CostProfile::per_tuple_micros(5),
            language: Language::Python,
        }
    }

    /// A UDF whose output schema is computed from its input schemas.
    pub fn with_schema_fn(
        name: impl Into<String>,
        ports: usize,
        schema_fn: impl Fn(&[SchemaRef]) -> WorkflowResult<Schema> + Send + Sync + 'static,
        f: impl Fn(Tuple, usize, &mut OutputCollector) -> WorkflowResult<()> + Send + Sync + 'static,
    ) -> Self {
        assert!(ports >= 1, "a UDF needs at least one input port");
        UdfOp {
            name: name.into(),
            ports,
            schema_fn: Arc::new(schema_fn),
            tuple_fn: Arc::new(f),
            cost: CostProfile::per_tuple_micros(5),
            language: Language::Python,
        }
    }

    /// Override the cost profile.
    pub fn with_cost(mut self, cost: CostProfile) -> Self {
        self.cost = cost;
        self
    }

    /// Override the implementation language.
    pub fn with_language(mut self, language: Language) -> Self {
        self.language = language;
        self
    }
}

struct UdfInstance {
    tuple_fn: TupleFn,
}

impl Operator for UdfInstance {
    fn on_tuple(
        &mut self,
        tuple: Tuple,
        port: usize,
        out: &mut OutputCollector,
    ) -> WorkflowResult<()> {
        (self.tuple_fn)(tuple, port, out)
    }
}

impl OperatorFactory for UdfOp {
    fn name(&self) -> &str {
        &self.name
    }
    fn input_ports(&self) -> usize {
        self.ports
    }
    fn output_schema(&self, inputs: &[SchemaRef]) -> WorkflowResult<Schema> {
        (self.schema_fn)(inputs)
    }
    fn language(&self) -> Language {
        self.language
    }
    fn cost(&self) -> CostProfile {
        self.cost.clone()
    }
    fn create(&self) -> Box<dyn Operator> {
        Box::new(UdfInstance {
            tuple_fn: self.tuple_fn.clone(),
        })
    }
}

type StateInit<S> = Arc<dyn Fn() -> S + Send + Sync>;
type StateTupleFn<S> =
    Arc<dyn Fn(&mut S, Tuple, usize, &mut OutputCollector) -> WorkflowResult<()> + Send + Sync>;
type StateCompleteFn<S> =
    Arc<dyn Fn(&mut S, usize, &mut OutputCollector) -> WorkflowResult<()> + Send + Sync>;

/// A stateful user-defined operator: each worker instance holds its own
/// state `S`, updated per tuple and flushed on port completion.
///
/// Used for custom blocking logic (building lookup tables, batching model
/// input) in the task implementations.
pub struct StatefulUdfOp<S> {
    name: String,
    ports: usize,
    blocking: Vec<usize>,
    schema_fn: SchemaFn,
    init: StateInit<S>,
    on_tuple: StateTupleFn<S>,
    on_complete: StateCompleteFn<S>,
    cost: CostProfile,
    language: Language,
}

impl<S: Send + 'static> StatefulUdfOp<S> {
    /// A stateful UDF. `on_complete` fires once per port as it finishes.
    pub fn new(
        name: impl Into<String>,
        ports: usize,
        output: Schema,
        init: impl Fn() -> S + Send + Sync + 'static,
        on_tuple: impl Fn(&mut S, Tuple, usize, &mut OutputCollector) -> WorkflowResult<()>
            + Send
            + Sync
            + 'static,
        on_complete: impl Fn(&mut S, usize, &mut OutputCollector) -> WorkflowResult<()>
            + Send
            + Sync
            + 'static,
    ) -> Self {
        assert!(ports >= 1, "a UDF needs at least one input port");
        let schema = output;
        StatefulUdfOp {
            name: name.into(),
            ports,
            blocking: Vec::new(),
            schema_fn: Arc::new(move |_| Ok(schema.clone())),
            init: Arc::new(init),
            on_tuple: Arc::new(on_tuple),
            on_complete: Arc::new(on_complete),
            cost: CostProfile::per_tuple_micros(5),
            language: Language::Python,
        }
    }

    /// Declare blocking ports (drained before the remaining ports).
    pub fn with_blocking_ports(mut self, blocking: Vec<usize>) -> Self {
        self.blocking = blocking;
        self
    }

    /// Override the cost profile.
    pub fn with_cost(mut self, cost: CostProfile) -> Self {
        self.cost = cost;
        self
    }

    /// Override the implementation language.
    pub fn with_language(mut self, language: Language) -> Self {
        self.language = language;
        self
    }
}

struct StatefulUdfInstance<S> {
    state: S,
    on_tuple: StateTupleFn<S>,
    on_complete: StateCompleteFn<S>,
}

impl<S: Send> Operator for StatefulUdfInstance<S> {
    fn on_tuple(
        &mut self,
        tuple: Tuple,
        port: usize,
        out: &mut OutputCollector,
    ) -> WorkflowResult<()> {
        (self.on_tuple)(&mut self.state, tuple, port, out)
    }

    fn on_port_complete(&mut self, port: usize, out: &mut OutputCollector) -> WorkflowResult<()> {
        (self.on_complete)(&mut self.state, port, out)
    }
}

impl<S: Send + 'static> OperatorFactory for StatefulUdfOp<S> {
    fn name(&self) -> &str {
        &self.name
    }
    fn input_ports(&self) -> usize {
        self.ports
    }
    fn blocking_ports(&self) -> Vec<usize> {
        self.blocking.clone()
    }
    fn output_schema(&self, inputs: &[SchemaRef]) -> WorkflowResult<Schema> {
        (self.schema_fn)(inputs)
    }
    fn language(&self) -> Language {
        self.language
    }
    fn cost(&self) -> CostProfile {
        self.cost.clone()
    }
    fn create(&self) -> Box<dyn Operator> {
        Box::new(StatefulUdfInstance {
            state: (self.init)(),
            on_tuple: self.on_tuple.clone(),
            on_complete: self.on_complete.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scriptflow_datakit::{DataType, Value};

    fn int_tuple(x: i64) -> Tuple {
        Tuple::new(Schema::of(&[("x", DataType::Int)]), vec![Value::Int(x)]).unwrap()
    }

    #[test]
    fn stateless_udf_flat_maps() {
        let out_schema = Schema::of(&[("y", DataType::Int)]);
        let schema = (*out_schema).clone();
        let op = UdfOp::new("dup", schema, move |t, _, out| {
            let x = t
                .get_int("x")
                .map_err(|e| crate::operator::WorkflowError::from_data("dup", e))?;
            for _ in 0..2 {
                out.emit(Tuple::new_unchecked(
                    out_schema.clone(),
                    vec![Value::Int(x * 10)],
                ));
            }
            Ok(())
        });
        let mut inst = op.create();
        let mut collected = OutputCollector::new();
        inst.on_tuple(int_tuple(3), 0, &mut collected).unwrap();
        let rows = collected.take();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get_int("y").unwrap(), 30);
    }

    #[test]
    fn stateful_udf_accumulates_and_flushes() {
        let out_schema = Schema::of(&[("total", DataType::Int)]);
        let emit_schema = out_schema.clone();
        let op = StatefulUdfOp::new(
            "sum",
            1,
            (*out_schema).clone(),
            || 0i64,
            |state, t, _, _| {
                *state += t.get_int("x").unwrap();
                Ok(())
            },
            move |state, _, out| {
                out.emit(Tuple::new_unchecked(
                    emit_schema.clone(),
                    vec![Value::Int(*state)],
                ));
                Ok(())
            },
        );
        let mut inst = op.create();
        let mut out = OutputCollector::new();
        for x in 1..=4 {
            inst.on_tuple(int_tuple(x), 0, &mut out).unwrap();
        }
        assert!(out.is_empty());
        inst.on_port_complete(0, &mut out).unwrap();
        let rows = out.take();
        assert_eq!(rows[0].get_int("total").unwrap(), 10);
    }

    #[test]
    fn instances_have_independent_state() {
        let out_schema = Schema::of(&[("total", DataType::Int)]);
        let emit_schema = out_schema.clone();
        let op = StatefulUdfOp::new(
            "sum",
            1,
            (*out_schema).clone(),
            || 0i64,
            |state, t, _, _| {
                *state += t.get_int("x").unwrap();
                Ok(())
            },
            move |state, _, out| {
                out.emit(Tuple::new_unchecked(
                    emit_schema.clone(),
                    vec![Value::Int(*state)],
                ));
                Ok(())
            },
        );
        let mut a = op.create();
        let mut b = op.create();
        let mut out = OutputCollector::new();
        a.on_tuple(int_tuple(5), 0, &mut out).unwrap();
        b.on_port_complete(0, &mut out).unwrap();
        assert_eq!(out.take()[0].get_int("total").unwrap(), 0);
    }

    #[test]
    fn schema_fn_variant() {
        let op = UdfOp::with_schema_fn(
            "identity",
            1,
            |inputs| Ok((*inputs[0]).clone()),
            |t, _, out| {
                out.emit(t);
                Ok(())
            },
        );
        let s = Schema::of(&[("x", DataType::Int)]);
        assert_eq!(op.output_schema(&[s]).unwrap().to_string(), "x: Int");
    }
}
