//! N-ary union operator.

use scriptflow_datakit::{Schema, SchemaRef, Tuple};
use scriptflow_simcluster::Language;

use crate::cost::CostProfile;
use crate::operator::{Operator, OperatorFactory, OutputCollector, WorkflowError, WorkflowResult};

/// Merge `n` input streams with identical schemas into one output
/// stream (bag semantics, no dedup, no order guarantee).
pub struct UnionOp {
    name: String,
    ports: usize,
    cost: CostProfile,
    language: Language,
}

impl UnionOp {
    /// A union over `ports` inputs.
    pub fn new(name: impl Into<String>, ports: usize) -> Self {
        assert!(ports >= 2, "a union needs at least two inputs");
        UnionOp {
            name: name.into(),
            ports,
            cost: CostProfile::per_tuple_micros(1),
            language: Language::Python,
        }
    }

    /// Override the cost profile.
    pub fn with_cost(mut self, cost: CostProfile) -> Self {
        self.cost = cost;
        self
    }

    /// Override the implementation language.
    pub fn with_language(mut self, language: Language) -> Self {
        self.language = language;
        self
    }
}

struct UnionInstance;

impl Operator for UnionInstance {
    fn on_tuple(
        &mut self,
        tuple: Tuple,
        _port: usize,
        out: &mut OutputCollector,
    ) -> WorkflowResult<()> {
        out.emit(tuple);
        Ok(())
    }
}

impl OperatorFactory for UnionOp {
    fn name(&self) -> &str {
        &self.name
    }
    fn input_ports(&self) -> usize {
        self.ports
    }
    fn output_schema(&self, inputs: &[SchemaRef]) -> WorkflowResult<Schema> {
        for other in &inputs[1..] {
            if **other != *inputs[0] {
                return Err(WorkflowError::SchemaError {
                    operator: self.name.clone(),
                    error: scriptflow_datakit::DataError::SchemaMismatch {
                        left: inputs[0].to_string(),
                        right: other.to_string(),
                    },
                });
            }
        }
        Ok((*inputs[0]).clone())
    }
    fn language(&self) -> Language {
        self.language
    }
    fn cost(&self) -> CostProfile {
        self.cost.clone()
    }
    fn create(&self) -> Box<dyn Operator> {
        Box::new(UnionInstance)
    }

    /// A union of the same inputs in a different port order produces the
    /// same bag of rows, so its Merkle fold is order-independent.
    fn commutative_inputs(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::WorkflowBuilder;
    use crate::exec_sim::SimExecutor;
    use crate::ops::{ScanOp, SinkOp};
    use crate::partition::PartitionStrategy;
    use crate::EngineConfig;
    use scriptflow_datakit::{Batch, DataType, Value};
    use std::sync::Arc;

    fn batch(lo: i64, hi: i64) -> Batch {
        let schema = Schema::of(&[("id", DataType::Int)]);
        Batch::from_rows(schema, (lo..hi).map(|i| vec![Value::Int(i)]).collect()).unwrap()
    }

    #[test]
    fn schema_mismatch_rejected_at_build_time() {
        let u = UnionOp::new("u", 2);
        let a = Schema::of(&[("id", DataType::Int)]);
        let b = Schema::of(&[("id", DataType::Str)]);
        assert!(u.output_schema(&[a.clone(), a.clone()]).is_ok());
        assert!(u.output_schema(&[a, b]).is_err());
    }

    #[test]
    fn union_merges_all_streams() {
        let mut b = WorkflowBuilder::new();
        let s1 = b.add(Arc::new(ScanOp::new("s1", batch(0, 50))), 2);
        let s2 = b.add(Arc::new(ScanOp::new("s2", batch(50, 80))), 1);
        let s3 = b.add(Arc::new(ScanOp::new("s3", batch(80, 100))), 1);
        let u = b.add(Arc::new(UnionOp::new("u", 3)), 2);
        let sink_op = SinkOp::new("sink");
        let handle = sink_op.handle();
        let sink = b.add(Arc::new(sink_op), 1);
        b.connect(s1, u, 0, PartitionStrategy::RoundRobin);
        b.connect(s2, u, 1, PartitionStrategy::RoundRobin);
        b.connect(s3, u, 2, PartitionStrategy::RoundRobin);
        b.connect(u, sink, 0, PartitionStrategy::Single);
        let wf = b.build().unwrap();
        SimExecutor::new(EngineConfig::default()).run(&wf).unwrap();
        let mut ids: Vec<i64> = handle
            .results()
            .iter()
            .map(|t| t.get_int("id").unwrap())
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..100).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "at least two inputs")]
    fn single_input_union_panics() {
        UnionOp::new("u", 1);
    }
}
