//! Tuple partitioning across an operator's parallel workers.

use scriptflow_datakit::{HashKey, Tuple};

use crate::operator::{WorkflowError, WorkflowResult};

/// How tuples flowing along an edge are distributed among the downstream
/// operator's workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Cycle through workers — the default for stateless operators.
    RoundRobin,
    /// Route by hash of the named columns — required upstream of stateful
    /// keyed operators (joins, group-bys) running with parallelism > 1.
    Hash(Vec<String>),
    /// Copy every tuple to every worker (e.g. broadcasting a small
    /// dimension table to all join workers).
    Broadcast,
    /// Send everything to worker 0 (forces a single-instance operator).
    Single,
}

impl PartitionStrategy {
    /// Route `tuple` (the `seq`-th on this edge) to worker indices.
    ///
    /// Returns one index for all strategies except `Broadcast`, which
    /// returns all of `0..workers`.
    pub fn route(&self, tuple: &Tuple, seq: u64, workers: usize) -> WorkflowResult<Vec<usize>> {
        debug_assert!(workers > 0);
        Ok(match self {
            PartitionStrategy::RoundRobin => vec![(seq % workers as u64) as usize],
            PartitionStrategy::Hash(cols) => {
                let names: Vec<&str> = cols.iter().map(String::as_str).collect();
                let key = HashKey::from_tuple(tuple, &names).map_err(|e| {
                    WorkflowError::DataError {
                        operator: "<partitioner>".into(),
                        error: e,
                    }
                })?;
                vec![key.bucket(workers)]
            }
            PartitionStrategy::Broadcast => (0..workers).collect(),
            PartitionStrategy::Single => vec![0],
        })
    }

    /// Human-readable label for GUI rendering.
    pub fn label(&self) -> String {
        match self {
            PartitionStrategy::RoundRobin => "round-robin".into(),
            PartitionStrategy::Hash(cols) => format!("hash({})", cols.join(", ")),
            PartitionStrategy::Broadcast => "broadcast".into(),
            PartitionStrategy::Single => "single".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scriptflow_datakit::{DataType, Schema, Value};

    fn tuple(id: i64) -> Tuple {
        Tuple::new(
            Schema::of(&[("id", DataType::Int)]),
            vec![Value::Int(id)],
        )
        .unwrap()
    }

    #[test]
    fn round_robin_cycles() {
        let s = PartitionStrategy::RoundRobin;
        let routes: Vec<usize> = (0..6)
            .map(|i| s.route(&tuple(0), i, 3).unwrap()[0])
            .collect();
        assert_eq!(routes, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn hash_is_deterministic_and_key_stable() {
        let s = PartitionStrategy::Hash(vec!["id".into()]);
        for id in 0..50 {
            let a = s.route(&tuple(id), 0, 4).unwrap();
            let b = s.route(&tuple(id), 99, 4).unwrap();
            assert_eq!(a, b, "same key must route identically regardless of seq");
        }
    }

    #[test]
    fn hash_unknown_column_errors() {
        let s = PartitionStrategy::Hash(vec!["nope".into()]);
        assert!(s.route(&tuple(1), 0, 2).is_err());
    }

    #[test]
    fn broadcast_hits_every_worker() {
        let s = PartitionStrategy::Broadcast;
        assert_eq!(s.route(&tuple(1), 0, 4).unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn single_pins_worker_zero() {
        let s = PartitionStrategy::Single;
        for seq in 0..5 {
            assert_eq!(s.route(&tuple(7), seq, 4).unwrap(), vec![0]);
        }
    }

    #[test]
    fn labels() {
        assert_eq!(
            PartitionStrategy::Hash(vec!["a".into(), "b".into()]).label(),
            "hash(a, b)"
        );
        assert_eq!(PartitionStrategy::RoundRobin.label(), "round-robin");
    }
}
