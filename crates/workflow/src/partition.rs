//! Tuple partitioning across an operator's parallel workers.
//!
//! Two layers:
//!
//! * [`PartitionStrategy`] — the *declared* policy carried by a DAG edge
//!   (what the GUI shows and the builder validates).
//! * [`CompiledPartitioner`] — the *executable* form, produced once per
//!   edge at DAG-build time: hash column names are resolved to column
//!   indices against the producer's propagated output schema, so the
//!   per-tuple routing path does no name lookups and no allocation.
//!
//! Both executors route through the compiled form
//! ([`CompiledPartitioner::route_by_index`]); the name-based
//! [`PartitionStrategy::route`] remains for ad-hoc callers and tests.

use scriptflow_datakit::{HashKey, Schema, Tuple};

use crate::operator::{WorkflowError, WorkflowResult};

/// How tuples flowing along an edge are distributed among the downstream
/// operator's workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Cycle through workers — the default for stateless operators.
    RoundRobin,
    /// Route by hash of the named columns — required upstream of stateful
    /// keyed operators (joins, group-bys) running with parallelism > 1.
    Hash(Vec<String>),
    /// Copy every tuple to every worker (e.g. broadcasting a small
    /// dimension table to all join workers).
    Broadcast,
    /// Send everything to worker 0 (forces a single-instance operator).
    Single,
}

impl PartitionStrategy {
    /// Route `tuple` (the `seq`-th on this edge) to worker indices.
    ///
    /// Returns one index for all strategies except `Broadcast`, which
    /// returns all of `0..workers`. This is the name-resolving slow path;
    /// executors use [`CompiledPartitioner`] instead.
    pub fn route(&self, tuple: &Tuple, seq: u64, workers: usize) -> WorkflowResult<Vec<usize>> {
        debug_assert!(workers > 0);
        Ok(match self {
            PartitionStrategy::RoundRobin => vec![(seq % workers as u64) as usize],
            PartitionStrategy::Hash(cols) => {
                let key = hash_key_by_name(tuple, cols)?;
                vec![key.bucket(workers)]
            }
            PartitionStrategy::Broadcast => (0..workers).collect(),
            PartitionStrategy::Single => vec![0],
        })
    }

    /// Compile against the producing operator's output schema.
    ///
    /// Resolves hash column names to indices; unknown columns surface here
    /// — at DAG-build time — instead of on the first routed tuple.
    pub fn compile(&self, schema: &Schema) -> WorkflowResult<CompiledPartitioner> {
        Ok(match self {
            PartitionStrategy::RoundRobin => CompiledPartitioner::RoundRobin,
            PartitionStrategy::Hash(cols) => {
                let mut indices = Vec::with_capacity(cols.len());
                for c in cols {
                    indices.push(schema.index_of(c).map_err(|e| WorkflowError::DataError {
                        operator: "<partitioner>".into(),
                        error: e,
                    })?);
                }
                CompiledPartitioner::Hash { indices }
            }
            PartitionStrategy::Broadcast => CompiledPartitioner::Broadcast,
            PartitionStrategy::Single => CompiledPartitioner::Single,
        })
    }

    /// Human-readable label for GUI rendering.
    pub fn label(&self) -> String {
        match self {
            PartitionStrategy::RoundRobin => "round-robin".into(),
            PartitionStrategy::Hash(cols) => format!("hash({})", cols.join(", ")),
            PartitionStrategy::Broadcast => "broadcast".into(),
            PartitionStrategy::Single => "single".into(),
        }
    }
}

/// Composite hash key from named columns without building a borrowed name
/// slice per tuple (the old per-tuple `Vec<&str>` allocation).
fn hash_key_by_name(tuple: &Tuple, cols: &[String]) -> WorkflowResult<HashKey> {
    let wrap = |e| WorkflowError::DataError {
        operator: "<partitioner>".into(),
        error: e,
    };
    if cols.len() == 1 {
        return HashKey::from_value(tuple.get(&cols[0]).map_err(wrap)?).map_err(wrap);
    }
    let mut parts = Vec::with_capacity(cols.len());
    for c in cols {
        parts.push(HashKey::from_value(tuple.get(c).map_err(wrap)?).map_err(wrap)?);
    }
    Ok(HashKey::Composite(parts))
}

/// A partition strategy compiled for one edge: name resolution already
/// done, per-tuple routing is index arithmetic only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompiledPartitioner {
    /// Cycle through workers by edge sequence number.
    RoundRobin,
    /// Hash of pre-resolved column indices.
    Hash {
        /// Column indices into the producer's output schema.
        indices: Vec<usize>,
    },
    /// Copy to every worker. Has no single route; callers detect this via
    /// [`CompiledPartitioner::is_broadcast`] and share the batch instead.
    Broadcast,
    /// Everything to worker 0.
    Single,
}

impl CompiledPartitioner {
    /// True for the broadcast strategy, which routes whole batches (every
    /// worker sees every tuple) rather than individual tuples.
    pub fn is_broadcast(&self) -> bool {
        matches!(self, CompiledPartitioner::Broadcast)
    }

    /// Worker index for `tuple`, the `seq`-th on this edge — the
    /// allocation-free fast path shared by both executors.
    ///
    /// Not defined for `Broadcast` (which has no single destination);
    /// calling it there is an executor bug and returns an error.
    pub fn route_by_index(&self, tuple: &Tuple, seq: u64, workers: usize) -> WorkflowResult<usize> {
        debug_assert!(workers > 0);
        match self {
            CompiledPartitioner::RoundRobin => Ok((seq % workers as u64) as usize),
            CompiledPartitioner::Hash { indices } => {
                let key = HashKey::from_tuple_indexed(tuple, indices).map_err(|e| {
                    WorkflowError::DataError {
                        operator: "<partitioner>".into(),
                        error: e,
                    }
                })?;
                Ok(key.bucket(workers))
            }
            CompiledPartitioner::Single => Ok(0),
            CompiledPartitioner::Broadcast => Err(WorkflowError::OperatorFailed {
                operator: "<partitioner>".into(),
                message: "broadcast edges route whole batches, not single tuples".into(),
            }),
        }
    }

    /// Scatter owned `tuples` into per-worker buffers without cloning:
    /// each tuple *moves* into exactly one buffer. `seq` is the edge's
    /// per-producer sequence counter and advances by one per tuple.
    ///
    /// `out` must have one buffer per downstream worker; buffers are
    /// appended to (callers reuse them across batches). Not defined for
    /// `Broadcast` — share the batch instead of scattering it.
    pub fn scatter(
        &self,
        tuples: Vec<Tuple>,
        seq: &mut u64,
        out: &mut [Vec<Tuple>],
    ) -> WorkflowResult<()> {
        debug_assert!(!out.is_empty());
        debug_assert!(!self.is_broadcast());
        let workers = out.len();
        for t in tuples {
            let w = self.route_by_index(&t, *seq, workers)?;
            *seq += 1;
            out[w].push(t);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scriptflow_datakit::{DataType, Schema, Value};

    fn tuple(id: i64) -> Tuple {
        Tuple::new(Schema::of(&[("id", DataType::Int)]), vec![Value::Int(id)]).unwrap()
    }

    #[test]
    fn round_robin_cycles() {
        let s = PartitionStrategy::RoundRobin;
        let routes: Vec<usize> = (0..6)
            .map(|i| s.route(&tuple(0), i, 3).unwrap()[0])
            .collect();
        assert_eq!(routes, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn hash_is_deterministic_and_key_stable() {
        let s = PartitionStrategy::Hash(vec!["id".into()]);
        for id in 0..50 {
            let a = s.route(&tuple(id), 0, 4).unwrap();
            let b = s.route(&tuple(id), 99, 4).unwrap();
            assert_eq!(a, b, "same key must route identically regardless of seq");
        }
    }

    #[test]
    fn hash_unknown_column_errors() {
        let s = PartitionStrategy::Hash(vec!["nope".into()]);
        assert!(s.route(&tuple(1), 0, 2).is_err());
    }

    #[test]
    fn broadcast_hits_every_worker() {
        let s = PartitionStrategy::Broadcast;
        assert_eq!(s.route(&tuple(1), 0, 4).unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn single_pins_worker_zero() {
        let s = PartitionStrategy::Single;
        for seq in 0..5 {
            assert_eq!(s.route(&tuple(7), seq, 4).unwrap(), vec![0]);
        }
    }

    #[test]
    fn labels() {
        assert_eq!(
            PartitionStrategy::Hash(vec!["a".into(), "b".into()]).label(),
            "hash(a, b)"
        );
        assert_eq!(PartitionStrategy::RoundRobin.label(), "round-robin");
    }

    #[test]
    fn compiled_matches_named_route() {
        let schema = Schema::of(&[("id", DataType::Int)]);
        for strategy in [
            PartitionStrategy::RoundRobin,
            PartitionStrategy::Hash(vec!["id".into()]),
            PartitionStrategy::Single,
        ] {
            let compiled = strategy.compile(&schema).unwrap();
            for id in 0..40 {
                for seq in 0..5 {
                    let slow = strategy.route(&tuple(id), seq, 4).unwrap();
                    let fast = compiled.route_by_index(&tuple(id), seq, 4).unwrap();
                    assert_eq!(slow, vec![fast], "{strategy:?} id={id} seq={seq}");
                }
            }
        }
    }

    #[test]
    fn compile_rejects_unknown_hash_column() {
        let schema = Schema::of(&[("id", DataType::Int)]);
        let err = PartitionStrategy::Hash(vec!["missing".into()])
            .compile(&schema)
            .unwrap_err();
        assert!(err.to_string().contains("missing"), "{err}");
    }

    #[test]
    fn broadcast_has_no_single_route() {
        let compiled = CompiledPartitioner::Broadcast;
        assert!(compiled.is_broadcast());
        assert!(compiled.route_by_index(&tuple(1), 0, 4).is_err());
    }

    #[test]
    fn scatter_moves_each_tuple_exactly_once() {
        let schema = Schema::of(&[("id", DataType::Int)]);
        let compiled = PartitionStrategy::Hash(vec!["id".into()])
            .compile(&schema)
            .unwrap();
        let tuples: Vec<Tuple> = (0..100).map(tuple).collect();
        let mut seq = 0u64;
        let mut bufs: Vec<Vec<Tuple>> = vec![Vec::new(); 4];
        compiled.scatter(tuples, &mut seq, &mut bufs).unwrap();
        assert_eq!(seq, 100);
        let total: usize = bufs.iter().map(Vec::len).sum();
        assert_eq!(total, 100);
        // Same key → same bucket as the slow path.
        for (w, buf) in bufs.iter().enumerate() {
            for t in buf {
                let slow = PartitionStrategy::Hash(vec!["id".into()])
                    .route(t, 0, 4)
                    .unwrap();
                assert_eq!(slow, vec![w]);
            }
        }
    }
}
