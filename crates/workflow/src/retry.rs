//! Per-operator retry policy with bounded exponential backoff.
//!
//! The paper's GUI-paradigm pitch (§III-A) is operator-level isolation:
//! a fault should cost one operator's quantum, not the pipeline. The
//! fault harness ([`crate::fault`]) made injected failures deterministic
//! and the drain path made them survivable; this module makes them
//! *recoverable*. A [`RetryPolicy`] gives each operator a budget of
//! quantum replays: when a task's run quantum faults (a caught panic, a
//! poisoned mailbox payload, a decode error), the pooled executor
//! re-runs the quantum with the held input batch replayed — exactly
//! once per tuple — instead of flipping the operator to sticky
//! `Failed`. Only an exhausted budget degrades to the drain path.
//!
//! Policies are carried by [`crate::EngineConfig::retry`] (so both
//! engines share one configuration surface) or handed straight to
//! [`crate::LiveExecutor::with_retry`]. The default [`RetryConfig`] is
//! disabled (`max_attempts = 0`): runs without an explicit policy are
//! byte-identical to the pre-retry engine.

use std::time::Duration;

/// Bounded exponential backoff between retry attempts.
///
/// The `i`-th retry (0-based) sleeps `base * factor^i`, capped at
/// `cap`. The executor sleeps inside the retried task's own run
/// quantum, so backoff throttles the faulting operator without
/// blocking the rest of the pool.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use scriptflow_workflow::retry::Backoff;
///
/// let b = Backoff::default();
/// assert_eq!(b.delay(0), Duration::from_millis(1));
/// assert_eq!(b.delay(1), Duration::from_millis(2));
/// assert_eq!(b.delay(30), b.cap, "growth is bounded by the cap");
/// assert_eq!(Backoff::none().delay(5), Duration::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// Delay before the first retry.
    pub base: Duration,
    /// Multiplier applied per subsequent retry.
    pub factor: u32,
    /// Upper bound on any single delay.
    pub cap: Duration,
}

impl Backoff {
    /// No delay between attempts (tests and latency-critical paths).
    pub const fn none() -> Self {
        Backoff {
            base: Duration::ZERO,
            factor: 1,
            cap: Duration::ZERO,
        }
    }

    /// The delay before the `retry`-th replay (0-based), bounded by
    /// [`Backoff::cap`].
    pub fn delay(&self, retry: u32) -> Duration {
        let mult = self.factor.max(1).saturating_pow(retry.min(16));
        self.base.saturating_mul(mult).min(self.cap)
    }
}

impl Default for Backoff {
    /// 1 ms doubling per retry, capped at 20 ms — long enough to let a
    /// transient condition clear, short enough that a full default
    /// budget costs single-digit milliseconds.
    fn default() -> Self {
        Backoff {
            base: Duration::from_millis(1),
            factor: 2,
            cap: Duration::from_millis(20),
        }
    }
}

/// Retry budget for one operator: how many times a faulted run quantum
/// may be replayed before the operator degrades to the drain path.
///
/// # Examples
///
/// ```
/// use scriptflow_workflow::retry::RetryPolicy;
///
/// assert_eq!(RetryPolicy::default().max_attempts, 3);
/// assert!(RetryPolicy::default().enabled());
/// assert!(!RetryPolicy::disabled().enabled());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum quantum replays per operator worker. `0` disables
    /// retries entirely (the pre-retry drain behavior, byte-identical).
    pub max_attempts: u32,
    /// Delay schedule between replays.
    pub backoff: Backoff,
}

impl RetryPolicy {
    /// No retries: every fault takes the drain path immediately.
    pub const fn disabled() -> Self {
        RetryPolicy {
            max_attempts: 0,
            backoff: Backoff::none(),
        }
    }

    /// A policy with `max_attempts` replays and the default backoff.
    pub fn attempts(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts,
            ..RetryPolicy::default()
        }
    }

    /// Builder-style setter for the backoff schedule.
    pub fn with_backoff(mut self, backoff: Backoff) -> Self {
        self.backoff = backoff;
        self
    }

    /// True when this policy allows at least one replay.
    pub fn enabled(&self) -> bool {
        self.max_attempts > 0
    }
}

impl Default for RetryPolicy {
    /// Three replays with the default exponential backoff.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff: Backoff::default(),
        }
    }
}

/// Engine-level retry configuration: one default [`RetryPolicy`] plus
/// per-operator overrides, resolved by operator name.
///
/// The [`Default`] configuration is fully disabled, so an
/// [`crate::EngineConfig`] built without touching `retry` reproduces
/// the pre-retry engines exactly.
///
/// # Examples
///
/// ```
/// use scriptflow_workflow::retry::{RetryConfig, RetryPolicy};
///
/// let cfg = RetryConfig::uniform(RetryPolicy::attempts(3))
///     .with_override("sink", RetryPolicy::disabled());
/// assert_eq!(cfg.policy_for("parse").max_attempts, 3);
/// assert_eq!(cfg.policy_for("sink").max_attempts, 0);
/// assert!(cfg.enabled());
/// assert!(!RetryConfig::default().enabled());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryConfig {
    /// Policy for operators without an override.
    pub default: RetryPolicy,
    /// Per-operator `(name, policy)` overrides; the first match wins.
    pub overrides: Vec<(String, RetryPolicy)>,
}

impl Default for RetryConfig {
    /// Disabled for every operator — deliberately *not* the derived
    /// default (which would inherit `RetryPolicy::default()`'s three
    /// attempts): `EngineConfig::default()` embeds this and must
    /// reproduce the pre-retry engines byte-for-byte.
    fn default() -> Self {
        RetryConfig::uniform(RetryPolicy::disabled())
    }
}

impl RetryConfig {
    /// One policy for every operator.
    pub fn uniform(policy: RetryPolicy) -> Self {
        RetryConfig {
            default: policy,
            overrides: Vec::new(),
        }
    }

    /// Builder-style per-operator override.
    pub fn with_override(mut self, op: impl Into<String>, policy: RetryPolicy) -> Self {
        self.overrides.push((op.into(), policy));
        self
    }

    /// The policy effective for operator `op`.
    pub fn policy_for(&self, op: &str) -> &RetryPolicy {
        self.overrides
            .iter()
            .find(|(name, _)| name == op)
            .map(|(_, p)| p)
            .unwrap_or(&self.default)
    }

    /// True when any operator may retry.
    pub fn enabled(&self) -> bool {
        self.default.enabled() || self.overrides.iter().any(|(_, p)| p.enabled())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let b = Backoff::default();
        assert_eq!(b.delay(0), Duration::from_millis(1));
        assert_eq!(b.delay(2), Duration::from_millis(4));
        assert_eq!(b.delay(10), Duration::from_millis(20));
        // A huge retry index must not overflow.
        assert_eq!(b.delay(u32::MAX), Duration::from_millis(20));
    }

    #[test]
    fn default_config_is_disabled() {
        // The wire-format guarantee: `EngineConfig::default()` (which
        // embeds `RetryConfig::default()`) must reproduce the
        // pre-retry engines byte-for-byte, so the derived default has
        // to be the disabled policy.
        let cfg = RetryConfig::default();
        assert_eq!(cfg.default.max_attempts, 0);
        assert!(cfg.overrides.is_empty());
        assert!(!cfg.enabled());
    }

    #[test]
    fn overrides_resolve_by_name() {
        let cfg = RetryConfig::uniform(RetryPolicy::attempts(2))
            .with_override("parse", RetryPolicy::attempts(5))
            .with_override("parse", RetryPolicy::disabled());
        // First match wins.
        assert_eq!(cfg.policy_for("parse").max_attempts, 5);
        assert_eq!(cfg.policy_for("other").max_attempts, 2);
    }

    #[test]
    fn policy_builders() {
        let p = RetryPolicy::attempts(7).with_backoff(Backoff::none());
        assert_eq!(p.max_attempts, 7);
        assert_eq!(p.backoff.delay(3), Duration::ZERO);
        assert!(p.enabled());
    }
}
