//! Multi-tenant workflow service: many concurrent DAGs on one shared
//! worker pool.
//!
//! Every [`crate::exec_live::LiveExecutor`] run owns a private pool; a
//! production engine serving many interactively-edited pipelines runs
//! hundreds of concurrent workflow instances against **one** fixed pool.
//! [`WorkflowService`] lifts the pool out of the run, in the style of
//! Databend's `initialize_executor(workers)` / `schedule(worker_num)`
//! split: runs are *submitted*, the service admits them, and a fixed set
//! of worker threads time-slices operator quanta across every admitted
//! run.
//!
//! # Admission
//!
//! [`WorkflowService::submit`] validates the run (fault plans are
//! compiled up front), builds its task set, and either **dispatches** it
//! (fewer than `max_active_runs` runs executing), **queues** it (bounded
//! admission queue), or **rejects** it explicitly ([`SubmitError`]):
//!
//! * [`SubmitError::QueueFull`] — the admission queue is at capacity;
//!   overload is surfaced to the caller instead of buffered unboundedly.
//! * [`SubmitError::TenantOverQuota`] — the tenant already has
//!   `max_in_flight` submissions admitted or queued.
//! * [`SubmitError::SinkBusy`] — the workflow shares result storage
//!   (see [`crate::operator::OperatorFactory::shared_state_id`]) with a
//!   run that is still admitted; running both would interleave rows
//!   into one buffer. Wait for the earlier handle, then resubmit.
//!
//! Accepted submissions return a [`RunHandle`] that can be polled
//! ([`RunHandle::status`]) or awaited ([`RunHandle::wait`]).
//!
//! # Weighted-fair scheduling and isolation
//!
//! Each worker repeatedly picks the active run with the smallest
//! *virtual time* that has a ready task, and executes **one quantum**
//! (at most [`crate::exec_live`]'s per-quantum message budget) of it.
//! The quantum's measured wall-clock, divided by the tenant's
//! [`TenantQuota::weight`], is charged to the run's virtual time — a
//! weight-2 tenant's runs accrue virtual time half as fast and therefore
//! receive twice the quanta under contention. Newly dispatched runs
//! start at the minimum active virtual time, so they neither starve nor
//! monopolize.
//!
//! Isolation is load-bearing, not best-effort:
//!
//! * **Retry storms park, never sleep.** A single-run pool serves a
//!   retry backoff by sleeping its worker; on a shared pool that would
//!   stall neighbors. Service runs defer the backoff instead — the task
//!   is parked with a deadline, the worker moves on to another run's
//!   quantum, and a timer re-readies the task when the backoff elapses.
//! * **Per-run mailbox budgets.** Each run's mailboxes are bounded by
//!   its tenant's [`TenantQuota::mailbox_budget`], so one run's
//!   backpressure holds *its own* producers, not the pool.
//! * **Per-run fault domains.** Faults, drain-mode failures, and stall
//!   recovery (dropped EOS) are all scoped to the owning run's task set;
//!   a wedged run is force-finished by the same quiescence detector the
//!   single-run pool uses, while neighbors keep executing.
//!
//! # Observability
//!
//! Every run feeds its own [`LiveTracer`]; the finished [`RunReport`]
//! carries the same [`LiveRunResult`] (metrics + [`PoolStats`]) a solo
//! pooled run produces, the terminal [`ProgressTrace`], and
//! [`RunReport::trace_json`] exports it tagged with tenant and run id
//! ([`crate::trace::TraceJson::from_trace_labeled`]). Per-tenant
//! counters (submissions, completions, rejections, quanta, busy time)
//! aggregate in [`TenantStats`]; [`ServiceStats`] snapshots the pool.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use scriptflow_datakit::{Batch, DataType, Schema, Value};
//! use scriptflow_workflow::ops::{ScanOp, SinkOp};
//! use scriptflow_workflow::service::{RunOptions, ServiceConfig, WorkflowService};
//! use scriptflow_workflow::{PartitionStrategy, WorkflowBuilder};
//!
//! let schema = Schema::of(&[("id", DataType::Int)]);
//! let batch = Batch::from_rows(schema, (0..32).map(|i| vec![Value::Int(i)]).collect()).unwrap();
//! let mut b = WorkflowBuilder::new();
//! let scan = b.add(Arc::new(ScanOp::new("scan", batch)), 1);
//! let sink_op = Arc::new(SinkOp::new("sink"));
//! let handle = sink_op.handle();
//! let sink = b.add(sink_op, 1);
//! b.connect(scan, sink, 0, PartitionStrategy::Single);
//! let wf = b.build().unwrap();
//!
//! let svc = WorkflowService::new(ServiceConfig::default().with_pool_size(2));
//! let run = svc.submit("tenant-a", &wf, RunOptions::default()).unwrap();
//! let report = run.wait();
//! assert!(report.result.is_ok());
//! assert_eq!(handle.len(), 32);
//! ```

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::fmt;
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use scriptflow_core::fingerprint::OpFingerprint;
use scriptflow_simcluster::SimDuration;

use crate::cache::{
    apply_evictions_to_metrics, apply_evictions_to_trace, commit_recordings_as, prepare,
    CacheRecording, CommitStats, ResultCache,
};
use crate::dag::Workflow;
use crate::exec_live::{
    assemble_live_result, build_tasks, default_pool_size, ops_meta, LiveRunResult, OpMeta, Pool,
    PoolStats, QuantumScheduler, Task,
};
use crate::fault::{CompiledFaults, FaultPlan};
use crate::operator::{OperatorFactory, WorkflowError, WorkflowResult};
use crate::retry::RetryConfig;
use crate::trace::{ProgressTrace, TraceJson};
use crate::trace_live::LiveTracer;

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Per-tenant fair-share contract: scheduling weight, concurrency
/// ceiling, and mailbox budget.
///
/// # Examples
///
/// ```
/// use scriptflow_workflow::service::TenantQuota;
///
/// let premium = TenantQuota::default()
///     .with_weight(4)
///     .with_max_in_flight(16)
///     .with_mailbox_budget(128);
/// assert_eq!(premium.weight(), 4);
/// assert_eq!(TenantQuota::default().weight(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    weight: u32,
    max_in_flight: usize,
    mailbox_budget: usize,
    spill_budget: Option<u64>,
    cache_budget: Option<u64>,
}

impl Default for TenantQuota {
    /// Weight 1, at most 8 in-flight submissions, 64-message mailboxes,
    /// no spill-bytes or cache-bytes ceiling.
    fn default() -> Self {
        TenantQuota {
            weight: 1,
            max_in_flight: 8,
            mailbox_budget: 64,
            spill_budget: None,
            cache_budget: None,
        }
    }
}

impl TenantQuota {
    /// Fair-share weight: under contention this tenant's runs receive
    /// quanta in proportion to `weight` (clamped to at least 1).
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight.max(1);
        self
    }

    /// Maximum submissions this tenant may have admitted or queued at
    /// once; the excess is rejected with [`SubmitError::TenantOverQuota`].
    pub fn with_max_in_flight(mut self, max_in_flight: usize) -> Self {
        self.max_in_flight = max_in_flight.max(1);
        self
    }

    /// Mailbox capacity (messages) for every edge of this tenant's
    /// runs — the run-local backpressure bound.
    pub fn with_mailbox_budget(mut self, budget: usize) -> Self {
        self.mailbox_budget = budget.max(1);
        self
    }

    /// The fair-share weight.
    pub fn weight(&self) -> u32 {
        self.weight
    }

    /// The in-flight submission ceiling.
    pub fn max_in_flight(&self) -> usize {
        self.max_in_flight
    }

    /// The per-edge mailbox capacity.
    pub fn mailbox_budget(&self) -> usize {
        self.mailbox_budget
    }

    /// Ceiling on the tenant's *cumulative* spilled bytes across its
    /// finished runs (see [`crate::spill`]). A tenant at or past the
    /// ceiling has further submissions rejected with
    /// [`SubmitError::SpillOverQuota`] until the operator raises its
    /// quota — shared-pool disk is a budgeted resource, exactly like
    /// in-flight slots. `None` (the default) leaves spill unmetered.
    pub fn with_spill_budget(mut self, bytes: u64) -> Self {
        self.spill_budget = Some(bytes);
        self
    }

    /// The cumulative spill-bytes ceiling, if one is set.
    pub fn spill_budget(&self) -> Option<u64> {
        self.spill_budget
    }

    /// Ceiling on the compressed bytes this tenant's runs may *add* to
    /// the service's shared [`ResultCache`] (see
    /// [`RunOptions::with_result_cache`]). A tenant at or past the
    /// ceiling has further submissions rejected with
    /// [`SubmitError::CacheOverQuota`] — shared cache memory is a
    /// budgeted resource, exactly like spill disk. `None` (the default)
    /// leaves publication unmetered.
    pub fn with_cache_budget(mut self, bytes: u64) -> Self {
        self.cache_budget = Some(bytes);
        self
    }

    /// The cumulative published-cache-bytes ceiling, if one is set.
    pub fn cache_budget(&self) -> Option<u64> {
        self.cache_budget
    }
}

/// Service-wide sizing: pool width, concurrent-run ceiling, admission
/// queue depth, and the quota handed to tenants that have none set.
///
/// # Examples
///
/// ```
/// use scriptflow_workflow::service::{ServiceConfig, TenantQuota};
///
/// let cfg = ServiceConfig::default()
///     .with_pool_size(4)
///     .with_max_active_runs(8)
///     .with_queue_capacity(32)
///     .with_default_quota(TenantQuota::default().with_weight(2));
/// # let _ = cfg;
/// ```
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    pool_size: Option<usize>,
    max_active_runs: usize,
    queue_capacity: usize,
    default_quota: TenantQuota,
    result_cache: Option<Arc<ResultCache>>,
}

impl Default for ServiceConfig {
    /// Host-parallelism pool, 4 concurrently executing runs, a
    /// 16-submission admission queue, and [`TenantQuota::default`].
    fn default() -> Self {
        ServiceConfig {
            pool_size: None,
            max_active_runs: 4,
            queue_capacity: 16,
            default_quota: TenantQuota::default(),
            result_cache: None,
        }
    }
}

impl ServiceConfig {
    /// Worker threads in the shared pool (default: host parallelism).
    pub fn with_pool_size(mut self, threads: usize) -> Self {
        self.pool_size = Some(threads.max(1));
        self
    }

    /// Runs executing concurrently; later admissions queue.
    pub fn with_max_active_runs(mut self, runs: usize) -> Self {
        self.max_active_runs = runs.max(1);
        self
    }

    /// Admission-queue depth; beyond it submissions are rejected with
    /// [`SubmitError::QueueFull`].
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Quota applied to tenants without an explicit
    /// [`WorkflowService::set_quota`].
    pub fn with_default_quota(mut self, quota: TenantQuota) -> Self {
        self.default_quota = quota;
        self
    }

    /// Serve cache-enabled runs from `cache` instead of a fresh
    /// in-memory one — e.g. a budgeted [`ResultCache::with_byte_budget`]
    /// or a [`ResultCache::persistent`] store that outlives the service.
    pub fn with_result_cache(mut self, cache: Arc<ResultCache>) -> Self {
        self.result_cache = Some(cache);
        self
    }
}

/// Per-submission knobs, mirroring the solo executor's builder.
///
/// # Examples
///
/// ```
/// use scriptflow_workflow::service::RunOptions;
/// use scriptflow_workflow::RetryConfig;
///
/// let opts = RunOptions::default()
///     .with_batch_size(128)
///     .with_columnar(true)
///     .with_retry(RetryConfig::default());
/// # let _ = opts;
/// ```
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    batch_size: Option<usize>,
    columnar: bool,
    faults: Option<FaultPlan>,
    retry: RetryConfig,
    memory_budget: Option<usize>,
    result_cache: bool,
}

impl RunOptions {
    /// Tuples per batch on every edge (default 256).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = Some(batch_size.max(1));
        self
    }

    /// Route eligible edges through columnar batches (see
    /// [`crate::exec_live::LiveExecutor::with_columnar`]).
    pub fn with_columnar(mut self, columnar: bool) -> Self {
        self.columnar = columnar;
        self
    }

    /// Inject a seeded fault plan into this run (scoped to this run's
    /// task set; neighbors are unaffected).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Per-operator retry policy. On the shared pool, backoffs park the
    /// task on a timer instead of sleeping a worker.
    pub fn with_retry(mut self, retry: RetryConfig) -> Self {
        self.retry = retry;
        self
    }

    /// Bound every blocking operator's in-memory state for this run
    /// (see [`crate::exec_live::LiveExecutor::with_memory_budget`]).
    /// Spilled bytes are charged against the tenant's
    /// [`TenantQuota::with_spill_budget`] ceiling when the run drains.
    pub fn with_memory_budget(mut self, bytes: Option<usize>) -> Self {
        self.memory_budget = bytes;
        self
    }

    /// Plan this run against the service's shared [`ResultCache`] (see
    /// [`crate::cache`]): operator outputs already published under their
    /// content fingerprints are served without recomputation, misses
    /// record for publication when the run completes cleanly, and the
    /// cache is shared across every tenant that opts in. Planning is
    /// deferred to dispatch, so a submission identical to a run already
    /// executing waits for it and is then served from what it published
    /// (single-flight). Default off: the run executes every operator.
    pub fn with_result_cache(mut self, enabled: bool) -> Self {
        self.result_cache = enabled;
        self
    }

    fn batch_size(&self) -> usize {
        self.batch_size.unwrap_or(256)
    }
}

// ---------------------------------------------------------------------------
// Submission results
// ---------------------------------------------------------------------------

/// Why a submission was refused. Every variant is an *explicit*
/// rejection — the service never buffers beyond its declared bounds.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitError {
    /// The admission queue is at capacity.
    QueueFull {
        /// The configured queue depth that was exhausted.
        capacity: usize,
    },
    /// The tenant hit its [`TenantQuota::max_in_flight`] ceiling.
    TenantOverQuota {
        /// The over-quota tenant.
        tenant: String,
        /// Submissions already admitted or queued for it.
        in_flight: usize,
    },
    /// The tenant's finished runs have already spilled at least its
    /// [`TenantQuota::with_spill_budget`] ceiling in compressed bytes;
    /// new submissions are refused until the quota is raised.
    SpillOverQuota {
        /// The over-quota tenant.
        tenant: String,
        /// Compressed bytes the tenant's runs have spilled so far.
        spilled_bytes: u64,
        /// The configured ceiling that was exhausted.
        budget: u64,
    },
    /// The tenant's finished runs have already published at least its
    /// [`TenantQuota::with_cache_budget`] ceiling of compressed bytes
    /// into the shared result cache; new submissions are refused until
    /// the quota is raised.
    CacheOverQuota {
        /// The over-quota tenant.
        tenant: String,
        /// Compressed bytes the tenant's runs have published so far.
        cache_bytes: u64,
        /// The configured ceiling that was exhausted.
        budget: u64,
    },
    /// The workflow shares result storage with a run that is still
    /// admitted; running both concurrently would interleave rows.
    SinkBusy {
        /// The operator whose shared state is still owned by an
        /// admitted run.
        operator: String,
    },
    /// The submission itself is invalid (e.g. its fault plan names an
    /// unknown operator).
    Invalid(WorkflowError),
    /// The service is shutting down and accepts no new work.
    ShuttingDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "admission queue full ({capacity} submissions queued)")
            }
            SubmitError::TenantOverQuota { tenant, in_flight } => {
                write!(
                    f,
                    "tenant `{tenant}` over quota ({in_flight} runs in flight)"
                )
            }
            SubmitError::SpillOverQuota {
                tenant,
                spilled_bytes,
                budget,
            } => {
                write!(
                    f,
                    "tenant `{tenant}` over spill quota ({spilled_bytes} of {budget} bytes spilled)"
                )
            }
            SubmitError::CacheOverQuota {
                tenant,
                cache_bytes,
                budget,
            } => {
                write!(
                    f,
                    "tenant `{tenant}` over cache quota ({cache_bytes} of {budget} bytes published)"
                )
            }
            SubmitError::SinkBusy { operator } => {
                write!(
                    f,
                    "shared state of operator `{operator}` is owned by an admitted run"
                )
            }
            SubmitError::Invalid(e) => write!(f, "invalid submission: {e}"),
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Where a submission currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// Admitted, waiting in the admission queue for an execution slot.
    Queued,
    /// Executing on the shared pool.
    Running,
    /// Finished; [`RunHandle::wait`] returns immediately.
    Finished,
}

/// Terminal record of one submission.
#[derive(Debug)]
pub struct RunReport {
    /// Tenant that submitted the run.
    pub tenant: String,
    /// Service-assigned run id (unique for the service's lifetime).
    pub run_id: u64,
    /// Time spent in the admission queue before dispatch.
    pub queue_wait: Duration,
    /// The run's outcome: the same result shape a solo pooled
    /// [`crate::exec_live::LiveExecutor`] run produces, or the fault
    /// that failed it (drain semantics — see [`crate::fault`]).
    pub result: WorkflowResult<LiveRunResult>,
    /// Terminal progress trace (present even when `result` is `Err`,
    /// like [`crate::exec_live::LiveExecutor::run_observed`]).
    pub trace: ProgressTrace,
}

impl RunReport {
    /// Pool counters, when the run got far enough to report them.
    pub fn pool_stats(&self) -> Option<PoolStats> {
        self.result.as_ref().ok().and_then(|r| r.pool)
    }

    /// Export the trace tagged with this run's tenant and id, so traces
    /// archived from a shared pool stay attributable.
    ///
    /// # Examples
    ///
    /// See [`crate::trace::TraceJson::from_trace_labeled`].
    pub fn trace_json(&self) -> TraceJson {
        TraceJson::from_trace_labeled(&self.trace, &self.tenant, self.run_id)
    }
}

/// One submission's seat: the slot the workers publish progress into
/// and the condvar `wait` blocks on.
struct Seat {
    slot: Mutex<Slot>,
    cv: Condvar,
}

enum Slot {
    Queued,
    Running,
    Finished(Option<RunReport>),
}

/// Caller's handle to an admitted submission: poll it or await it.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use scriptflow_datakit::{Batch, DataType, Schema, Value};
/// use scriptflow_workflow::ops::{ScanOp, SinkOp};
/// use scriptflow_workflow::service::{RunOptions, ServiceConfig, WorkflowService};
/// use scriptflow_workflow::{PartitionStrategy, WorkflowBuilder};
///
/// let schema = Schema::of(&[("id", DataType::Int)]);
/// let batch = Batch::from_rows(schema, (0..4).map(|i| vec![Value::Int(i)]).collect()).unwrap();
/// let mut b = WorkflowBuilder::new();
/// let scan = b.add(Arc::new(ScanOp::new("scan", batch)), 1);
/// let sink = b.add(Arc::new(SinkOp::new("sink")), 1);
/// b.connect(scan, sink, 0, PartitionStrategy::Single);
/// let wf = b.build().unwrap();
///
/// let svc = WorkflowService::new(ServiceConfig::default().with_pool_size(1));
/// let run = svc.submit("t", &wf, RunOptions::default()).unwrap();
/// assert_eq!(run.tenant(), "t");
/// let report = run.wait(); // blocks until the run drains
/// assert_eq!(report.run_id, 0);
/// assert!(report.result.is_ok());
/// ```
pub struct RunHandle {
    run_id: u64,
    tenant: String,
    seat: Arc<Seat>,
}

impl fmt::Debug for RunHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunHandle")
            .field("run_id", &self.run_id)
            .field("tenant", &self.tenant)
            .field("status", &self.status())
            .finish()
    }
}

impl RunHandle {
    /// The service-assigned run id.
    pub fn run_id(&self) -> u64 {
        self.run_id
    }

    /// The submitting tenant.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Non-blocking lifecycle probe.
    pub fn status(&self) -> RunStatus {
        match &*self.seat.slot.lock() {
            Slot::Queued => RunStatus::Queued,
            Slot::Running => RunStatus::Running,
            Slot::Finished(_) => RunStatus::Finished,
        }
    }

    /// True once the run has drained and its report is ready.
    pub fn is_finished(&self) -> bool {
        self.status() == RunStatus::Finished
    }

    /// Block until the run drains, consuming the handle and returning
    /// its [`RunReport`].
    pub fn wait(self) -> RunReport {
        let mut slot = self.seat.slot.lock();
        loop {
            if let Slot::Finished(report) = &mut *slot {
                return report
                    .take()
                    .expect("report taken once: wait() consumes the handle");
            }
            self.seat.cv.wait(&mut slot);
        }
    }
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

/// Aggregate per-tenant counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Submissions admitted (dispatched or queued).
    pub submitted: u64,
    /// Runs that finished (cleanly or failed).
    pub completed: u64,
    /// Finished runs whose result was an error.
    pub failed: u64,
    /// Submissions rejected (queue full, over quota, or sink busy).
    pub rejected: u64,
    /// Scheduling quanta executed on behalf of this tenant.
    pub quanta: u64,
    /// Wall-clock the pool spent inside this tenant's quanta.
    pub busy: Duration,
    /// Compressed bytes this tenant's finished runs spilled under a
    /// memory budget (charged against
    /// [`TenantQuota::with_spill_budget`]).
    pub spilled_bytes: u64,
    /// Operators this tenant's runs were served straight from the
    /// shared result cache (each served operator counts once).
    pub cache_hits: u64,
    /// Operators that ran under the shared result cache, missed, and
    /// recorded their output.
    pub cache_misses: u64,
    /// Compressed bytes this tenant's cleanly finished runs added to
    /// the shared result cache (charged against
    /// [`TenantQuota::with_cache_budget`]).
    pub cache_published: u64,
    /// Entries the shared cache's byte budget evicted while this
    /// tenant's recordings were committed. Evicted bytes are credited
    /// back to their owning tenant's live footprint, so these no longer
    /// count against [`TenantQuota::with_cache_budget`].
    pub cache_evictions: u64,
}

/// Point-in-time service snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Worker threads in the shared pool.
    pub pool_threads: usize,
    /// Runs currently executing.
    pub active_runs: usize,
    /// Runs waiting in the admission queue.
    pub queued_runs: usize,
    /// Runs finished over the service's lifetime.
    pub completed_runs: u64,
    /// Submissions rejected over the service's lifetime.
    pub rejected_runs: u64,
}

// ---------------------------------------------------------------------------
// Internal scheduler state
// ---------------------------------------------------------------------------

/// A submission admitted but waiting for an execution slot. Its task
/// set is already built (operator instances created, sources chunked),
/// so dispatch is cheap and happens under the scheduler lock.
struct PendingRun {
    run_id: u64,
    tenant: String,
    seat: Arc<Seat>,
    submitted: Instant,
    tasks: Vec<Task>,
    faults: Option<CompiledFaults>,
    ops: Vec<OpMeta>,
    total_workers: usize,
    factories: Vec<Arc<dyn OperatorFactory>>,
    sink_ids: Vec<usize>,
    /// Present for cache-enabled submissions: task construction is
    /// deferred to dispatch, so the plan sees every segment published
    /// before the run starts — and an identical in-flight DAG holds
    /// this submission back until its results are publishable
    /// (single-flight).
    cache: Option<CacheSubmission>,
}

/// Everything a cache-enabled submission needs to build its task set at
/// dispatch time instead of at admission.
struct CacheSubmission {
    wf: Workflow,
    batch_size: usize,
    mailbox_budget: usize,
    faults: Option<FaultPlan>,
    retry: RetryConfig,
    columnar: bool,
    memory_budget: Option<usize>,
    /// Whole-DAG content fingerprint — the single-flight dedup key.
    workflow_fp: OpFingerprint,
}

/// A run executing on the shared pool.
struct ActiveRun {
    run_id: u64,
    tenant: String,
    seat: Arc<Seat>,
    core: Arc<Pool>,
    /// Tasks with a quantum to run, FIFO within the run.
    ready: VecDeque<usize>,
    /// Quanta of this run currently executing on workers.
    running: usize,
    /// Weighted-fair virtual time: quantum nanos / tenant weight.
    vtime: u64,
    weight: u64,
    submitted: Instant,
    dispatched: Instant,
    ops: Vec<OpMeta>,
    total_workers: usize,
    sink_ids: Vec<usize>,
    /// Cache-enabled runs: the whole-DAG fingerprint that holds
    /// identical submissions in the admission queue while this run is
    /// active.
    cache_fp: Option<OpFingerprint>,
    /// Recordings teed during the run, published on clean completion.
    recordings: Vec<CacheRecording>,
}

struct Tenant {
    quota: TenantQuota,
    in_flight: usize,
    stats: TenantStats,
}

struct SvcState {
    accepting: bool,
    next_run: u64,
    tenants: HashMap<String, Tenant>,
    active: Vec<ActiveRun>,
    admission: VecDeque<PendingRun>,
    /// Deferred retry backoffs: min-heap of (deadline, run, task).
    parked: BinaryHeap<Reverse<(Instant, u64, usize)>>,
    /// Workers currently blocked on the scheduler condvar.
    idle_workers: usize,
    completed_runs: u64,
    rejected_runs: u64,
}

struct Shared {
    state: Mutex<SvcState>,
    cv: Condvar,
    pool_threads: usize,
    max_active_runs: usize,
    queue_capacity: usize,
    default_quota: TenantQuota,
    /// One result cache per service, shared by every tenant whose runs
    /// opt in via [`RunOptions::with_result_cache`].
    cache: Arc<ResultCache>,
}

impl QuantumScheduler for Shared {
    fn task_ready(&self, run: u64, tid: usize) {
        let mut st = self.state.lock();
        if let Some(r) = st.active.iter_mut().find(|r| r.run_id == run) {
            r.ready.push_back(tid);
            self.cv.notify_one();
        }
    }

    fn task_parked(&self, run: u64, tid: usize, until: Instant) {
        let mut st = self.state.lock();
        st.parked.push(Reverse((until, run, tid)));
        // A waiting worker may need to shorten its sleep to this
        // deadline.
        self.cv.notify_one();
    }

    fn run_finished(&self, _run: u64) {
        // Finalization needs `running == 0`, which only a worker's
        // post-quantum accounting can observe; just wake them all.
        let _st = self.state.lock();
        self.cv.notify_all();
    }
}

impl Shared {
    /// Move a pending run onto the pool: clear factory-shared state
    /// (the "sink cleared per run" invariant), wire its core to this
    /// scheduler, and seed every task as ready.
    fn dispatch(this: &Arc<Shared>, st: &mut SvcState, mut p: PendingRun) {
        // Cache-enabled submissions plan now, against everything
        // published so far (including by the identical run that may
        // have just finished and unblocked this one).
        let mut cache_fp = None;
        let mut recordings = Vec::new();
        if let Some(cs) = p.cache.take() {
            let plan = prepare(&cs.wf, &this.cache, SimDuration::ZERO);
            // Faults naming a served/skipped operator have nothing to
            // fire on; recompile against the plan and drop the rest.
            p.faults = cs
                .faults
                .as_ref()
                .and_then(|f| CompiledFaults::compile(f, &plan.wf).ok());
            p.tasks = build_tasks(
                &plan.wf,
                cs.batch_size,
                cs.mailbox_budget,
                p.faults.as_ref(),
                &cs.retry,
                cs.columnar,
                cs.memory_budget,
            );
            p.ops = ops_meta(&plan.wf);
            p.total_workers = plan.wf.total_workers();
            cache_fp = Some(cs.workflow_fp);
            recordings = plan.recordings;
        }
        for f in &p.factories {
            f.reset_shared_state();
        }
        let names: Vec<String> = p.ops.iter().map(|o| o.name.clone()).collect();
        let workers: Vec<usize> = p.ops.iter().map(|o| o.workers).collect();
        let tracer = LiveTracer::new(names, &workers);
        let sched: Weak<dyn QuantumScheduler> = Arc::downgrade(this) as Weak<dyn QuantumScheduler>;
        let core = Arc::new(Pool::for_service(
            p.tasks,
            p.faults,
            this.pool_threads,
            tracer,
            sched,
            p.run_id,
        ));
        let ready: VecDeque<usize> = core.seed_all().into();
        let weight = st
            .tenants
            .get(&p.tenant)
            .map_or(1, |t| u64::from(t.quota.weight.max(1)));
        // Start at the minimum active virtual time: the newcomer gets
        // its fair share immediately without erasing history.
        let vtime = st.active.iter().map(|r| r.vtime).min().unwrap_or(0);
        *p.seat.slot.lock() = Slot::Running;
        st.active.push(ActiveRun {
            run_id: p.run_id,
            tenant: p.tenant,
            seat: p.seat,
            core,
            ready,
            running: 0,
            vtime,
            weight,
            submitted: p.submitted,
            dispatched: Instant::now(),
            ops: p.ops,
            total_workers: p.total_workers,
            sink_ids: p.sink_ids,
            cache_fp,
            recordings,
        });
    }

    /// True while an active cache-enabled run carries the same
    /// whole-DAG fingerprint as pending `p` — dispatching now would
    /// recompute work the active run is about to publish.
    fn cache_blocked(active: &[ActiveRun], p: &PendingRun) -> bool {
        p.cache.as_ref().is_some_and(|cs| {
            active
                .iter()
                .any(|r| r.cache_fp == Some(cs.workflow_fp))
        })
    }

    /// Assemble a drained run's report, settle tenant accounting, and
    /// publish it to the seat.
    fn finalize(&self, st: &mut SvcState, run: ActiveRun) {
        let mut trace = run.core.finish_trace(Vec::new());
        let err = run.core.take_error();
        let elapsed = run.dispatched.elapsed();
        let pool_stats = run.core.stats();
        // Publish recordings only from clean runs: a faulted or
        // replayed quantum may have teed partial output (the same
        // discipline as the solo executors). Entries are charged to the
        // submitting tenant so quota accounting can track live bytes.
        let clean = err.is_none()
            && pool_stats.faults_injected == 0
            && pool_stats.retries_attempted == 0;
        let commit = if clean {
            commit_recordings_as(&run.recordings, &self.cache, Some(&run.tenant))
        } else {
            CommitStats::default()
        };
        apply_evictions_to_trace(&commit, &mut trace);
        let result = match err {
            Some(e) => Err(e),
            None => Ok({
                let mut res = assemble_live_result(
                    &run.ops,
                    run.total_workers,
                    elapsed,
                    run.core.tracer(),
                    pool_stats,
                    trace.clone(),
                );
                res.cache_published = commit.published;
                apply_evictions_to_metrics(&commit, &mut res.metrics);
                apply_evictions_to_trace(&commit, &mut res.trace);
                if let Some(pool) = res.pool.as_mut() {
                    pool.cache_evictions = commit.evictions;
                }
                res
            }),
        };
        // Spill accounting comes from the tracer, not the result: a run
        // that failed after spilling still consumed the disk.
        let run_spill = run.core.tracer().total_spilled_bytes();
        if let Some(t) = st.tenants.get_mut(&run.tenant) {
            t.in_flight = t.in_flight.saturating_sub(1);
            t.stats.completed += 1;
            t.stats.spilled_bytes += run_spill;
            t.stats.cache_hits += run.ops.iter().map(|o| o.cache_hits).sum::<u64>();
            t.stats.cache_misses += run.ops.iter().map(|o| o.cache_misses).sum::<u64>();
            t.stats.cache_published += commit.published;
            t.stats.cache_evictions += commit.evictions;
            if result.is_err() {
                t.stats.failed += 1;
            }
        }
        st.completed_runs += 1;
        let report = RunReport {
            tenant: run.tenant,
            run_id: run.run_id,
            queue_wait: run.dispatched.duration_since(run.submitted),
            result,
            trace,
        };
        *run.seat.slot.lock() = Slot::Finished(Some(report));
        run.seat.cv.notify_all();
    }

    /// Shared-pool worker: release due parks, finalize drained runs,
    /// admit queued ones, then execute one quantum of the minimum-
    /// virtual-time run with ready work — or sleep until the next park
    /// deadline / scheduling event.
    fn worker(self: Arc<Self>) {
        let mut st = self.state.lock();
        loop {
            // Phase 1: parked tasks whose backoff elapsed become ready.
            let now = Instant::now();
            while let Some(&Reverse((until, run, tid))) = st.parked.peek() {
                if until > now {
                    break;
                }
                st.parked.pop();
                if let Some(r) = st.active.iter_mut().find(|r| r.run_id == run) {
                    r.ready.push_back(tid);
                }
            }

            // Phase 2: finalize a drained run and backfill its slot from
            // the admission queue.
            if let Some(pos) = st
                .active
                .iter()
                .position(|r| r.core.finished() && r.running == 0)
            {
                let run = st.active.swap_remove(pos);
                self.finalize(&mut st, run);
                while st.active.len() < self.max_active_runs {
                    // Skip (don't pop) submissions held back by an
                    // identical active cache run.
                    let next = {
                        let active = &st.active;
                        st.admission
                            .iter()
                            .position(|p| !Shared::cache_blocked(active, p))
                    };
                    match next {
                        Some(i) => {
                            let p = st.admission.remove(i).expect("position is in range");
                            Shared::dispatch(&self, &mut st, p);
                        }
                        None => break,
                    }
                }
                self.cv.notify_all();
                continue;
            }

            // Phase 3: weighted-fair pick — the ready run that has
            // consumed the least weighted time goes first.
            let pick = st
                .active
                .iter()
                .enumerate()
                .filter(|(_, r)| !r.ready.is_empty())
                .min_by_key(|(_, r)| r.vtime)
                .map(|(i, _)| i);
            if let Some(idx) = pick {
                let tid = st.active[idx].ready.pop_front().expect("ready checked");
                st.active[idx].running += 1;
                let core = Arc::clone(&st.active[idx].core);
                let run_id = st.active[idx].run_id;
                let tenant = st.active[idx].tenant.clone();
                drop(st);

                let quantum_start = Instant::now();
                core.step(tid);
                let spent = quantum_start.elapsed();

                st = self.state.lock();
                if let Some(r) = st.active.iter_mut().find(|r| r.run_id == run_id) {
                    r.running -= 1;
                    let nanos = u64::try_from(spent.as_nanos()).unwrap_or(u64::MAX);
                    r.vtime = r.vtime.saturating_add((nanos / r.weight).max(1));
                }
                if let Some(t) = st.tenants.get_mut(&tenant) {
                    t.stats.quanta += 1;
                    t.stats.busy += spent;
                }
                continue;
            }

            // Phase 4: shutdown once drained.
            if !st.accepting && st.active.is_empty() && st.admission.is_empty() {
                return;
            }

            // Phase 5: quiescence check. Everyone else idle, nothing
            // parked, yet a run still has active tasks with no ready
            // work and no running quanta — its pipeline wedged (dropped
            // EOS). Run the per-run stall recovery outside the lock.
            if st.idle_workers + 1 == self.pool_threads && st.parked.is_empty() {
                let wedged: Vec<Arc<Pool>> = st
                    .active
                    .iter()
                    .filter(|r| {
                        r.running == 0
                            && r.ready.is_empty()
                            && !r.core.finished()
                            && r.core.has_active_tasks()
                    })
                    .map(|r| Arc::clone(&r.core))
                    .collect();
                if !wedged.is_empty() {
                    drop(st);
                    for core in wedged {
                        core.recover_stall();
                    }
                    st = self.state.lock();
                    continue;
                }
            }

            // Phase 6: sleep until the next park deadline or a
            // scheduling event.
            st.idle_workers += 1;
            match st.parked.peek().map(|Reverse((until, _, _))| *until) {
                Some(deadline) => {
                    let timeout = deadline.saturating_duration_since(Instant::now());
                    self.cv.wait_for(&mut st, timeout);
                }
                None => self.cv.wait(&mut st),
            }
            st.idle_workers -= 1;
        }
    }
}

// ---------------------------------------------------------------------------
// The service
// ---------------------------------------------------------------------------

/// Process-wide workflow service: one fixed worker pool, many
/// concurrent DAG submissions (see the [module docs](crate::service)).
///
/// Dropping the service stops admissions, drains every run already
/// admitted or queued, and joins the pool.
///
/// # Examples
///
/// Two tenants sharing one pool; each gets its rows back:
///
/// ```
/// use std::sync::Arc;
/// use scriptflow_datakit::{Batch, DataType, Schema, Value};
/// use scriptflow_workflow::ops::{ScanOp, SinkOp};
/// use scriptflow_workflow::service::{RunOptions, ServiceConfig, WorkflowService};
/// use scriptflow_workflow::{PartitionStrategy, WorkflowBuilder};
///
/// fn chain(rows: i64) -> (scriptflow_workflow::Workflow, scriptflow_workflow::ops::SinkHandle) {
///     let schema = Schema::of(&[("id", DataType::Int)]);
///     let batch =
///         Batch::from_rows(schema, (0..rows).map(|i| vec![Value::Int(i)]).collect()).unwrap();
///     let mut b = WorkflowBuilder::new();
///     let scan = b.add(Arc::new(ScanOp::new("scan", batch)), 1);
///     let sink_op = Arc::new(SinkOp::new("sink"));
///     let handle = sink_op.handle();
///     let sink = b.add(sink_op, 1);
///     b.connect(scan, sink, 0, PartitionStrategy::Single);
///     (b.build().unwrap(), handle)
/// }
///
/// let svc = WorkflowService::new(ServiceConfig::default().with_pool_size(2));
/// let (wf_a, sink_a) = chain(20);
/// let (wf_b, sink_b) = chain(30);
/// let run_a = svc.submit("alice", &wf_a, RunOptions::default()).unwrap();
/// let run_b = svc.submit("bob", &wf_b, RunOptions::default()).unwrap();
/// assert!(run_a.wait().result.is_ok());
/// assert!(run_b.wait().result.is_ok());
/// assert_eq!(sink_a.len(), 20);
/// assert_eq!(sink_b.len(), 30);
///
/// let stats = svc.service_stats();
/// assert_eq!(stats.completed_runs, 2);
/// ```
pub struct WorkflowService {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl WorkflowService {
    /// Start a service per `config`, spawning its worker pool.
    pub fn new(config: ServiceConfig) -> Self {
        let pool_threads = config.pool_size.unwrap_or_else(default_pool_size).max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(SvcState {
                accepting: true,
                next_run: 0,
                tenants: HashMap::new(),
                active: Vec::new(),
                admission: VecDeque::new(),
                parked: BinaryHeap::new(),
                idle_workers: 0,
                completed_runs: 0,
                rejected_runs: 0,
            }),
            cv: Condvar::new(),
            pool_threads,
            max_active_runs: config.max_active_runs.max(1),
            queue_capacity: config.queue_capacity,
            default_quota: config.default_quota,
            cache: config
                .result_cache
                .unwrap_or_else(|| Arc::new(ResultCache::new())),
        });
        let workers = (0..pool_threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("wf-svc-{i}"))
                    .spawn(move || shared.worker())
                    .expect("spawn service worker")
            })
            .collect();
        WorkflowService { shared, workers }
    }

    /// Submit `wf` on behalf of `tenant`. Returns a [`RunHandle`] if
    /// the run was admitted (dispatched or queued), or the explicit
    /// [`SubmitError`] that refused it.
    pub fn submit(
        &self,
        tenant: &str,
        wf: &Workflow,
        opts: RunOptions,
    ) -> Result<RunHandle, SubmitError> {
        // Validate and size the run before taking the scheduler lock:
        // task construction (operator instances, pre-chunked sources)
        // must not stall the pool.
        let faults = match &opts.faults {
            Some(plan) => Some(CompiledFaults::compile(plan, wf).map_err(SubmitError::Invalid)?),
            None => None,
        };
        let quota = {
            let mut st = self.shared.state.lock();
            if !st.accepting {
                return Err(SubmitError::ShuttingDown);
            }
            st.tenants
                .entry(tenant.to_owned())
                .or_insert_with(|| Tenant {
                    quota: self.shared.default_quota,
                    in_flight: 0,
                    stats: TenantStats::default(),
                })
                .quota
        };
        // Cache-enabled runs defer task construction to dispatch (the
        // plan must see everything published before the run starts);
        // everything else builds its tasks now, outside the lock.
        let cache_sub = opts.result_cache.then(|| CacheSubmission {
            wf: wf.clone(),
            batch_size: opts.batch_size(),
            mailbox_budget: quota.mailbox_budget,
            faults: opts.faults.clone(),
            retry: opts.retry.clone(),
            columnar: opts.columnar,
            memory_budget: opts.memory_budget,
            workflow_fp: wf.workflow_fingerprint(),
        });
        let tasks = if cache_sub.is_some() {
            Vec::new()
        } else {
            build_tasks(
                wf,
                opts.batch_size(),
                quota.mailbox_budget,
                faults.as_ref(),
                &opts.retry,
                opts.columnar,
                opts.memory_budget,
            )
        };
        let ops = ops_meta(wf);
        let total_workers = wf.total_workers();
        let factories: Vec<Arc<dyn OperatorFactory>> =
            wf.ops().iter().map(|n| Arc::clone(&n.factory)).collect();
        let sink_ids: Vec<usize> = factories
            .iter()
            .filter_map(|f| f.shared_state_id())
            .collect();

        let mut st = self.shared.state.lock();
        if !st.accepting {
            return Err(SubmitError::ShuttingDown);
        }
        let in_flight = st.tenants.get(tenant).map_or(0, |t| t.in_flight);
        if in_flight >= quota.max_in_flight {
            Self::reject(&mut st, tenant);
            return Err(SubmitError::TenantOverQuota {
                tenant: tenant.to_owned(),
                in_flight,
            });
        }
        // A tenant whose drained runs already spilled its ceiling is a
        // noisy spiller: refuse new work instead of letting it keep
        // converting the shared pool's disk into its own buffer space.
        let spilled_bytes = st.tenants.get(tenant).map_or(0, |t| t.stats.spilled_bytes);
        if let Some(budget) = quota.spill_budget {
            if spilled_bytes >= budget {
                Self::reject(&mut st, tenant);
                return Err(SubmitError::SpillOverQuota {
                    tenant: tenant.to_owned(),
                    spilled_bytes,
                    budget,
                });
            }
        }
        // Same rule for shared-cache memory, but charged on the
        // tenant's *live* footprint: bytes the budget has since evicted
        // (or dropped as corrupt) are credited back, so a tenant whose
        // old entries aged out can keep submitting.
        let cache_bytes = self.shared.cache.owner_bytes(tenant);
        if let Some(budget) = quota.cache_budget {
            if cache_bytes >= budget {
                Self::reject(&mut st, tenant);
                return Err(SubmitError::CacheOverQuota {
                    tenant: tenant.to_owned(),
                    cache_bytes,
                    budget,
                });
            }
        }
        // Two concurrent runs appending into one shared buffer would
        // interleave rows; refuse the later submission explicitly.
        if let Some(&id) = sink_ids.iter().find(|id| {
            st.active.iter().any(|r| r.sink_ids.contains(id))
                || st.admission.iter().any(|p| p.sink_ids.contains(id))
        }) {
            let operator = factories
                .iter()
                .find(|f| f.shared_state_id() == Some(id))
                .map(|f| f.name().to_owned())
                .unwrap_or_default();
            Self::reject(&mut st, tenant);
            return Err(SubmitError::SinkBusy { operator });
        }
        // Single-flight: an identical cache-enabled DAG already active
        // or queued means this submission waits and is served from what
        // that run publishes, instead of computing the prefix twice.
        let cache_held = cache_sub.as_ref().is_some_and(|cs| {
            st.active.iter().any(|r| r.cache_fp == Some(cs.workflow_fp))
                || st.admission.iter().any(|p| {
                    p.cache
                        .as_ref()
                        .is_some_and(|q| q.workflow_fp == cs.workflow_fp)
                })
        });
        let dispatch_now = !cache_held && st.active.len() < self.shared.max_active_runs;
        if !dispatch_now && st.admission.len() >= self.shared.queue_capacity {
            Self::reject(&mut st, tenant);
            return Err(SubmitError::QueueFull {
                capacity: self.shared.queue_capacity,
            });
        }

        let run_id = st.next_run;
        st.next_run += 1;
        let seat = Arc::new(Seat {
            slot: Mutex::new(Slot::Queued),
            cv: Condvar::new(),
        });
        if let Some(t) = st.tenants.get_mut(tenant) {
            t.in_flight += 1;
            t.stats.submitted += 1;
        }
        let pending = PendingRun {
            run_id,
            tenant: tenant.to_owned(),
            seat: Arc::clone(&seat),
            submitted: Instant::now(),
            tasks,
            faults,
            ops,
            total_workers,
            factories,
            sink_ids,
            cache: cache_sub,
        };
        if dispatch_now {
            Shared::dispatch(&self.shared, &mut st, pending);
        } else {
            st.admission.push_back(pending);
        }
        drop(st);
        self.shared.cv.notify_all();
        Ok(RunHandle {
            run_id,
            tenant: tenant.to_owned(),
            seat,
        })
    }

    fn reject(st: &mut SvcState, tenant: &str) {
        st.rejected_runs += 1;
        if let Some(t) = st.tenants.get_mut(tenant) {
            t.stats.rejected += 1;
        }
    }

    /// Set `tenant`'s quota; applies to submissions from now on
    /// (admitted runs keep the weight they were dispatched with).
    pub fn set_quota(&self, tenant: &str, quota: TenantQuota) {
        let mut st = self.shared.state.lock();
        st.tenants
            .entry(tenant.to_owned())
            .or_insert_with(|| Tenant {
                quota,
                in_flight: 0,
                stats: TenantStats::default(),
            })
            .quota = quota;
    }

    /// Aggregate counters for `tenant`, if it ever submitted (or had a
    /// quota set).
    pub fn tenant_stats(&self, tenant: &str) -> Option<TenantStats> {
        self.shared
            .state
            .lock()
            .tenants
            .get(tenant)
            .map(|t| t.stats)
    }

    /// The service's shared result cache: one per service, populated by
    /// runs submitted with [`RunOptions::with_result_cache`] and read by
    /// every later cache-enabled submission regardless of tenant.
    pub fn result_cache(&self) -> &Arc<ResultCache> {
        &self.shared.cache
    }

    /// Point-in-time service snapshot.
    pub fn service_stats(&self) -> ServiceStats {
        let st = self.shared.state.lock();
        ServiceStats {
            pool_threads: self.shared.pool_threads,
            active_runs: st.active.len(),
            queued_runs: st.admission.len(),
            completed_runs: st.completed_runs,
            rejected_runs: st.rejected_runs,
        }
    }

    /// Stop admissions, drain every admitted and queued run, and join
    /// the pool. Equivalent to dropping the service, but explicit.
    pub fn shutdown(self) {}
}

impl Drop for WorkflowService {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.accepting = false;
        }
        self.shared.cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::WorkflowBuilder;
    use crate::exec_live::LiveExecutor;
    use crate::fault::random_chain;
    use crate::ops::{FilterOp, ScanOp, SinkHandle, SinkOp};
    use crate::partition::PartitionStrategy;
    use crate::retry::{Backoff, RetryConfig, RetryPolicy};
    use scriptflow_datakit::{Batch, DataType, Schema, Value};

    fn int_batch(rows: i64) -> Batch {
        let schema = Schema::of(&[("id", DataType::Int)]);
        Batch::from_rows(schema, (0..rows).map(|i| vec![Value::Int(i)]).collect()).unwrap()
    }

    fn chain(rows: i64, parallelism: usize) -> (Workflow, SinkHandle) {
        let mut b = WorkflowBuilder::new();
        let scan = b.add(Arc::new(ScanOp::new("scan", int_batch(rows))), 1);
        let filter = b.add(
            Arc::new(FilterOp::new("filter", |t| Ok(t.get_int("id")? % 2 == 0))),
            parallelism,
        );
        let sink_op = Arc::new(SinkOp::new("sink"));
        let handle = sink_op.handle();
        let sink = b.add(sink_op, 1);
        b.connect(scan, filter, 0, PartitionStrategy::RoundRobin);
        b.connect(filter, sink, 0, PartitionStrategy::Single);
        let wf = b.build().unwrap();
        (wf, handle)
    }

    fn sorted_rows(handle: &SinkHandle) -> Vec<String> {
        let mut rows: Vec<String> = handle.results().iter().map(|t| format!("{t:?}")).collect();
        rows.sort();
        rows
    }

    /// Options that keep a run deterministically in flight for a while:
    /// a benign injected slow edge stretches every filter batch, so the
    /// run is still admitted when the test submits against it.
    fn slow_opts() -> RunOptions {
        RunOptions::default().with_faults(FaultPlan::new(0).slow_edge("filter", 2_000))
    }

    #[test]
    fn single_run_matches_solo_executor() {
        let (wf, handle) = chain(200, 2);
        let solo = {
            let res = LiveExecutor::new(32).with_pool_size(2).run(&wf).unwrap();
            assert!(res.pool.is_some());
            let rows = sorted_rows(&handle);
            handle.clear();
            rows
        };

        let svc = WorkflowService::new(ServiceConfig::default().with_pool_size(2));
        let run = svc
            .submit("t", &wf, RunOptions::default().with_batch_size(32))
            .unwrap();
        let report = run.wait();
        assert!(report.queue_wait < Duration::from_secs(5));
        assert_eq!(report.tenant, "t");
        // The labeled trace export carries the tenant tag.
        let text = report.trace_json().to_string_compact();
        assert!(text.contains("\"tenant\":\"t\""));
        let res = report.result.expect("clean run");
        assert_eq!(sorted_rows(&handle), solo);
        assert!(res.pool.is_some());
        assert_eq!(res.metrics.operators.len(), 3);
    }

    #[test]
    fn concurrent_tenants_each_get_their_rows() {
        let svc = WorkflowService::new(
            ServiceConfig::default()
                .with_pool_size(2)
                .with_max_active_runs(8),
        );
        let runs: Vec<(RunHandle, SinkHandle, usize)> = (0..6)
            .map(|i| {
                let rows = 100 + 40 * i;
                let (wf, handle) = chain(rows as i64, 2);
                let run = svc
                    .submit(&format!("tenant-{}", i % 3), &wf, RunOptions::default())
                    .unwrap();
                (run, handle, rows / 2)
            })
            .collect();
        for (run, handle, expect) in runs {
            let report = run.wait();
            assert!(report.result.is_ok(), "{:?}", report.result.err());
            assert_eq!(handle.len(), expect);
        }
        let stats = svc.service_stats();
        assert_eq!(stats.completed_runs, 6);
        assert_eq!(stats.rejected_runs, 0);
        let t0 = svc.tenant_stats("tenant-0").unwrap();
        assert_eq!(t0.submitted, 2);
        assert_eq!(t0.completed, 2);
        assert!(t0.quanta > 0);
    }

    #[test]
    fn identical_cache_submissions_compute_shared_prefix_once() {
        // Two tenants submit content-identical pipelines (separately
        // built, each with its own sink buffer). With the shared result
        // cache on, the second run is held until the first finishes
        // (single-flight on the whole-DAG fingerprint), then served
        // entirely from the segments the first run published.
        let svc = WorkflowService::new(
            ServiceConfig::default()
                .with_pool_size(2)
                .with_max_active_runs(4),
        );
        let (wf_a, handle_a) = chain(120, 2);
        let (wf_b, handle_b) = chain(120, 2);
        let opts = || RunOptions::default().with_result_cache(true);
        let run_a = svc.submit("alice", &wf_a, opts()).unwrap();
        let run_b = svc.submit("bob", &wf_b, opts()).unwrap();
        let rep_a = run_a.wait();
        let rep_b = run_b.wait();
        let res_a = rep_a.result.expect("leader run is clean");
        let res_b = rep_b.result.expect("follower run is clean");

        // Both tenants get identical rows in their own sinks.
        assert_eq!(handle_a.len(), 60);
        assert_eq!(sorted_rows(&handle_a), sorted_rows(&handle_b));

        // The leader computed and published; the follower was served.
        let pool_a = res_a.pool.expect("pooled run");
        let pool_b = res_b.pool.expect("pooled run");
        assert!(pool_a.cache_misses > 0, "leader records the prefix");
        assert_eq!(pool_a.cache_hits, 0, "nothing published before the leader");
        assert!(res_a.cache_published > 0, "leader publishes on clean finish");
        assert!(pool_b.cache_hits > 0, "follower is served from the cache");
        assert_eq!(pool_b.cache_misses, 0, "follower recomputes nothing");
        assert_eq!(res_b.cache_published, 0, "follower has nothing new");

        // Tenant-labeled accounting matches.
        let alice = svc.tenant_stats("alice").unwrap();
        let bob = svc.tenant_stats("bob").unwrap();
        assert!(alice.cache_misses > 0 && alice.cache_published > 0);
        assert_eq!(alice.cache_hits, 0);
        assert!(bob.cache_hits > 0);
        assert_eq!(bob.cache_published, 0);
        assert!(svc.result_cache().entries() > 0);
    }

    #[test]
    fn cache_budget_rejects_after_ceiling_published() {
        let svc = WorkflowService::new(ServiceConfig::default().with_pool_size(1));
        svc.set_quota("t", TenantQuota::default().with_cache_budget(1));
        assert_eq!(
            TenantQuota::default().with_cache_budget(1).cache_budget(),
            Some(1)
        );
        let (wf, _h) = chain(80, 1);
        let report = svc
            .submit("t", &wf, RunOptions::default().with_result_cache(true))
            .unwrap()
            .wait();
        let published = report.result.expect("clean run").cache_published;
        assert!(published > 1, "the run publishes past the 1-byte ceiling");
        // The tenant is now over its cache quota: refused explicitly.
        let (wf2, _h2) = chain(80, 1);
        match svc.submit("t", &wf2, RunOptions::default()) {
            Err(SubmitError::CacheOverQuota {
                tenant,
                cache_bytes,
                budget: 1,
            }) => {
                assert_eq!(tenant, "t");
                assert_eq!(cache_bytes, published);
            }
            other => panic!("expected CacheOverQuota, got {other:?}"),
        }
        // Other tenants are unaffected.
        let (wf3, _h3) = chain(80, 1);
        assert!(svc.submit("u", &wf3, RunOptions::default()).is_ok());
    }

    #[test]
    fn evicted_entries_stop_counting_against_the_cache_quota() {
        // The quota gate charges the tenant's *live* cache footprint.
        // Once the shared cache's byte budget evicts the tenant's
        // entries, the bytes are credited back and the tenant may
        // submit again — cumulative published history does not pin the
        // tenant over quota forever.
        let cache = Arc::new(ResultCache::new());
        let svc = WorkflowService::new(
            ServiceConfig::default()
                .with_pool_size(1)
                .with_result_cache(Arc::clone(&cache)),
        );
        let (wf, _h) = chain(80, 1);
        let published = svc
            .submit("t", &wf, RunOptions::default().with_result_cache(true))
            .unwrap()
            .wait()
            .result
            .expect("clean run")
            .cache_published;
        assert!(published > 0);
        assert_eq!(cache.owner_bytes("t"), published);

        // A ceiling at the live footprint refuses the next submission.
        svc.set_quota("t", TenantQuota::default().with_cache_budget(published));
        let (wf2, _h2) = chain(80, 1);
        match svc.submit("t", &wf2, RunOptions::default()) {
            Err(SubmitError::CacheOverQuota { cache_bytes, .. }) => {
                assert_eq!(cache_bytes, published)
            }
            other => panic!("expected CacheOverQuota, got {other:?}"),
        }

        // Shrinking the shared budget evicts the tenant's entries
        // between submissions; the freed bytes no longer count.
        cache.set_byte_budget(Some(0));
        assert_eq!(cache.owner_bytes("t"), 0);
        assert!(cache.evictions() > 0);
        let (wf3, _h3) = chain(80, 1);
        assert!(svc.submit("t", &wf3, RunOptions::default()).is_ok());
        // Cumulative history is untouched — only the live charge moved.
        assert_eq!(svc.tenant_stats("t").unwrap().cache_published, published);
    }

    #[test]
    fn single_flight_follower_is_not_double_charged() {
        // Two identical cache-enabled submissions from one tenant: the
        // follower's commit re-publishes the same fingerprints, which
        // the cache treats as idempotent no-ops — the tenant's live
        // footprint is charged once, not twice.
        let cache = Arc::new(ResultCache::new());
        let svc = WorkflowService::new(
            ServiceConfig::default()
                .with_pool_size(2)
                .with_max_active_runs(4)
                .with_result_cache(Arc::clone(&cache)),
        );
        let (wf_a, handle_a) = chain(120, 2);
        let (wf_b, handle_b) = chain(120, 2);
        let opts = || RunOptions::default().with_result_cache(true);
        let run_a = svc.submit("t", &wf_a, opts()).unwrap();
        let run_b = svc.submit("t", &wf_b, opts()).unwrap();
        let res_a = run_a.wait().result.expect("leader run is clean");
        let res_b = run_b.wait().result.expect("follower run is clean");
        assert_eq!(sorted_rows(&handle_a), sorted_rows(&handle_b));
        assert!(res_a.cache_published > 0);
        assert_eq!(res_b.cache_published, 0, "follower adds nothing");
        assert_eq!(
            cache.owner_bytes("t"),
            res_a.cache_published,
            "live footprint is the leader's publish, charged once"
        );
    }

    #[test]
    fn admission_queue_backfills_in_order() {
        // One active slot: later submissions queue and run one by one.
        let svc = WorkflowService::new(
            ServiceConfig::default()
                .with_pool_size(1)
                .with_max_active_runs(1)
                .with_queue_capacity(8),
        );
        let runs: Vec<(RunHandle, SinkHandle)> = (0..4)
            .map(|i| {
                let (wf, handle) = chain(60 + i, 1);
                (svc.submit("t", &wf, RunOptions::default()).unwrap(), handle)
            })
            .collect();
        for (i, (run, handle)) in runs.into_iter().enumerate() {
            let report = run.wait();
            assert!(report.result.is_ok());
            assert_eq!(handle.len(), (60 + i) / 2 + (60 + i) % 2);
        }
    }

    #[test]
    fn queue_full_and_over_quota_reject_explicitly() {
        let svc = WorkflowService::new(
            ServiceConfig::default()
                .with_pool_size(1)
                .with_max_active_runs(1)
                .with_queue_capacity(1)
                .with_default_quota(TenantQuota::default().with_max_in_flight(2)),
        );
        // A run large enough to still be active while we pile on.
        let (wf0, _h0) = chain(20_000, 2);
        let a = svc.submit("big", &wf0, slow_opts()).unwrap();

        // Different tenant, same service: fills the one queue slot.
        let (wf1, _h1) = chain(10, 1);
        let b = svc.submit("small", &wf1, RunOptions::default()).unwrap();

        // Queue is now full for everyone.
        let (wf2, _h2) = chain(10, 1);
        match svc.submit("small", &wf2, RunOptions::default()) {
            Err(SubmitError::QueueFull { capacity: 1 }) => {}
            other => panic!("expected QueueFull, got {other:?}"),
        }

        // `big` has 1 in flight with a ceiling of 2 — but the queue is
        // still full, so it also bounces.
        let (wf3, _h3) = chain(10, 1);
        assert!(matches!(
            svc.submit("big", &wf3, RunOptions::default()),
            Err(SubmitError::QueueFull { .. })
        ));

        let a_report = a.wait();
        assert!(a_report.result.is_ok());
        let b_report = b.wait();
        assert!(b_report.result.is_ok());

        // Quota ceiling: submit max_in_flight + 1 runs back to back.
        let svc2 = WorkflowService::new(
            ServiceConfig::default()
                .with_pool_size(1)
                .with_max_active_runs(1)
                .with_queue_capacity(16)
                .with_default_quota(TenantQuota::default().with_max_in_flight(2)),
        );
        let (wf_a, _ha) = chain(20_000, 2);
        let (wf_b, _hb) = chain(20_000, 2);
        let (wf_c, _hc) = chain(10, 1);
        let r1 = svc2.submit("q", &wf_a, slow_opts()).unwrap();
        let r2 = svc2.submit("q", &wf_b, slow_opts()).unwrap();
        match svc2.submit("q", &wf_c, RunOptions::default()) {
            Err(SubmitError::TenantOverQuota { tenant, in_flight }) => {
                assert_eq!(tenant, "q");
                assert_eq!(in_flight, 2);
            }
            other => panic!("expected TenantOverQuota, got {other:?}"),
        }
        assert!(r1.wait().result.is_ok());
        assert!(r2.wait().result.is_ok());
        assert_eq!(svc2.tenant_stats("q").unwrap().rejected, 1);
    }

    #[test]
    fn shared_sink_is_busy_until_the_owner_drains() {
        let (wf, handle) = chain(20_000, 2);
        let svc = WorkflowService::new(
            ServiceConfig::default()
                .with_pool_size(1)
                .with_max_active_runs(4),
        );
        let first = svc.submit("t", &wf, slow_opts()).unwrap();
        // Same workflow object ⇒ same sink buffer ⇒ explicit rejection
        // instead of interleaved rows.
        match svc.submit("t", &wf, RunOptions::default()) {
            Err(SubmitError::SinkBusy { operator }) => assert_eq!(operator, "sink"),
            other => panic!("expected SinkBusy, got {other:?}"),
        }
        assert!(first.wait().result.is_ok());
        let first_rows = sorted_rows(&handle);
        assert_eq!(first_rows.len(), 10_000);
        // Once drained, resubmission works and rows match exactly (the
        // dispatch cleared the sink: PR 4's invariant under concurrency).
        let again = svc.submit("t", &wf, RunOptions::default()).unwrap();
        assert!(again.wait().result.is_ok());
        assert_eq!(sorted_rows(&handle), first_rows);
    }

    #[test]
    fn faulty_run_fails_alone_while_neighbor_completes() {
        // A fault storm in one tenant's run must not stall or corrupt a
        // neighbor sharing the pool.
        let (noisy_wf, noisy_sink, ops) = random_chain(11);
        let plan = FaultPlan::random(11, &ops);
        let (quiet_wf, quiet_sink) = chain(4_000, 2);

        // Solo anchor for the quiet run.
        let _ = LiveExecutor::new(64).with_pool_size(2).run(&quiet_wf);
        let solo = sorted_rows(&quiet_sink);
        quiet_sink.clear();

        let svc = WorkflowService::new(
            ServiceConfig::default()
                .with_pool_size(2)
                .with_max_active_runs(4),
        );
        let noisy = svc
            .submit("noisy", &noisy_wf, RunOptions::default().with_faults(plan))
            .unwrap();
        let quiet = svc
            .submit("quiet", &quiet_wf, RunOptions::default())
            .unwrap();
        let quiet_report = quiet.wait();
        assert!(
            quiet_report.result.is_ok(),
            "{:?}",
            quiet_report.result.err()
        );
        assert_eq!(sorted_rows(&quiet_sink), solo);
        // The noisy run drains (clean, degraded, or failed — but never
        // wedged) and its sink only ever holds its own rows.
        let noisy_report = noisy.wait();
        let _ = noisy_report.result;
        let _ = noisy_sink.len();
    }

    #[test]
    fn deferred_retry_backoff_parks_instead_of_sleeping() {
        // A retried fault under the service must still recover all rows
        // (exactly-once replay), with the backoff served by the park
        // timer rather than a sleeping worker.
        let (wf, handle) = chain(2_000, 2);
        let plan = FaultPlan::new(5).panic_at("filter", 100);
        let retry = RetryConfig::uniform(RetryPolicy::attempts(3).with_backoff(Backoff {
            base: Duration::from_millis(5),
            factor: 1,
            cap: Duration::from_millis(5),
        }));

        let svc = WorkflowService::new(ServiceConfig::default().with_pool_size(2));
        let run = svc
            .submit(
                "t",
                &wf,
                RunOptions::default().with_faults(plan).with_retry(retry),
            )
            .unwrap();
        let report = run.wait();
        let res = report.result.expect("retry salvages the run");
        let stats = res.pool.expect("pooled stats");
        assert!(stats.retries_attempted >= 1);
        assert_eq!(stats.retries_succeeded, 1);
        assert_eq!(handle.len(), 1_000);
    }

    #[test]
    fn weighted_tenant_accrues_more_quanta_under_contention() {
        let svc = WorkflowService::new(
            ServiceConfig::default()
                .with_pool_size(1)
                .with_max_active_runs(4),
        );
        svc.set_quota("heavy", TenantQuota::default().with_weight(8));
        svc.set_quota("light", TenantQuota::default().with_weight(1));
        let (wf_h, _hh) = chain(40_000, 2);
        let (wf_l, _hl) = chain(40_000, 2);
        let heavy = svc.submit("heavy", &wf_h, RunOptions::default()).unwrap();
        let light = svc.submit("light", &wf_l, RunOptions::default()).unwrap();
        assert!(heavy.wait().result.is_ok());
        assert!(light.wait().result.is_ok());
        let h = svc.tenant_stats("heavy").unwrap();
        let l = svc.tenant_stats("light").unwrap();
        // Both finish (equal total work), so equal quanta overall; the
        // scheduler's fairness shows in both making progress, not in
        // the totals. Sanity-check accounting instead.
        assert!(h.quanta > 0 && l.quanta > 0);
        assert!(h.busy > Duration::ZERO && l.busy > Duration::ZERO);
    }

    #[test]
    fn shutdown_drains_admitted_and_queued_runs() {
        let handles: Vec<SinkHandle>;
        let runs: Vec<RunHandle>;
        {
            let svc = WorkflowService::new(
                ServiceConfig::default()
                    .with_pool_size(1)
                    .with_max_active_runs(1)
                    .with_queue_capacity(8),
            );
            let mut hs = Vec::new();
            let mut rs = Vec::new();
            for _ in 0..3 {
                let (wf, handle) = chain(500, 1);
                rs.push(svc.submit("t", &wf, RunOptions::default()).unwrap());
                hs.push(handle);
            }
            handles = hs;
            runs = rs;
            // Dropping the service drains everything admitted.
        }
        for (run, handle) in runs.into_iter().zip(handles) {
            assert!(run.is_finished());
            assert!(run.wait().result.is_ok());
            assert_eq!(handle.len(), 250);
        }
    }

    #[test]
    fn submit_after_shutdown_is_refused() {
        let svc = WorkflowService::new(ServiceConfig::default().with_pool_size(1));
        let shared = Arc::clone(&svc.shared);
        shared.state.lock().accepting = false;
        let (wf, _h) = chain(10, 1);
        assert!(matches!(
            svc.submit("t", &wf, RunOptions::default()),
            Err(SubmitError::ShuttingDown)
        ));
        // Re-enable so Drop's drain logic exits normally.
        shared.state.lock().accepting = true;
    }

    #[test]
    fn invalid_fault_plan_is_rejected_up_front() {
        let svc = WorkflowService::new(ServiceConfig::default().with_pool_size(1));
        let (wf, _h) = chain(10, 1);
        let plan = FaultPlan::new(1).panic_at("no-such-operator", 1);
        assert!(matches!(
            svc.submit("t", &wf, RunOptions::default().with_faults(plan)),
            Err(SubmitError::Invalid(_))
        ));
    }
}
