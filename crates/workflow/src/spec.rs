//! Declarative workflow specifications: build an executable DAG from a
//! JSON document.
//!
//! Texera persists workflows as JSON documents that its GUI edits; this
//! module is that wire format's executable half. It covers the
//! declarative operator palette (scans over inline data, comparison
//! filters, projections, joins, aggregates, sorts, unions, limits,
//! distinct, sinks) — UDF operators carry code and cannot be expressed
//! declaratively.
//!
//! ```text
//! {
//!   "operators": [
//!     {"id": "src", "type": "InlineScan", "workers": 2,
//!      "schema": [["id", "Int"], ["city", "Str"]],
//!      "rows": [[1, "berlin"], [2, "tokyo"]]},
//!     {"id": "big", "type": "Filter",
//!      "predicate": {"column": "id", "op": ">=", "value": 2}},
//!     {"id": "out", "type": "Sink"}
//!   ],
//!   "links": [
//!     {"from": "src", "to": "big", "port": 0, "partition": "round-robin"},
//!     {"from": "big", "to": "out", "port": 0, "partition": "single"}
//!   ]
//! }
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use scriptflow_datakit::codec::Json;
use scriptflow_datakit::{Batch, DataType, Field, Schema, SchemaRef, Value};

use crate::dag::{Workflow, WorkflowBuilder};
use crate::operator::{WorkflowError, WorkflowResult};
use crate::ops::{
    AggFn, AggregateOp, DistinctOp, FilterOp, HashJoinOp, LimitOp, ProjectOp, ScanOp, SinkHandle,
    SinkOp, SortOp, SortOrder, UnionOp,
};
use crate::partition::PartitionStrategy;

/// A workflow built from a spec, with handles to its sinks by id.
pub struct SpecWorkflow {
    /// The executable DAG.
    pub workflow: Workflow,
    /// Result handles for every `Sink` operator, keyed by operator id.
    pub sinks: HashMap<String, SinkHandle>,
}

/// Parse and build a workflow from JSON text.
pub fn parse(text: &str) -> WorkflowResult<SpecWorkflow> {
    let doc = Json::parse(text).map_err(|e| WorkflowError::InvalidDag(format!("bad JSON: {e}")))?;
    build(&doc)
}

/// Build a workflow from a parsed JSON document.
pub fn build(doc: &Json) -> WorkflowResult<SpecWorkflow> {
    let operators = get_array(doc, "operators")?;
    let links = get_array(doc, "links")?;

    let mut builder = WorkflowBuilder::new();
    let mut ids = HashMap::new();
    let mut sinks = HashMap::new();

    for op in operators {
        let id = get_str(op, "id")?;
        let ty = get_str(op, "type")?;
        let workers = get_int(op, "workers").unwrap_or(1).max(1) as usize;
        let op_id = match ty {
            "InlineScan" => {
                let schema = parse_schema(op)?;
                let rows = parse_rows(op, &schema)?;
                builder.add(Arc::new(ScanOp::new(id, rows)), workers)
            }
            "Filter" => {
                let pred =
                    parse_predicate(field(op, "predicate").ok_or_else(|| {
                        bad(format!("operator `{id}`: Filter needs a predicate"))
                    })?)?;
                builder.add(Arc::new(FilterOp::new(id, pred)), workers)
            }
            "Projection" => {
                let columns = get_string_array(op, "columns")?;
                let refs: Vec<&str> = columns.iter().map(String::as_str).collect();
                builder.add(Arc::new(ProjectOp::new(id, &refs)), workers)
            }
            "HashJoin" => {
                let probe = get_string_array(op, "probe")?;
                let build_keys = get_string_array(op, "build")?;
                let p: Vec<&str> = probe.iter().map(String::as_str).collect();
                let b: Vec<&str> = build_keys.iter().map(String::as_str).collect();
                builder.add(Arc::new(HashJoinOp::new(id, &p, &b)), workers)
            }
            "Aggregate" => {
                let group = get_string_array(op, "group_by").unwrap_or_default();
                let g: Vec<&str> = group.iter().map(String::as_str).collect();
                let aggs = parse_aggs(op)?;
                builder.add(Arc::new(AggregateOp::new(id, &g, aggs)), workers)
            }
            "Sort" => {
                let keys = parse_sort_keys(op)?;
                let refs: Vec<(&str, SortOrder)> =
                    keys.iter().map(|(k, o)| (k.as_str(), *o)).collect();
                builder.add(Arc::new(SortOp::new(id, &refs)), workers)
            }
            "Union" => {
                let ports = get_int(op, "ports").unwrap_or(2).max(2) as usize;
                builder.add(Arc::new(UnionOp::new(id, ports)), workers)
            }
            "Limit" => {
                let n = get_int(op, "n")
                    .ok_or_else(|| bad(format!("operator `{id}`: Limit needs n")))?;
                builder.add(Arc::new(LimitOp::new(id, n.max(0) as usize)), workers)
            }
            "Distinct" => {
                let columns = get_string_array(op, "columns")?;
                let refs: Vec<&str> = columns.iter().map(String::as_str).collect();
                builder.add(Arc::new(DistinctOp::new(id, &refs)), workers)
            }
            "Sink" => {
                let sink = SinkOp::new(id);
                sinks.insert(id.to_owned(), sink.handle());
                builder.add(Arc::new(sink), workers)
            }
            other => return Err(bad(format!("unknown operator type `{other}`"))),
        };
        if ids.insert(id.to_owned(), op_id).is_some() {
            return Err(WorkflowError::DuplicateOperator {
                name: id.to_owned(),
            });
        }
    }

    for link in links {
        let from = get_str(link, "from")?;
        let to = get_str(link, "to")?;
        let port = get_int(link, "port").unwrap_or(0).max(0) as usize;
        let partition = match field(link, "partition") {
            Some(Json::Str(s)) => parse_partition(s, link)?,
            None => PartitionStrategy::RoundRobin,
            Some(other) => return Err(bad(format!("partition must be a string, got {other:?}"))),
        };
        let from_id = *ids
            .get(from)
            .ok_or_else(|| bad(format!("link references unknown operator `{from}`")))?;
        let to_id = *ids
            .get(to)
            .ok_or_else(|| bad(format!("link references unknown operator `{to}`")))?;
        builder.connect(from_id, to_id, port, partition);
    }

    Ok(SpecWorkflow {
        workflow: builder.build()?,
        sinks,
    })
}

fn bad(msg: String) -> WorkflowError {
    WorkflowError::InvalidDag(msg)
}

/// Object field access used by the spec parser.
fn field<'a>(doc: &'a Json, name: &str) -> Option<&'a Json> {
    match doc {
        Json::Object(kv) => kv.iter().find(|(k, _)| k == name).map(|(_, v)| v),
        _ => None,
    }
}

fn get_array<'a>(doc: &'a Json, name: &str) -> WorkflowResult<&'a [Json]> {
    match field(doc, name) {
        Some(Json::Array(items)) => Ok(items),
        _ => Err(bad(format!("missing array field `{name}`"))),
    }
}

fn get_str<'a>(doc: &'a Json, name: &str) -> WorkflowResult<&'a str> {
    match field(doc, name) {
        Some(Json::Str(s)) => Ok(s),
        _ => Err(bad(format!("missing string field `{name}`"))),
    }
}

fn get_int(doc: &Json, name: &str) -> Option<i64> {
    match field(doc, name) {
        Some(Json::Int(i)) => Some(*i),
        _ => None,
    }
}

fn get_string_array(doc: &Json, name: &str) -> WorkflowResult<Vec<String>> {
    match field(doc, name) {
        Some(Json::Array(items)) => items
            .iter()
            .map(|v| match v {
                Json::Str(s) => Ok(s.clone()),
                other => Err(bad(format!("`{name}` must hold strings, got {other:?}"))),
            })
            .collect(),
        _ => Err(bad(format!("missing array field `{name}`"))),
    }
}

fn parse_dtype(s: &str) -> WorkflowResult<DataType> {
    Ok(match s {
        "Int" => DataType::Int,
        "Float" => DataType::Float,
        "Str" => DataType::Str,
        "Bool" => DataType::Bool,
        other => return Err(bad(format!("unknown data type `{other}`"))),
    })
}

fn parse_schema(op: &Json) -> WorkflowResult<SchemaRef> {
    let cols = get_array(op, "schema")?;
    let mut fields = Vec::with_capacity(cols.len());
    for c in cols {
        match c {
            Json::Array(pair) if pair.len() == 2 => {
                let (Json::Str(name), Json::Str(ty)) = (&pair[0], &pair[1]) else {
                    return Err(bad("schema entries are [name, type] strings".into()));
                };
                fields.push(Field::new(name.clone(), parse_dtype(ty)?));
            }
            other => return Err(bad(format!("bad schema entry {other:?}"))),
        }
    }
    Ok(Arc::new(Schema::new(fields).map_err(|e| {
        WorkflowError::InvalidDag(format!("bad schema: {e}"))
    })?))
}

fn parse_rows(op: &Json, schema: &SchemaRef) -> WorkflowResult<Batch> {
    let rows = get_array(op, "rows")?;
    let mut out = Vec::with_capacity(rows.len());
    for r in rows {
        match r {
            Json::Array(cells) => out.push(
                cells
                    .iter()
                    .map(|c| c.clone().into_value())
                    .collect::<Vec<Value>>(),
            ),
            other => return Err(bad(format!("bad row {other:?}"))),
        }
    }
    Batch::from_rows(schema.clone(), out)
        .map_err(|e| WorkflowError::InvalidDag(format!("bad rows: {e}")))
}

/// Comparison predicate DSL: `{"column": c, "op": one of == != < <= > >=
/// | not-null | is-null, "value": v}`.
fn parse_predicate(
    spec: &Json,
) -> WorkflowResult<
    impl Fn(&scriptflow_datakit::Tuple) -> scriptflow_datakit::DataResult<bool> + Send + Sync + 'static,
> {
    let column = field(spec, "column")
        .and_then(|v| match v {
            Json::Str(s) => Some(s.clone()),
            _ => None,
        })
        .ok_or_else(|| bad("predicate needs a `column`".into()))?;
    let op = field(spec, "op")
        .and_then(|v| match v {
            Json::Str(s) => Some(s.clone()),
            _ => None,
        })
        .ok_or_else(|| bad("predicate needs an `op`".into()))?;
    let value = field(spec, "value")
        .cloned()
        .unwrap_or(Json::Null)
        .into_value();
    match op.as_str() {
        "==" | "!=" | "<" | "<=" | ">" | ">=" | "is-null" | "not-null" => {}
        other => return Err(bad(format!("unknown predicate op `{other}`"))),
    }
    Ok(move |t: &scriptflow_datakit::Tuple| {
        let cell = t.get(&column)?;
        Ok(match op.as_str() {
            "is-null" => cell.is_null(),
            "not-null" => !cell.is_null(),
            "==" => values_eq(cell, &value),
            "!=" => !values_eq(cell, &value),
            cmp => {
                let ord = compare(cell, &value);
                match (cmp, ord) {
                    (_, None) => false,
                    ("<", Some(o)) => o.is_lt(),
                    ("<=", Some(o)) => o.is_le(),
                    (">", Some(o)) => o.is_gt(),
                    (">=", Some(o)) => o.is_ge(),
                    _ => false,
                }
            }
        })
    })
}

fn values_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Int(x), Value::Float(y)) | (Value::Float(y), Value::Int(x)) => *x as f64 == *y,
        _ => a == b,
    }
}

fn compare(a: &Value, b: &Value) -> Option<std::cmp::Ordering> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Some(x.cmp(y)),
        (Value::Float(x), Value::Float(y)) => x.partial_cmp(y),
        (Value::Int(x), Value::Float(y)) => (*x as f64).partial_cmp(y),
        (Value::Float(x), Value::Int(y)) => x.partial_cmp(&(*y as f64)),
        (Value::Str(x), Value::Str(y)) => Some(x.cmp(y)),
        _ => None,
    }
}

fn parse_aggs(op: &Json) -> WorkflowResult<Vec<AggFn>> {
    let specs = get_string_array(op, "aggregations")?;
    let mut aggs = Vec::with_capacity(specs.len());
    for s in specs {
        // Forms: "count as n", "sum(x)", "avg(x)", "min(x)", "max(x)".
        let s = s.trim();
        if let Some(rest) = s.strip_prefix("count as ") {
            aggs.push(AggFn::Count(rest.trim().to_owned()));
            continue;
        }
        let (func, col) = s
            .split_once('(')
            .and_then(|(f, c)| c.strip_suffix(')').map(|c| (f.trim(), c.trim().to_owned())))
            .ok_or_else(|| bad(format!("bad aggregation `{s}`")))?;
        aggs.push(match func {
            "sum" => AggFn::Sum(col),
            "avg" => AggFn::Avg(col),
            "min" => AggFn::Min(col),
            "max" => AggFn::Max(col),
            other => return Err(bad(format!("unknown aggregation `{other}`"))),
        });
    }
    if aggs.is_empty() {
        return Err(bad("Aggregate needs at least one aggregation".into()));
    }
    Ok(aggs)
}

fn parse_sort_keys(op: &Json) -> WorkflowResult<Vec<(String, SortOrder)>> {
    let specs = get_string_array(op, "keys")?;
    specs
        .iter()
        .map(|s| {
            let (col, order) = match s.strip_suffix(" desc") {
                Some(col) => (col, SortOrder::Descending),
                None => (
                    s.strip_suffix(" asc").unwrap_or(s.as_str()),
                    SortOrder::Ascending,
                ),
            };
            if col.trim().is_empty() {
                Err(bad(format!("bad sort key `{s}`")))
            } else {
                Ok((col.trim().to_owned(), order))
            }
        })
        .collect()
}

fn parse_partition(s: &str, link: &Json) -> WorkflowResult<PartitionStrategy> {
    Ok(match s {
        "round-robin" => PartitionStrategy::RoundRobin,
        "broadcast" => PartitionStrategy::Broadcast,
        "single" => PartitionStrategy::Single,
        "hash" => {
            let keys = get_string_array(link, "keys")?;
            PartitionStrategy::Hash(keys)
        }
        other => return Err(bad(format!("unknown partition `{other}`"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec_sim::SimExecutor;
    use crate::EngineConfig;

    const SPEC: &str = r#"{
        "operators": [
            {"id": "src", "type": "InlineScan", "workers": 2,
             "schema": [["id", "Int"], ["city", "Str"], ["pop", "Float"]],
             "rows": [[1, "berlin", 3.6], [2, "tokyo", 13.9],
                      [3, "lima", 9.7], [4, "basel", 0.2]]},
            {"id": "big", "type": "Filter",
             "predicate": {"column": "pop", "op": ">", "value": 1.0}},
            {"id": "ordered", "type": "Sort", "keys": ["pop desc"]},
            {"id": "top", "type": "Limit", "n": 2},
            {"id": "names", "type": "Projection", "columns": ["city"]},
            {"id": "out", "type": "Sink"}
        ],
        "links": [
            {"from": "src", "to": "big", "port": 0, "partition": "round-robin"},
            {"from": "big", "to": "ordered", "port": 0, "partition": "single"},
            {"from": "ordered", "to": "top", "port": 0, "partition": "single"},
            {"from": "top", "to": "names", "port": 0, "partition": "single"},
            {"from": "names", "to": "out", "port": 0, "partition": "single"}
        ]
    }"#;

    #[test]
    fn spec_builds_and_runs() {
        let spec = parse(SPEC).unwrap();
        assert_eq!(spec.workflow.operator_count(), 6);
        SimExecutor::new(EngineConfig::default())
            .run(&spec.workflow)
            .unwrap();
        let out = spec.sinks.get("out").unwrap();
        let cities: Vec<String> = out
            .results()
            .iter()
            .map(|t| t.get_str("city").unwrap().to_owned())
            .collect();
        assert_eq!(cities, vec!["tokyo".to_owned(), "lima".to_owned()]);
    }

    #[test]
    fn join_and_aggregate_spec() {
        let text = r#"{
            "operators": [
                {"id": "facts", "type": "InlineScan",
                 "schema": [["k", "Int"], ["x", "Float"]],
                 "rows": [[1, 2.0], [1, 4.0], [2, 10.0]]},
                {"id": "dims", "type": "InlineScan",
                 "schema": [["k", "Int"], ["label", "Str"]],
                 "rows": [[1, "a"], [2, "b"]]},
                {"id": "join", "type": "HashJoin", "probe": ["k"], "build": ["k"]},
                {"id": "agg", "type": "Aggregate", "group_by": ["label"],
                 "aggregations": ["count as n", "sum(x)"]},
                {"id": "out", "type": "Sink"}
            ],
            "links": [
                {"from": "dims", "to": "join", "port": 0, "partition": "hash", "keys": ["k"]},
                {"from": "facts", "to": "join", "port": 1, "partition": "hash", "keys": ["k"]},
                {"from": "join", "to": "agg", "port": 0, "partition": "hash", "keys": ["label"]},
                {"from": "agg", "to": "out", "port": 0, "partition": "single"}
            ]
        }"#;
        let spec = parse(text).unwrap();
        SimExecutor::new(EngineConfig::default())
            .run(&spec.workflow)
            .unwrap();
        let rows = spec.sinks["out"].results();
        assert_eq!(rows.len(), 2);
        let a = rows
            .iter()
            .find(|t| t.get_str("label").unwrap() == "a")
            .unwrap();
        assert_eq!(a.get_int("n").unwrap(), 2);
        assert_eq!(a.get_float("sum_x").unwrap(), 6.0);
    }

    #[test]
    fn errors_are_descriptive() {
        let err_of = |text: &str| match parse(text) {
            Err(e) => e.to_string(),
            Ok(_) => panic!("expected a spec error"),
        };
        assert!(err_of("{").contains("bad JSON"));
        assert!(
            err_of(r#"{"operators": [{"id": "x", "type": "Teleport"}], "links": []}"#)
                .contains("Teleport")
        );
        assert!(err_of(
            r#"{
            "operators": [{"id": "s", "type": "InlineScan",
                           "schema": [["a", "Int"]], "rows": [[1]]}],
            "links": [{"from": "s", "to": "ghost", "port": 0}]
        }"#
        )
        .contains("ghost"));
        assert!(err_of(
            r#"{
            "operators": [
                {"id": "s", "type": "InlineScan", "schema": [["a", "Int"]], "rows": []},
                {"id": "s", "type": "Sink"}
            ],
            "links": []
        }"#
        )
        .contains("duplicate"));
    }

    #[test]
    fn duplicate_ids_rejected_with_typed_error() {
        let err = match parse(
            r#"{
            "operators": [
                {"id": "s", "type": "InlineScan", "schema": [["a", "Int"]], "rows": []},
                {"id": "s", "type": "Sink"}
            ],
            "links": []
        }"#,
        ) {
            Err(e) => e,
            Ok(_) => panic!("duplicate ids must be rejected"),
        };
        match err {
            WorkflowError::DuplicateOperator { name } => assert_eq!(name, "s"),
            other => panic!("expected DuplicateOperator, got {other:?}"),
        }
    }

    #[test]
    fn predicate_dsl_variants() {
        let p =
            parse_predicate(&Json::parse(r#"{"column": "x", "op": "not-null"}"#).unwrap()).unwrap();
        let schema = Schema::of(&[("x", DataType::Int)]);
        let t = scriptflow_datakit::Tuple::new(schema.clone(), vec![Value::Int(1)]).unwrap();
        let null_t = scriptflow_datakit::Tuple::new(schema, vec![Value::Null]).unwrap();
        assert!(p(&t).unwrap());
        assert!(!p(&null_t).unwrap());

        let ge =
            parse_predicate(&Json::parse(r#"{"column": "x", "op": ">=", "value": 1}"#).unwrap())
                .unwrap();
        assert!(ge(&t).unwrap());
        assert!(!ge(&null_t).unwrap());

        assert!(parse_predicate(&Json::parse(r#"{"column": "x", "op": "~"}"#).unwrap()).is_err());
    }

    #[test]
    fn distinct_and_union_spec() {
        let text = r#"{
            "operators": [
                {"id": "a", "type": "InlineScan", "schema": [["v", "Int"]],
                 "rows": [[1], [2], [2]]},
                {"id": "b", "type": "InlineScan", "schema": [["v", "Int"]],
                 "rows": [[2], [3]]},
                {"id": "u", "type": "Union", "ports": 2},
                {"id": "d", "type": "Distinct", "columns": ["v"]},
                {"id": "out", "type": "Sink"}
            ],
            "links": [
                {"from": "a", "to": "u", "port": 0},
                {"from": "b", "to": "u", "port": 1},
                {"from": "u", "to": "d", "port": 0, "partition": "hash", "keys": ["v"]},
                {"from": "d", "to": "out", "port": 0, "partition": "single"}
            ]
        }"#;
        let spec = parse(text).unwrap();
        SimExecutor::new(EngineConfig::default())
            .run(&spec.workflow)
            .unwrap();
        let mut vs: Vec<i64> = spec.sinks["out"]
            .results()
            .iter()
            .map(|t| t.get_int("v").unwrap())
            .collect();
        vs.sort_unstable();
        assert_eq!(vs, vec![1, 2, 3]);
    }
}
