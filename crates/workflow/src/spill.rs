//! Shared spill machinery for budget-bounded blocking operators.
//!
//! When a blocking operator (hash join build, aggregation, sort) outgrows
//! its memory budget it hash-partitions state into [`PartitionWriter`]s,
//! which buffer tuples and flush them as compressed blocks into the
//! datakit block store. Sealed partitions come back as [`Segment`]s whose
//! manifests carry merged per-column statistics — the zone maps that let
//! probe-side input skip partitions whose key range cannot match. Every
//! write and read is counted on the [`OutputCollector`] so both executors
//! can charge spill I/O and surface it in telemetry.

use scriptflow_datakit::blockstore::{BlockAppender, Segment};
use scriptflow_datakit::{ColumnarBatch, DataResult, SchemaRef, Tuple};

use crate::operator::OutputCollector;

/// Fan-out of one round of hash partitioning. Eight-way matches the
/// grace-join literature's usual small fan-out and keeps recursion depth
/// shallow for realistic skew.
pub const SPILL_FANOUT: usize = 8;

/// Maximum recursive repartitioning depth before an overflow partition is
/// processed in memory regardless of budget (guards against all-equal-key
/// partitions that no salt can split).
pub const SPILL_MAX_DEPTH: u32 = 4;

/// Row cap per spilled block when sealing a pre-sorted run.
pub const SPILL_BLOCK_ROWS: usize = 512;

/// Deterministic in-memory footprint estimate of a buffered tuple: its
/// stable wire size plus per-row bookkeeping overhead. Budgets compare
/// against sums of this, so the estimate only needs to be stable and
/// monotone in the data, not exact.
pub fn tuple_footprint(t: &Tuple) -> usize {
    t.encoded_len() + 24
}

/// Buffers tuples bound for one spill partition and flushes them to the
/// block store whenever the buffer outgrows the flush threshold.
///
/// Buffered-but-unflushed tuples live in operator instance state, so a
/// faulted run quantum replays them exactly once along with everything
/// else the instance holds — durability of the spill path does not depend
/// on flush boundaries.
#[derive(Debug, Default)]
pub struct PartitionWriter {
    schema: Option<SchemaRef>,
    buffer: Vec<Tuple>,
    buffer_bytes: usize,
    appender: BlockAppender,
}

impl PartitionWriter {
    /// An empty writer; the schema is captured from the first tuple.
    pub fn new() -> Self {
        PartitionWriter::default()
    }

    /// Buffer one tuple, flushing a block once `flush_at` bytes are held.
    pub fn push(&mut self, tuple: Tuple, flush_at: usize, out: &mut OutputCollector) {
        if self.schema.is_none() {
            self.schema = Some(tuple.schema().clone());
        }
        self.buffer_bytes += tuple_footprint(&tuple);
        self.buffer.push(tuple);
        if self.buffer_bytes >= flush_at.max(1) {
            self.flush(out);
        }
    }

    /// Flush the buffered tuples as one compressed block (no-op when
    /// empty).
    pub fn flush(&mut self, out: &mut OutputCollector) {
        if self.buffer.is_empty() {
            return;
        }
        let schema = self
            .schema
            .clone()
            .expect("non-empty spill buffer always has a schema");
        let batch = ColumnarBatch::from_tuples(schema, &self.buffer);
        let bytes = self.appender.append(&batch);
        out.note_spill_write(bytes as u64);
        self.buffer.clear();
        self.buffer_bytes = 0;
    }

    /// Rows held, flushed or buffered.
    pub fn rows(&self) -> u64 {
        self.appender.row_count() + self.buffer.len() as u64
    }

    /// True when nothing was ever pushed.
    pub fn is_empty(&self) -> bool {
        self.rows() == 0
    }

    /// Flush any remainder and seal into an immutable segment.
    pub fn seal(mut self, out: &mut OutputCollector) -> Segment {
        self.flush(out);
        self.appender.seal()
    }
}

/// Seal an already-ordered slice of tuples (e.g. a sorted run) into a
/// segment of bounded-size blocks, charging one spill write per block.
pub fn seal_run(schema: &SchemaRef, tuples: &[Tuple], out: &mut OutputCollector) -> Segment {
    let mut app = BlockAppender::new();
    for chunk in tuples.chunks(SPILL_BLOCK_ROWS) {
        let batch = ColumnarBatch::from_tuples(schema.clone(), chunk);
        let bytes = app.append(&batch);
        out.note_spill_write(bytes as u64);
    }
    app.seal()
}

/// Decode every row of a segment back into tuples, charging one spill
/// read per block.
pub fn read_segment(seg: &Segment, out: &mut OutputCollector) -> DataResult<Vec<Tuple>> {
    let mut tuples = Vec::with_capacity(seg.manifest().row_count as usize);
    for block in seg.blocks() {
        out.note_spill_read();
        tuples.extend(block.decode()?.to_tuples());
    }
    Ok(tuples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scriptflow_datakit::{DataType, Schema, Value};

    fn tuples(n: i64) -> (SchemaRef, Vec<Tuple>) {
        let schema = Schema::of(&[("id", DataType::Int), ("tag", DataType::Str)]);
        let ts = (0..n)
            .map(|i| {
                Tuple::new(
                    schema.clone(),
                    vec![Value::Int(i), Value::Str(format!("t{i}"))],
                )
                .unwrap()
            })
            .collect();
        (schema, ts)
    }

    #[test]
    fn writer_flushes_blocks_and_counts_spill_io() {
        let (_, ts) = tuples(100);
        let mut out = OutputCollector::new();
        let mut w = PartitionWriter::new();
        for t in ts.clone() {
            w.push(t, 200, &mut out); // tiny threshold: many blocks
        }
        let seg = w.seal(&mut out);
        assert_eq!(seg.manifest().row_count, 100);
        assert!(seg.manifest().block_count > 1);
        assert_eq!(out.spilled_blocks(), seg.manifest().block_count);
        assert!(out.spilled_bytes() > 0);

        let back = read_segment(&seg, &mut out).unwrap();
        assert_eq!(out.spill_reads(), seg.manifest().block_count);
        let rows: Vec<_> = back.iter().map(|t| t.values().to_vec()).collect();
        let want: Vec<_> = ts.iter().map(|t| t.values().to_vec()).collect();
        assert_eq!(rows, want);
    }

    #[test]
    fn seal_run_bounds_block_size() {
        let (schema, ts) = tuples((SPILL_BLOCK_ROWS as i64) + 10);
        let mut out = OutputCollector::new();
        let seg = seal_run(&schema, &ts, &mut out);
        assert_eq!(seg.manifest().block_count, 2);
        assert_eq!(seg.manifest().row_count, ts.len() as u64);
        assert_eq!(out.spilled_blocks(), 2);
    }

    #[test]
    fn empty_writer_seals_to_empty_segment() {
        let mut out = OutputCollector::new();
        let seg = PartitionWriter::new().seal(&mut out);
        assert!(seg.is_empty());
        assert_eq!(out.spilled_blocks(), 0);
    }
}
