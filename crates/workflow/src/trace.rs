//! Execution progress traces — the data behind Texera's live status
//! display (§III-A: "different colors to visually represent the status
//! of each operator … and the amount of data being processed").
//!
//! The simulated executor can sample the per-operator counters at a
//! fixed virtual-time interval, yielding a [`ProgressTrace`] that a GUI
//! (or [`render_timeline`]) can replay.

use scriptflow_simcluster::SimTime;

use crate::metrics::OperatorState;

/// One operator's status at one sample instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperatorSnapshot {
    /// Operator display name.
    pub name: String,
    /// Lifecycle state at the instant.
    pub state: OperatorState,
    /// Tuples received so far.
    pub input_tuples: u64,
    /// Tuples emitted so far.
    pub output_tuples: u64,
}

/// A sampled execution timeline.
#[derive(Debug, Clone, Default)]
pub struct ProgressTrace {
    /// `(instant, one snapshot per operator)`, instants ascending.
    pub samples: Vec<(SimTime, Vec<OperatorSnapshot>)>,
}

impl ProgressTrace {
    /// Number of samples captured.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were captured.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The per-operator history of one operator, `(time, snapshot)`.
    pub fn operator_history(&self, name: &str) -> Vec<(SimTime, &OperatorSnapshot)> {
        self.samples
            .iter()
            .filter_map(|(t, snaps)| snaps.iter().find(|s| s.name == name).map(|s| (*t, s)))
            .collect()
    }

    /// The first sample time at which every operator had completed.
    pub fn completion_sample(&self) -> Option<SimTime> {
        self.samples
            .iter()
            .find(|(_, snaps)| snaps.iter().all(|s| s.state == OperatorState::Completed))
            .map(|(t, _)| *t)
    }
}

/// Render the trace as a compact text timeline: one row per operator,
/// one column per sample, with the state's initial letter
/// (I/R/P/C/F).
pub fn render_timeline(trace: &ProgressTrace) -> String {
    let mut out = String::new();
    if trace.is_empty() {
        return out;
    }
    let names: Vec<&str> = trace.samples[0].1.iter().map(|s| s.name.as_str()).collect();
    let width = names.iter().map(|n| n.len()).max().unwrap_or(8);
    for (i, name) in names.iter().enumerate() {
        out.push_str(&format!("{name:<width$} "));
        for (_, snaps) in &trace.samples {
            let ch = match snaps[i].state {
                OperatorState::Initializing => 'I',
                OperatorState::Running => 'R',
                OperatorState::Paused => 'P',
                OperatorState::Completed => 'C',
                OperatorState::Failed => 'F',
            };
            out.push(ch);
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "{:<width$} {} samples from {} to {}\n",
        "(time)",
        trace.samples.len(),
        trace.samples[0].0,
        trace.samples.last().expect("non-empty").0,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(name: &str, state: OperatorState, inp: u64, out: u64) -> OperatorSnapshot {
        OperatorSnapshot {
            name: name.into(),
            state,
            input_tuples: inp,
            output_tuples: out,
        }
    }

    fn sample_trace() -> ProgressTrace {
        ProgressTrace {
            samples: vec![
                (
                    SimTime::from_micros(0),
                    vec![
                        snap("scan", OperatorState::Running, 0, 10),
                        snap("sink", OperatorState::Initializing, 0, 0),
                    ],
                ),
                (
                    SimTime::from_micros(1_000),
                    vec![
                        snap("scan", OperatorState::Completed, 0, 100),
                        snap("sink", OperatorState::Completed, 100, 0),
                    ],
                ),
            ],
        }
    }

    #[test]
    fn history_and_completion() {
        let t = sample_trace();
        assert_eq!(t.len(), 2);
        let hist = t.operator_history("scan");
        assert_eq!(hist.len(), 2);
        assert_eq!(hist[1].1.output_tuples, 100);
        assert_eq!(t.completion_sample(), Some(SimTime::from_micros(1_000)));
        assert!(t.operator_history("nope").is_empty());
    }

    #[test]
    fn timeline_renders_state_letters() {
        let text = render_timeline(&sample_trace());
        let scan_line = text.lines().find(|l| l.starts_with("scan")).unwrap();
        assert!(scan_line.ends_with("RC"), "{scan_line}");
        let sink_line = text.lines().find(|l| l.starts_with("sink")).unwrap();
        assert!(sink_line.ends_with("IC"), "{sink_line}");
    }

    #[test]
    fn empty_trace_renders_empty() {
        assert!(render_timeline(&ProgressTrace::default()).is_empty());
    }
}
