//! Execution progress traces — the data behind Texera's live status
//! display (§III-A: "different colors to visually represent the status
//! of each operator … and the amount of data being processed").
//!
//! Both executors emit the same trace shape: the simulated executor
//! samples per-operator counters at a fixed virtual-time interval
//! ([`crate::exec_sim::SimExecutor::with_trace`]) and the pooled live
//! executor samples its [`crate::trace_live::LiveTracer`] at a
//! wall-clock interval ([`crate::exec_live::LiveExecutor::with_trace`]).
//! Either way the result is a [`ProgressTrace`] that a GUI (or
//! [`render_timeline`]) can replay, and that [`TraceJson`] exports as a
//! machine-readable document.

use scriptflow_datakit::codec::Json;
use scriptflow_simcluster::SimTime;

use crate::metrics::OperatorState;

/// One operator's status at one sample instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperatorSnapshot {
    /// Operator display name.
    pub name: String,
    /// Lifecycle state at the instant.
    pub state: OperatorState,
    /// Tuples received so far.
    pub input_tuples: u64,
    /// Tuples emitted so far.
    pub output_tuples: u64,
    /// Whole batches pruned so far by the operator's zone-map check
    /// (columnar path only; 0 on the row path).
    pub batches_skipped: u64,
    /// Compressed blocks spilled so far under a memory budget (0 when
    /// the run is unbounded).
    pub spilled_blocks: u64,
    /// Result-cache hits charged to the operator (1 when its output was
    /// served from a sealed segment; 0 otherwise or with the cache off).
    pub cache_hits: u64,
    /// Cache entries evicted to admit this operator's published output
    /// (0 unless the run's cache has a byte budget; set on the terminal
    /// sample when the run commits).
    pub cache_evictions: u64,
}

/// A sampled execution timeline.
#[derive(Debug, Clone, Default)]
pub struct ProgressTrace {
    /// `(instant, one snapshot per operator)`, instants ascending.
    pub samples: Vec<(SimTime, Vec<OperatorSnapshot>)>,
}

impl ProgressTrace {
    /// Number of samples captured.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were captured.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The per-operator history of one operator, `(time, snapshot)`.
    pub fn operator_history(&self, name: &str) -> Vec<(SimTime, &OperatorSnapshot)> {
        self.samples
            .iter()
            .filter_map(|(t, snaps)| snaps.iter().find(|s| s.name == name).map(|s| (*t, s)))
            .collect()
    }

    /// The first sample time at which every operator had completed.
    pub fn completion_sample(&self) -> Option<SimTime> {
        self.samples
            .iter()
            .find(|(_, snaps)| snaps.iter().all(|s| s.state == OperatorState::Completed))
            .map(|(t, _)| *t)
    }
}

/// Render the trace as a compact text timeline: one row per operator,
/// one column per sample, with the state's initial letter
/// (I/R/P/Y/C/D/F — `Y` is `Retrying`, whose `R` is taken).
pub fn render_timeline(trace: &ProgressTrace) -> String {
    let mut out = String::new();
    if trace.is_empty() {
        return out;
    }
    let names: Vec<&str> = trace.samples[0].1.iter().map(|s| s.name.as_str()).collect();
    let width = names.iter().map(|n| n.len()).max().unwrap_or(8);
    for (i, name) in names.iter().enumerate() {
        out.push_str(&format!("{name:<width$} "));
        for (_, snaps) in &trace.samples {
            let ch = match snaps[i].state {
                OperatorState::Initializing => 'I',
                OperatorState::Running => 'R',
                OperatorState::Paused => 'P',
                OperatorState::Retrying => 'Y',
                OperatorState::Completed => 'C',
                OperatorState::Degraded => 'D',
                OperatorState::Failed => 'F',
            };
            out.push(ch);
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "{:<width$} {} samples from {} to {}\n",
        "(time)",
        trace.samples.len(),
        trace.samples[0].0,
        trace.samples.last().expect("non-empty").0,
    ));
    out
}

/// A [`ProgressTrace`] as a JSON document — the wire format a web
/// front-end (or `BENCH_engine.json`) consumes, with a lossless
/// round-trip back into the in-memory trace.
///
/// Layout:
///
/// ```json
/// {"trace":"progress","samples":[
///   {"atMicros":0,"operators":[
///     {"name":"scan","state":"Running","color":"blue",
///      "inputTuples":0,"outputTuples":10}]}]}
/// ```
///
/// # Examples
///
/// ```
/// use scriptflow_workflow::trace::{ProgressTrace, TraceJson};
///
/// let doc = TraceJson::from_trace(&ProgressTrace::default());
/// let back = TraceJson::parse(&doc.to_string_compact()).unwrap();
/// assert!(back.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TraceJson {
    document: Json,
}

impl TraceJson {
    /// Export `trace` as a JSON document.
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::trace::{ProgressTrace, TraceJson};
    ///
    /// let text = TraceJson::from_trace(&ProgressTrace::default()).to_string_compact();
    /// assert!(text.contains("\"trace\":\"progress\""));
    /// ```
    pub fn from_trace(trace: &ProgressTrace) -> Self {
        let samples: Vec<Json> = trace
            .samples
            .iter()
            .map(|(at, snaps)| {
                let operators: Vec<Json> = snaps
                    .iter()
                    .map(|s| {
                        Json::Object(vec![
                            ("name".into(), Json::Str(s.name.clone())),
                            ("state".into(), Json::Str(s.state.label().into())),
                            ("color".into(), Json::Str(s.state.color().into())),
                            ("inputTuples".into(), Json::Int(s.input_tuples as i64)),
                            ("outputTuples".into(), Json::Int(s.output_tuples as i64)),
                            ("batchesSkipped".into(), Json::Int(s.batches_skipped as i64)),
                            ("spilledBlocks".into(), Json::Int(s.spilled_blocks as i64)),
                            ("cacheHits".into(), Json::Int(s.cache_hits as i64)),
                            ("cacheEvictions".into(), Json::Int(s.cache_evictions as i64)),
                        ])
                    })
                    .collect();
                Json::Object(vec![
                    ("atMicros".into(), Json::Int(at.as_micros() as i64)),
                    ("operators".into(), Json::Array(operators)),
                ])
            })
            .collect();
        TraceJson {
            document: Json::Object(vec![
                ("trace".into(), Json::Str("progress".into())),
                ("samples".into(), Json::Array(samples)),
            ]),
        }
    }

    /// Export `trace` tagged with the multi-tenant identity that
    /// produced it: a `tenant` / `run` pair inserted right after the
    /// document kind, so archived traces from a shared-pool service
    /// ([`crate::service::WorkflowService`]) stay attributable.
    /// [`TraceJson::parse`] looks fields up by key and round-trips
    /// labeled documents unchanged.
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::trace::{ProgressTrace, TraceJson};
    ///
    /// let text = TraceJson::from_trace_labeled(&ProgressTrace::default(), "acme", 7)
    ///     .to_string_compact();
    /// assert!(text.contains("\"tenant\":\"acme\""));
    /// assert!(text.contains("\"run\":7"));
    /// assert!(TraceJson::parse(&text).is_ok());
    /// ```
    pub fn from_trace_labeled(trace: &ProgressTrace, tenant: &str, run: u64) -> Self {
        let mut doc = Self::from_trace(trace);
        if let Json::Object(kv) = &mut doc.document {
            kv.insert(1, ("tenant".into(), Json::Str(tenant.to_owned())));
            kv.insert(2, ("run".into(), Json::Int(run as i64)));
        }
        doc
    }

    /// The underlying JSON document (for embedding into larger
    /// documents, e.g. [`crate::gui::observability_json`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_datakit::codec::Json;
    /// use scriptflow_workflow::trace::{ProgressTrace, TraceJson};
    ///
    /// let doc = TraceJson::from_trace(&ProgressTrace::default());
    /// assert!(matches!(doc.document(), Json::Object(_)));
    /// ```
    pub fn document(&self) -> &Json {
        &self.document
    }

    /// Consume the export, yielding the JSON document.
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_datakit::codec::Json;
    /// use scriptflow_workflow::trace::{ProgressTrace, TraceJson};
    ///
    /// let doc = TraceJson::from_trace(&ProgressTrace::default()).into_document();
    /// assert!(matches!(doc, Json::Object(_)));
    /// ```
    pub fn into_document(self) -> Json {
        self.document
    }

    /// Serialize the document compactly.
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::trace::{ProgressTrace, TraceJson};
    ///
    /// let text = TraceJson::from_trace(&ProgressTrace::default()).to_string_compact();
    /// assert!(text.starts_with('{') && text.ends_with('}'));
    /// ```
    pub fn to_string_compact(&self) -> String {
        self.document.to_string_compact()
    }

    /// Parse a serialized trace document back into a [`ProgressTrace`].
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_simcluster::SimTime;
    /// use scriptflow_workflow::trace::{OperatorSnapshot, ProgressTrace, TraceJson};
    /// use scriptflow_workflow::OperatorState;
    ///
    /// let trace = ProgressTrace {
    ///     samples: vec![(
    ///         SimTime::from_micros(5),
    ///         vec![OperatorSnapshot {
    ///             name: "scan".into(),
    ///             state: OperatorState::Completed,
    ///             input_tuples: 0,
    ///             output_tuples: 9,
    ///             batches_skipped: 0,
    ///             spilled_blocks: 0,
    ///             cache_hits: 0,
    ///             cache_evictions: 0,
    ///         }],
    ///     )],
    /// };
    /// let text = TraceJson::from_trace(&trace).to_string_compact();
    /// let back = TraceJson::parse(&text).unwrap();
    /// assert_eq!(back.samples, trace.samples);
    /// ```
    pub fn parse(text: &str) -> Result<ProgressTrace, String> {
        fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, String> {
            match obj {
                Json::Object(kv) => kv
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v)
                    .ok_or_else(|| format!("missing field `{key}`")),
                _ => Err(format!("expected object with `{key}`")),
            }
        }
        fn int(j: &Json, key: &str) -> Result<i64, String> {
            match field(j, key)? {
                Json::Int(i) => Ok(*i),
                other => Err(format!("field `{key}` is not an int: {other:?}")),
            }
        }
        fn str_of<'a>(j: &'a Json, key: &str) -> Result<&'a str, String> {
            match field(j, key)? {
                Json::Str(s) => Ok(s.as_str()),
                other => Err(format!("field `{key}` is not a string: {other:?}")),
            }
        }
        let doc = Json::parse(text)?;
        let samples = match field(&doc, "samples")? {
            Json::Array(samples) => samples,
            other => Err(format!("`samples` is not an array: {other:?}"))?,
        };
        let mut out = ProgressTrace::default();
        for sample in samples {
            let at = SimTime::from_micros(int(sample, "atMicros")?.max(0) as u64);
            let operators = match field(sample, "operators")? {
                Json::Array(ops) => ops,
                other => Err(format!("`operators` is not an array: {other:?}"))?,
            };
            let mut snaps = Vec::with_capacity(operators.len());
            for op in operators {
                let label = str_of(op, "state")?;
                snaps.push(OperatorSnapshot {
                    name: str_of(op, "name")?.to_owned(),
                    state: OperatorState::parse(label)
                        .ok_or_else(|| format!("unknown operator state `{label}`"))?,
                    input_tuples: int(op, "inputTuples")?.max(0) as u64,
                    output_tuples: int(op, "outputTuples")?.max(0) as u64,
                    // Absent in documents written before the columnar
                    // path existed; default rather than reject them.
                    batches_skipped: int(op, "batchesSkipped").unwrap_or(0).max(0) as u64,
                    // Likewise absent in pre-spill documents.
                    spilled_blocks: int(op, "spilledBlocks").unwrap_or(0).max(0) as u64,
                    // Likewise absent in pre-cache documents.
                    cache_hits: int(op, "cacheHits").unwrap_or(0).max(0) as u64,
                    // Likewise absent in pre-eviction documents.
                    cache_evictions: int(op, "cacheEvictions").unwrap_or(0).max(0) as u64,
                });
            }
            out.samples.push((at, snaps));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(name: &str, state: OperatorState, inp: u64, out: u64) -> OperatorSnapshot {
        OperatorSnapshot {
            name: name.into(),
            state,
            input_tuples: inp,
            output_tuples: out,
            batches_skipped: 0,
            spilled_blocks: 0,
            cache_hits: 0,
            cache_evictions: 0,
        }
    }

    fn sample_trace() -> ProgressTrace {
        ProgressTrace {
            samples: vec![
                (
                    SimTime::from_micros(0),
                    vec![
                        snap("scan", OperatorState::Running, 0, 10),
                        snap("sink", OperatorState::Initializing, 0, 0),
                    ],
                ),
                (
                    SimTime::from_micros(1_000),
                    vec![
                        snap("scan", OperatorState::Completed, 0, 100),
                        snap("sink", OperatorState::Completed, 100, 0),
                    ],
                ),
            ],
        }
    }

    #[test]
    fn history_and_completion() {
        let t = sample_trace();
        assert_eq!(t.len(), 2);
        let hist = t.operator_history("scan");
        assert_eq!(hist.len(), 2);
        assert_eq!(hist[1].1.output_tuples, 100);
        assert_eq!(t.completion_sample(), Some(SimTime::from_micros(1_000)));
        assert!(t.operator_history("nope").is_empty());
    }

    #[test]
    fn timeline_renders_state_letters() {
        let text = render_timeline(&sample_trace());
        let scan_line = text.lines().find(|l| l.starts_with("scan")).unwrap();
        assert!(scan_line.ends_with("RC"), "{scan_line}");
        let sink_line = text.lines().find(|l| l.starts_with("sink")).unwrap();
        assert!(sink_line.ends_with("IC"), "{sink_line}");
    }

    #[test]
    fn empty_trace_renders_empty() {
        assert!(render_timeline(&ProgressTrace::default()).is_empty());
    }

    #[test]
    fn trace_json_roundtrips() {
        let trace = sample_trace();
        let text = TraceJson::from_trace(&trace).to_string_compact();
        assert!(text.contains("\"state\":\"Completed\""));
        assert!(text.contains("\"color\":\"green\""));
        let back = TraceJson::parse(&text).unwrap();
        assert_eq!(back.samples, trace.samples);
        // The round-tripped trace renders identically.
        assert_eq!(render_timeline(&back), render_timeline(&trace));
    }

    #[test]
    fn trace_json_roundtrips_skip_counts_and_defaults_when_absent() {
        let mut trace = sample_trace();
        trace.samples[1].1[0].batches_skipped = 7;
        trace.samples[1].1[0].spilled_blocks = 5;
        trace.samples[1].1[0].cache_hits = 1;
        trace.samples[1].1[0].cache_evictions = 2;
        let text = TraceJson::from_trace(&trace).to_string_compact();
        assert!(text.contains("\"batchesSkipped\":7"));
        assert!(text.contains("\"spilledBlocks\":5"));
        assert!(text.contains("\"cacheHits\":1"));
        assert!(text.contains("\"cacheEvictions\":2"));
        let back = TraceJson::parse(&text).unwrap();
        assert_eq!(back.samples, trace.samples);
        // Documents written before the columnar, spill, and cache paths
        // carry none of these keys; they still parse, defaulting to 0.
        let legacy = "{\"samples\":[{\"atMicros\":0,\"operators\":[{\"name\":\"x\",\
                      \"state\":\"Completed\",\"inputTuples\":3,\"outputTuples\":2}]}]}";
        let back = TraceJson::parse(legacy).unwrap();
        assert_eq!(back.samples[0].1[0].batches_skipped, 0);
        assert_eq!(back.samples[0].1[0].spilled_blocks, 0);
        assert_eq!(back.samples[0].1[0].cache_hits, 0);
        assert_eq!(back.samples[0].1[0].cache_evictions, 0);
    }

    #[test]
    fn trace_json_labeled_roundtrips_losslessly() {
        let trace = sample_trace();
        let text = TraceJson::from_trace_labeled(&trace, "tenant-a", 42).to_string_compact();
        assert!(text.contains("\"tenant\":\"tenant-a\""));
        assert!(text.contains("\"run\":42"));
        // The tenant/run tags ride along; the samples parse unchanged.
        let back = TraceJson::parse(&text).unwrap();
        assert_eq!(back.samples, trace.samples);
    }

    #[test]
    fn trace_json_rejects_bad_documents() {
        assert!(TraceJson::parse("{}").is_err());
        assert!(TraceJson::parse("{\"samples\":[{\"atMicros\":0}]}").is_err());
        assert!(TraceJson::parse(
            "{\"samples\":[{\"atMicros\":0,\"operators\":[{\"name\":\"x\",\"state\":\"Bogus\",\"inputTuples\":0,\"outputTuples\":0}]}]}"
        )
        .is_err());
    }
}
