//! Live observability: the lock-light event tracer behind the pooled
//! executor's per-operator progress display.
//!
//! The paper's GUI-paradigm claim (§III-A) is that the workflow engine
//! "utilizes different colors to visually represent the status of each
//! operator … and provides information about the amount of data being
//! processed". [`crate::exec_sim::SimExecutor`] reproduces that display
//! on the virtual clock; this module gives the pooled
//! [`crate::exec_live::LiveExecutor`] the same power on wall-clock time.
//!
//! A [`LiveTracer`] is a vector of per-operator [`OperatorProbe`]s —
//! plain atomics written from the executor's per-task hooks (tuple
//! arrival, tuple emission, run-quantum completion, backpressure stall,
//! mailbox push/pop, worker completion, failure). No hook takes a lock,
//! so tracing adds a handful of relaxed atomic adds to the hot path. A
//! sampler thread calls [`LiveTracer::snapshot`] on a wall-clock
//! interval, producing the exact [`ProgressTrace`]/[`OperatorSnapshot`]
//! shape the simulated executor emits — so [`crate::gui`] and
//! [`crate::trace::render_timeline`] replay live and simulated runs
//! identically.

use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use scriptflow_simcluster::{SimDuration, SimTime};

use crate::metrics::OperatorState;
use crate::trace::{OperatorSnapshot, ProgressTrace};

/// Monotone `u8` encoding of [`OperatorState`] for lock-free state
/// transitions: states only ever move to a higher code, and `fetch_max`
/// makes the failure states sticky even when a concurrent worker reports
/// completion — `Retrying` outranks `Running` (the badge stays visible
/// until a terminal state clears it), `Degraded` outranks `Completed`
/// (a clean finish cannot mask truncated input) and `Failed` outranks
/// everything. (`Paused` is unreachable in live runs — the pooled
/// executor has no pause control — but keeps the codes aligned with the
/// enum for exhaustiveness.)
fn state_code(state: OperatorState) -> u8 {
    match state {
        OperatorState::Initializing => 0,
        OperatorState::Running => 1,
        OperatorState::Paused => 2,
        OperatorState::Retrying => 3,
        OperatorState::Completed => 4,
        OperatorState::Degraded => 5,
        OperatorState::Failed => 6,
    }
}

fn code_state(code: u8) -> OperatorState {
    match code {
        0 => OperatorState::Initializing,
        1 => OperatorState::Running,
        2 => OperatorState::Paused,
        3 => OperatorState::Retrying,
        4 => OperatorState::Completed,
        5 => OperatorState::Degraded,
        _ => OperatorState::Failed,
    }
}

/// Lock-free per-operator counters, written by pool threads through
/// relaxed atomics and read by the sampler thread.
///
/// One probe aggregates every worker of one operator: the lifecycle
/// state, the Fig.-9 tuple counters, summed busy time across workers,
/// the combined depth of the workers' input mailboxes, and how often a
/// producer stalled trying to deliver into those mailboxes.
///
/// # Examples
///
/// ```
/// use scriptflow_workflow::trace_live::LiveTracer;
/// use scriptflow_workflow::OperatorState;
///
/// let tracer = LiveTracer::new(vec!["scan".to_owned()], &[2]);
/// tracer.on_output(0, 10);
/// let probe = tracer.probe(0);
/// assert_eq!(probe.output_tuples(), 10);
/// assert_eq!(probe.state(), OperatorState::Running);
/// ```
#[derive(Debug)]
pub struct OperatorProbe {
    name: String,
    state: AtomicU8,
    input_tuples: AtomicU64,
    output_tuples: AtomicU64,
    batches_skipped: AtomicU64,
    spilled_blocks: AtomicU64,
    spilled_bytes: AtomicU64,
    spill_reads: AtomicU64,
    busy_nanos: AtomicU64,
    attempts: AtomicU64,
    retries: AtomicU64,
    stalls: AtomicU64,
    mailbox_depth: AtomicUsize,
    peak_mailbox_depth: AtomicUsize,
    workers_remaining: AtomicUsize,
}

impl OperatorProbe {
    fn new(name: String, workers: usize) -> Self {
        OperatorProbe {
            name,
            state: AtomicU8::new(state_code(OperatorState::Initializing)),
            input_tuples: AtomicU64::new(0),
            output_tuples: AtomicU64::new(0),
            batches_skipped: AtomicU64::new(0),
            spilled_blocks: AtomicU64::new(0),
            spilled_bytes: AtomicU64::new(0),
            spill_reads: AtomicU64::new(0),
            busy_nanos: AtomicU64::new(0),
            attempts: AtomicU64::new(workers as u64),
            retries: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            mailbox_depth: AtomicUsize::new(0),
            peak_mailbox_depth: AtomicUsize::new(0),
            workers_remaining: AtomicUsize::new(workers),
        }
    }

    /// Operator display name.
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::trace_live::LiveTracer;
    /// let tracer = LiveTracer::new(vec!["sink".to_owned()], &[1]);
    /// assert_eq!(tracer.probe(0).name(), "sink");
    /// ```
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current lifecycle state.
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::trace_live::LiveTracer;
    /// use scriptflow_workflow::OperatorState;
    /// let tracer = LiveTracer::new(vec!["op".to_owned()], &[1]);
    /// assert_eq!(tracer.probe(0).state(), OperatorState::Initializing);
    /// ```
    pub fn state(&self) -> OperatorState {
        code_state(self.state.load(Ordering::Acquire))
    }

    /// Tuples received across all workers so far.
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::trace_live::LiveTracer;
    /// let tracer = LiveTracer::new(vec!["op".to_owned()], &[1]);
    /// tracer.on_input(0, 7);
    /// assert_eq!(tracer.probe(0).input_tuples(), 7);
    /// ```
    pub fn input_tuples(&self) -> u64 {
        self.input_tuples.load(Ordering::Relaxed)
    }

    /// Tuples emitted across all workers so far.
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::trace_live::LiveTracer;
    /// let tracer = LiveTracer::new(vec!["op".to_owned()], &[1]);
    /// tracer.on_output(0, 3);
    /// assert_eq!(tracer.probe(0).output_tuples(), 3);
    /// ```
    pub fn output_tuples(&self) -> u64 {
        self.output_tuples.load(Ordering::Relaxed)
    }

    /// Whole input batches this operator's zone-map checks pruned
    /// (columnar path only; see
    /// [`crate::OutputCollector::note_batch_skipped`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::trace_live::LiveTracer;
    /// let tracer = LiveTracer::new(vec!["filter".to_owned()], &[1]);
    /// tracer.on_batches_skipped(0, 3);
    /// assert_eq!(tracer.probe(0).batches_skipped(), 3);
    /// ```
    pub fn batches_skipped(&self) -> u64 {
        self.batches_skipped.load(Ordering::Relaxed)
    }

    /// Compressed blocks this operator spilled past its memory budget
    /// (see [`crate::OutputCollector::note_spill_write`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::trace_live::LiveTracer;
    /// let tracer = LiveTracer::new(vec!["join".to_owned()], &[1]);
    /// tracer.on_spill(0, 2, 512, 0);
    /// assert_eq!(tracer.probe(0).spilled_blocks(), 2);
    /// ```
    pub fn spilled_blocks(&self) -> u64 {
        self.spilled_blocks.load(Ordering::Relaxed)
    }

    /// Compressed bytes across this operator's spilled blocks.
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::trace_live::LiveTracer;
    /// let tracer = LiveTracer::new(vec!["join".to_owned()], &[1]);
    /// tracer.on_spill(0, 2, 512, 0);
    /// assert_eq!(tracer.probe(0).spilled_bytes(), 512);
    /// ```
    pub fn spilled_bytes(&self) -> u64 {
        self.spilled_bytes.load(Ordering::Relaxed)
    }

    /// Spilled blocks this operator read back (partition joins, run
    /// merges).
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::trace_live::LiveTracer;
    /// let tracer = LiveTracer::new(vec!["join".to_owned()], &[1]);
    /// tracer.on_spill(0, 0, 0, 3);
    /// assert_eq!(tracer.probe(0).spill_reads(), 3);
    /// ```
    pub fn spill_reads(&self) -> u64 {
        self.spill_reads.load(Ordering::Relaxed)
    }

    /// Summed busy (run-quantum) time across this operator's workers.
    ///
    /// # Examples
    ///
    /// ```
    /// use std::time::Duration;
    /// use scriptflow_workflow::trace_live::LiveTracer;
    /// let tracer = LiveTracer::new(vec!["op".to_owned()], &[1]);
    /// tracer.on_busy(0, Duration::from_millis(2));
    /// assert!(tracer.probe(0).busy().as_secs_f64() >= 0.002);
    /// ```
    pub fn busy(&self) -> SimDuration {
        SimDuration::from_micros(self.busy_nanos.load(Ordering::Relaxed) / 1_000)
    }

    /// Run attempts across this operator's workers: one per worker
    /// launch plus one per retry, so `attempts() == workers + retries()`
    /// by construction.
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::trace_live::LiveTracer;
    /// let tracer = LiveTracer::new(vec!["op".to_owned()], &[2]);
    /// assert_eq!(tracer.probe(0).attempts(), 2);
    /// tracer.on_retrying(0);
    /// assert_eq!(tracer.probe(0).attempts(), 3);
    /// ```
    pub fn attempts(&self) -> u64 {
        self.attempts.load(Ordering::Relaxed)
    }

    /// Faulted run quanta replayed under a retry budget (see
    /// [`crate::retry`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::trace_live::LiveTracer;
    /// let tracer = LiveTracer::new(vec!["op".to_owned()], &[1]);
    /// assert_eq!(tracer.probe(0).retries(), 0);
    /// tracer.on_retrying(0);
    /// assert_eq!(tracer.probe(0).retries(), 1);
    /// ```
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Times a producer found one of this operator's mailboxes full and
    /// had to yield its pool thread.
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::trace_live::LiveTracer;
    /// let tracer = LiveTracer::new(vec!["op".to_owned()], &[1]);
    /// tracer.on_stall(0);
    /// assert_eq!(tracer.probe(0).stalls(), 1);
    /// ```
    pub fn stalls(&self) -> u64 {
        self.stalls.load(Ordering::Relaxed)
    }

    /// Messages currently queued across this operator's worker mailboxes.
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::trace_live::LiveTracer;
    /// let tracer = LiveTracer::new(vec!["op".to_owned()], &[1]);
    /// tracer.on_mailbox_push(0);
    /// assert_eq!(tracer.probe(0).mailbox_depth(), 1);
    /// tracer.on_mailbox_pop(0);
    /// assert_eq!(tracer.probe(0).mailbox_depth(), 0);
    /// ```
    pub fn mailbox_depth(&self) -> usize {
        self.mailbox_depth.load(Ordering::Relaxed)
    }

    /// High-water mark of [`OperatorProbe::mailbox_depth`] over the run.
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::trace_live::LiveTracer;
    /// let tracer = LiveTracer::new(vec!["op".to_owned()], &[1]);
    /// tracer.on_mailbox_push(0);
    /// tracer.on_mailbox_pop(0);
    /// assert_eq!(tracer.probe(0).peak_mailbox_depth(), 1);
    /// ```
    pub fn peak_mailbox_depth(&self) -> usize {
        self.peak_mailbox_depth.load(Ordering::Relaxed)
    }

    /// One point-in-time [`OperatorSnapshot`] of this probe.
    fn snapshot(&self) -> OperatorSnapshot {
        OperatorSnapshot {
            name: self.name.clone(),
            state: self.state(),
            input_tuples: self.input_tuples(),
            output_tuples: self.output_tuples(),
            batches_skipped: self.batches_skipped(),
            spilled_blocks: self.spilled_blocks(),
            // Live cache accounting rides on the planner's factory
            // markers and surfaces through `PoolStats`, not the probes;
            // evictions land on the terminal sample at commit time.
            cache_hits: 0,
            cache_evictions: 0,
        }
    }

    /// Monotone state promotion (see [`state_code`]).
    fn promote(&self, to: OperatorState) {
        self.state.fetch_max(state_code(to), Ordering::AcqRel);
    }
}

/// The live event tracer: one [`OperatorProbe`] per operator plus the
/// wall-clock epoch snapshots are timed against.
///
/// Hooks are safe to call from any pool thread concurrently; sampling
/// never blocks a hook. Timestamps are wall-clock time since
/// [`LiveTracer::new`], expressed as [`SimTime`] micros so live traces
/// drop into every consumer built for simulated traces
/// ([`crate::trace::render_timeline`], [`crate::trace::TraceJson`],
/// [`crate::gui`]).
///
/// # Examples
///
/// ```
/// use scriptflow_workflow::trace_live::LiveTracer;
/// use scriptflow_workflow::OperatorState;
///
/// let tracer = LiveTracer::new(
///     vec!["scan".to_owned(), "sink".to_owned()],
///     &[1, 1],
/// );
/// tracer.on_output(0, 5);
/// tracer.on_input(1, 5);
/// tracer.on_worker_done(0);
/// tracer.on_worker_done(1);
///
/// let (at, snaps) = tracer.snapshot();
/// assert_eq!(snaps.len(), 2);
/// assert_eq!(snaps[0].output_tuples, 5);
/// assert_eq!(snaps[1].state, OperatorState::Completed);
/// assert!(at.as_micros() < 1_000_000, "snapshot is stamped with elapsed time");
/// ```
#[derive(Debug)]
pub struct LiveTracer {
    started: Instant,
    probes: Vec<OperatorProbe>,
}

impl LiveTracer {
    /// A tracer for operators named `names`, where operator `i` runs
    /// `workers[i]` parallel workers. Every operator starts
    /// [`OperatorState::Initializing`].
    ///
    /// # Panics
    ///
    /// Panics if `names` and `workers` disagree in length.
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::trace_live::LiveTracer;
    /// let tracer = LiveTracer::new(vec!["a".to_owned(), "b".to_owned()], &[2, 1]);
    /// assert_eq!(tracer.operator_count(), 2);
    /// ```
    pub fn new(names: Vec<String>, workers: &[usize]) -> Self {
        assert_eq!(names.len(), workers.len(), "one worker count per operator");
        LiveTracer {
            started: Instant::now(),
            probes: names
                .into_iter()
                .zip(workers)
                .map(|(n, &w)| OperatorProbe::new(n, w))
                .collect(),
        }
    }

    /// Number of traced operators.
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::trace_live::LiveTracer;
    /// let tracer = LiveTracer::new(vec!["only".to_owned()], &[4]);
    /// assert_eq!(tracer.operator_count(), 1);
    /// ```
    pub fn operator_count(&self) -> usize {
        self.probes.len()
    }

    /// The probe of operator `op`.
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::trace_live::LiveTracer;
    /// let tracer = LiveTracer::new(vec!["x".to_owned()], &[1]);
    /// assert_eq!(tracer.probe(0).input_tuples(), 0);
    /// ```
    pub fn probe(&self, op: usize) -> &OperatorProbe {
        &self.probes[op]
    }

    /// Hook: `n` tuples arrived at a worker of `op`. Promotes the
    /// operator to [`OperatorState::Running`].
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::trace_live::LiveTracer;
    /// use scriptflow_workflow::OperatorState;
    /// let tracer = LiveTracer::new(vec!["op".to_owned()], &[1]);
    /// tracer.on_input(0, 2);
    /// assert_eq!(tracer.probe(0).state(), OperatorState::Running);
    /// ```
    pub fn on_input(&self, op: usize, n: u64) {
        self.probes[op].input_tuples.fetch_add(n, Ordering::Relaxed);
        self.probes[op].promote(OperatorState::Running);
    }

    /// Hook: a worker of `op` emitted `n` tuples. Promotes the operator
    /// to [`OperatorState::Running`] (sources never receive input, so
    /// this is their only Running transition).
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::trace_live::LiveTracer;
    /// use scriptflow_workflow::OperatorState;
    /// let tracer = LiveTracer::new(vec!["source".to_owned()], &[1]);
    /// tracer.on_output(0, 8);
    /// assert_eq!(tracer.probe(0).state(), OperatorState::Running);
    /// ```
    pub fn on_output(&self, op: usize, n: u64) {
        self.probes[op]
            .output_tuples
            .fetch_add(n, Ordering::Relaxed);
        self.probes[op].promote(OperatorState::Running);
    }

    /// Hook: a worker of `op` spent `elapsed` inside a run quantum.
    ///
    /// # Examples
    ///
    /// ```
    /// use std::time::Duration;
    /// use scriptflow_workflow::trace_live::LiveTracer;
    /// let tracer = LiveTracer::new(vec!["op".to_owned()], &[1]);
    /// tracer.on_busy(0, Duration::from_micros(500));
    /// tracer.on_busy(0, Duration::from_micros(500));
    /// assert_eq!(tracer.probe(0).busy().as_micros(), 1_000);
    /// ```
    pub fn on_busy(&self, op: usize, elapsed: Duration) {
        let nanos = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.probes[op]
            .busy_nanos
            .fetch_add(nanos, Ordering::Relaxed);
    }

    /// Hook: `n` whole input batches at a worker of `op` were pruned by
    /// its zone-map statistics check (the executor drains the
    /// [`crate::OutputCollector`] skip counter here after each
    /// `on_batch` call).
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::trace_live::LiveTracer;
    /// let tracer = LiveTracer::new(vec!["filter".to_owned()], &[1]);
    /// tracer.on_batches_skipped(0, 2);
    /// assert_eq!(tracer.probe(0).batches_skipped(), 2);
    /// ```
    pub fn on_batches_skipped(&self, op: usize, n: u64) {
        self.probes[op]
            .batches_skipped
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Hook: a worker of `op` performed spill I/O — `blocks` compressed
    /// blocks totalling `bytes` were written past the memory budget and
    /// `reads` previously spilled blocks were read back (the executor
    /// drains the [`crate::OutputCollector`] spill counters here after
    /// each run quantum).
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::trace_live::LiveTracer;
    /// let tracer = LiveTracer::new(vec!["join".to_owned()], &[1]);
    /// tracer.on_spill(0, 4, 1_024, 2);
    /// assert_eq!(tracer.probe(0).spilled_blocks(), 4);
    /// assert_eq!(tracer.probe(0).spilled_bytes(), 1_024);
    /// assert_eq!(tracer.probe(0).spill_reads(), 2);
    /// ```
    pub fn on_spill(&self, op: usize, blocks: u64, bytes: u64, reads: u64) {
        if blocks == 0 && bytes == 0 && reads == 0 {
            return;
        }
        let probe = &self.probes[op];
        probe.spilled_blocks.fetch_add(blocks, Ordering::Relaxed);
        probe.spilled_bytes.fetch_add(bytes, Ordering::Relaxed);
        probe.spill_reads.fetch_add(reads, Ordering::Relaxed);
    }

    /// Hook: a producer found a mailbox of `op` full and yielded.
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::trace_live::LiveTracer;
    /// let tracer = LiveTracer::new(vec!["op".to_owned()], &[1]);
    /// tracer.on_stall(0);
    /// tracer.on_stall(0);
    /// assert_eq!(tracer.probe(0).stalls(), 2);
    /// ```
    pub fn on_stall(&self, op: usize) {
        self.probes[op].stalls.fetch_add(1, Ordering::Relaxed);
    }

    /// Hook: a message entered a mailbox of `op`.
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::trace_live::LiveTracer;
    /// let tracer = LiveTracer::new(vec!["op".to_owned()], &[1]);
    /// tracer.on_mailbox_push(0);
    /// assert_eq!(tracer.probe(0).mailbox_depth(), 1);
    /// ```
    pub fn on_mailbox_push(&self, op: usize) {
        let probe = &self.probes[op];
        let depth = probe.mailbox_depth.fetch_add(1, Ordering::Relaxed) + 1;
        probe.peak_mailbox_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// Hook: a message left a mailbox of `op`.
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::trace_live::LiveTracer;
    /// let tracer = LiveTracer::new(vec!["op".to_owned()], &[1]);
    /// tracer.on_mailbox_push(0);
    /// tracer.on_mailbox_pop(0);
    /// assert_eq!(tracer.probe(0).mailbox_depth(), 0);
    /// ```
    pub fn on_mailbox_pop(&self, op: usize) {
        self.probes[op]
            .mailbox_depth
            .fetch_sub(1, Ordering::Relaxed);
    }

    /// Hook: one worker of `op` finished. When the last worker finishes
    /// the operator is promoted to [`OperatorState::Completed`] (unless
    /// it already [`OperatorState::Failed`] — failure is sticky).
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::trace_live::LiveTracer;
    /// use scriptflow_workflow::OperatorState;
    /// let tracer = LiveTracer::new(vec!["op".to_owned()], &[2]);
    /// tracer.on_worker_done(0);
    /// assert_ne!(tracer.probe(0).state(), OperatorState::Completed);
    /// tracer.on_worker_done(0);
    /// assert_eq!(tracer.probe(0).state(), OperatorState::Completed);
    /// ```
    pub fn on_worker_done(&self, op: usize) {
        let probe = &self.probes[op];
        if probe.workers_remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            probe.promote(OperatorState::Completed);
        }
    }

    /// Hook: a worker of `op` faulted but holds retry budget — its run
    /// quantum is being replayed. Bumps the attempt/retry counters and
    /// promotes the operator to [`OperatorState::Retrying`], which stays
    /// visible (it outranks `Running`) until a terminal state clears it:
    /// a successful replay ends in `Completed`, an exhausted budget in
    /// `Failed`.
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::trace_live::LiveTracer;
    /// use scriptflow_workflow::OperatorState;
    /// let tracer = LiveTracer::new(vec!["op".to_owned()], &[1]);
    /// tracer.on_retrying(0);
    /// assert_eq!(tracer.probe(0).state(), OperatorState::Retrying);
    /// tracer.on_worker_done(0); // the replay finished the operator
    /// assert_eq!(tracer.probe(0).state(), OperatorState::Completed);
    /// ```
    pub fn on_retrying(&self, op: usize) {
        let probe = &self.probes[op];
        probe.attempts.fetch_add(1, Ordering::Relaxed);
        probe.retries.fetch_add(1, Ordering::Relaxed);
        probe.promote(OperatorState::Retrying);
    }

    /// Hook: a worker of `op` raised an error. The operator moves to
    /// [`OperatorState::Failed`] and stays there.
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::trace_live::LiveTracer;
    /// use scriptflow_workflow::OperatorState;
    /// let tracer = LiveTracer::new(vec!["op".to_owned()], &[1]);
    /// tracer.on_failed(0);
    /// tracer.on_worker_done(0); // completion after failure cannot mask it
    /// assert_eq!(tracer.probe(0).state(), OperatorState::Failed);
    /// ```
    pub fn on_failed(&self, op: usize) {
        self.probes[op].promote(OperatorState::Failed);
    }

    /// Hook: `op`'s input was truncated by an upstream failure (the
    /// executor's drain path sends EOS on behalf of a failed producer).
    /// The operator finishes [`OperatorState::Degraded`] instead of
    /// `Completed` — partial output, surfaced as such. A direct failure
    /// of the operator itself still outranks this (`Failed` is stickier).
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::trace_live::LiveTracer;
    /// use scriptflow_workflow::OperatorState;
    /// let tracer = LiveTracer::new(vec!["op".to_owned()], &[1]);
    /// tracer.on_degraded(0);
    /// tracer.on_worker_done(0); // completion cannot mask the truncation
    /// assert_eq!(tracer.probe(0).state(), OperatorState::Degraded);
    /// ```
    pub fn on_degraded(&self, op: usize) {
        self.probes[op].promote(OperatorState::Degraded);
    }

    /// Total quantum replays across all operators.
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::trace_live::LiveTracer;
    /// let tracer = LiveTracer::new(vec!["a".to_owned(), "b".to_owned()], &[1, 1]);
    /// tracer.on_retrying(0);
    /// tracer.on_retrying(1);
    /// assert_eq!(tracer.total_retries(), 2);
    /// ```
    pub fn total_retries(&self) -> u64 {
        self.probes.iter().map(OperatorProbe::retries).sum()
    }

    /// Total zone-map batch prunes across all operators.
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::trace_live::LiveTracer;
    /// let tracer = LiveTracer::new(vec!["a".to_owned(), "b".to_owned()], &[1, 1]);
    /// tracer.on_batches_skipped(0, 2);
    /// tracer.on_batches_skipped(1, 1);
    /// assert_eq!(tracer.total_batches_skipped(), 3);
    /// ```
    pub fn total_batches_skipped(&self) -> u64 {
        self.probes.iter().map(OperatorProbe::batches_skipped).sum()
    }

    /// Total spilled blocks across all operators.
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::trace_live::LiveTracer;
    /// let tracer = LiveTracer::new(vec!["a".to_owned(), "b".to_owned()], &[1, 1]);
    /// tracer.on_spill(0, 2, 64, 1);
    /// tracer.on_spill(1, 3, 96, 0);
    /// assert_eq!(tracer.total_spilled_blocks(), 5);
    /// ```
    pub fn total_spilled_blocks(&self) -> u64 {
        self.probes.iter().map(OperatorProbe::spilled_blocks).sum()
    }

    /// Total compressed bytes spilled across all operators.
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::trace_live::LiveTracer;
    /// let tracer = LiveTracer::new(vec!["a".to_owned()], &[1]);
    /// tracer.on_spill(0, 2, 64, 0);
    /// assert_eq!(tracer.total_spilled_bytes(), 64);
    /// ```
    pub fn total_spilled_bytes(&self) -> u64 {
        self.probes.iter().map(OperatorProbe::spilled_bytes).sum()
    }

    /// Total spilled-block read-backs across all operators.
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::trace_live::LiveTracer;
    /// let tracer = LiveTracer::new(vec!["a".to_owned()], &[1]);
    /// tracer.on_spill(0, 0, 0, 4);
    /// assert_eq!(tracer.total_spill_reads(), 4);
    /// ```
    pub fn total_spill_reads(&self) -> u64 {
        self.probes.iter().map(OperatorProbe::spill_reads).sum()
    }

    /// Total backpressure stalls across all operators.
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::trace_live::LiveTracer;
    /// let tracer = LiveTracer::new(vec!["a".to_owned(), "b".to_owned()], &[1, 1]);
    /// tracer.on_stall(0);
    /// tracer.on_stall(1);
    /// assert_eq!(tracer.total_stalls(), 2);
    /// ```
    pub fn total_stalls(&self) -> u64 {
        self.probes.iter().map(OperatorProbe::stalls).sum()
    }

    /// Peak combined mailbox depth observed at any single operator.
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::trace_live::LiveTracer;
    /// let tracer = LiveTracer::new(vec!["a".to_owned(), "b".to_owned()], &[1, 1]);
    /// tracer.on_mailbox_push(1);
    /// assert_eq!(tracer.peak_mailbox_depth(), 1);
    /// ```
    pub fn peak_mailbox_depth(&self) -> usize {
        self.probes
            .iter()
            .map(OperatorProbe::peak_mailbox_depth)
            .max()
            .unwrap_or(0)
    }

    /// Wall-clock time since the tracer was created, as [`SimTime`].
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::trace_live::LiveTracer;
    /// let tracer = LiveTracer::new(vec!["op".to_owned()], &[1]);
    /// let t = tracer.elapsed();
    /// assert!(t.as_micros() < 60_000_000, "fresh tracer: {t}");
    /// ```
    pub fn elapsed(&self) -> SimTime {
        let us = self.started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        SimTime::from_micros(us)
    }

    /// One sample: the current instant plus a snapshot of every
    /// operator, in operator-id order — exactly one row of a
    /// [`ProgressTrace`].
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::trace_live::LiveTracer;
    /// let tracer = LiveTracer::new(vec!["op".to_owned()], &[1]);
    /// let (_, snaps) = tracer.snapshot();
    /// assert_eq!(snaps.len(), 1);
    /// assert_eq!(snaps[0].name, "op");
    /// ```
    pub fn snapshot(&self) -> (SimTime, Vec<OperatorSnapshot>) {
        (
            self.elapsed(),
            self.probes.iter().map(OperatorProbe::snapshot).collect(),
        )
    }

    /// Assemble a [`ProgressTrace`] from collected samples, appending
    /// one final snapshot so the trace always ends with terminal
    /// states and final counts (mirroring the simulated executor, which
    /// samples once more at the makespan).
    ///
    /// # Examples
    ///
    /// ```
    /// use scriptflow_workflow::trace_live::LiveTracer;
    /// let tracer = LiveTracer::new(vec!["op".to_owned()], &[1]);
    /// tracer.on_worker_done(0);
    /// let trace = tracer.finish(vec![]);
    /// assert_eq!(trace.len(), 1); // the appended final sample
    /// ```
    pub fn finish(&self, mut samples: Vec<(SimTime, Vec<OperatorSnapshot>)>) -> ProgressTrace {
        samples.push(self.snapshot());
        ProgressTrace { samples }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracer() -> LiveTracer {
        LiveTracer::new(vec!["scan".into(), "sink".into()], &[2, 1])
    }

    #[test]
    fn counters_accumulate_across_hooks() {
        let t = tracer();
        t.on_output(0, 10);
        t.on_output(0, 5);
        t.on_input(1, 15);
        assert_eq!(t.probe(0).output_tuples(), 15);
        assert_eq!(t.probe(1).input_tuples(), 15);
        assert_eq!(t.probe(0).input_tuples(), 0);
    }

    #[test]
    fn lifecycle_is_monotone_and_failure_sticky() {
        let t = tracer();
        assert_eq!(t.probe(0).state(), OperatorState::Initializing);
        t.on_output(0, 1);
        assert_eq!(t.probe(0).state(), OperatorState::Running);
        t.on_failed(0);
        t.on_worker_done(0);
        t.on_worker_done(0);
        assert_eq!(t.probe(0).state(), OperatorState::Failed);
        // The other operator completes normally.
        t.on_worker_done(1);
        assert_eq!(t.probe(1).state(), OperatorState::Completed);
    }

    #[test]
    fn degraded_is_sticky_over_completed_but_yields_to_failed() {
        let t = tracer();
        t.on_degraded(0);
        t.on_worker_done(0);
        t.on_worker_done(0);
        assert_eq!(t.probe(0).state(), OperatorState::Degraded);
        // A direct failure of the same operator outranks degradation.
        t.on_failed(0);
        t.on_degraded(0);
        assert_eq!(t.probe(0).state(), OperatorState::Failed);
    }

    #[test]
    fn retrying_outranks_running_but_yields_to_terminal_states() {
        let t = tracer();
        t.on_input(0, 1);
        t.on_retrying(0);
        assert_eq!(t.probe(0).state(), OperatorState::Retrying);
        // A later Running promotion cannot demote the Retrying badge.
        t.on_input(0, 1);
        assert_eq!(t.probe(0).state(), OperatorState::Retrying);
        // A successful replay completes the operator.
        t.on_worker_done(0);
        t.on_worker_done(0);
        assert_eq!(t.probe(0).state(), OperatorState::Completed);
        // Terminal failure on the other operator outranks Retrying.
        t.on_retrying(1);
        t.on_failed(1);
        assert_eq!(t.probe(1).state(), OperatorState::Failed);
    }

    #[test]
    fn attempt_counters_track_retries() {
        let t = tracer(); // scan has 2 workers, sink has 1
        assert_eq!(t.probe(0).attempts(), 2);
        assert_eq!(t.probe(0).retries(), 0);
        t.on_retrying(0);
        t.on_retrying(0);
        t.on_retrying(1);
        assert_eq!(t.probe(0).attempts(), 4);
        assert_eq!(t.probe(0).retries(), 2);
        assert_eq!(t.probe(1).attempts(), 2);
        assert_eq!(t.total_retries(), 3);
    }

    #[test]
    fn batch_skip_counts_accumulate_and_total() {
        let t = tracer();
        t.on_batches_skipped(0, 2);
        t.on_batches_skipped(0, 1);
        t.on_batches_skipped(1, 4);
        assert_eq!(t.probe(0).batches_skipped(), 3);
        assert_eq!(t.probe(1).batches_skipped(), 4);
        assert_eq!(t.total_batches_skipped(), 7);
        let (_, snaps) = t.snapshot();
        assert_eq!(snaps[0].batches_skipped, 3);
    }

    #[test]
    fn spill_counts_accumulate_and_total() {
        let t = tracer();
        t.on_spill(0, 2, 128, 1);
        t.on_spill(0, 1, 64, 2);
        t.on_spill(1, 0, 0, 0); // no-op fast path
        assert_eq!(t.probe(0).spilled_blocks(), 3);
        assert_eq!(t.probe(0).spilled_bytes(), 192);
        assert_eq!(t.probe(0).spill_reads(), 3);
        assert_eq!(t.total_spilled_blocks(), 3);
        assert_eq!(t.total_spilled_bytes(), 192);
        assert_eq!(t.total_spill_reads(), 3);
        let (_, snaps) = t.snapshot();
        assert_eq!(snaps[0].spilled_blocks, 3);
        assert_eq!(snaps[1].spilled_blocks, 0);
    }

    #[test]
    fn mailbox_depth_tracks_peak() {
        let t = tracer();
        t.on_mailbox_push(1);
        t.on_mailbox_push(1);
        t.on_mailbox_pop(1);
        t.on_mailbox_push(1);
        assert_eq!(t.probe(1).mailbox_depth(), 2);
        assert_eq!(t.probe(1).peak_mailbox_depth(), 2);
        assert_eq!(t.peak_mailbox_depth(), 2);
    }

    #[test]
    fn finish_appends_terminal_sample() {
        let t = tracer();
        t.on_output(0, 4);
        let mid = t.snapshot();
        t.on_worker_done(0);
        t.on_worker_done(0);
        t.on_worker_done(1);
        let trace = t.finish(vec![mid]);
        assert_eq!(trace.len(), 2);
        let (_, last) = trace.samples.last().unwrap();
        assert!(last.iter().all(|s| s.state == OperatorState::Completed));
        assert_eq!(last[0].output_tuples, 4);
    }

    #[test]
    fn snapshot_times_are_monotone() {
        let t = tracer();
        let (a, _) = t.snapshot();
        let (b, _) = t.snapshot();
        assert!(b >= a);
    }
}
