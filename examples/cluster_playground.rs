//! Cluster-simulator playground: the substrate the paradigm engines run
//! on — virtual time, CPU pools, the object store, language profiles —
//! plus the engine's observability features (progress trace, pause /
//! resume, Gantt chart).
//!
//! ```text
//! cargo run --release --example cluster_playground
//! ```

use std::sync::Arc;

use scriptflow::datakit::{Batch, DataType, Schema, Value};
use scriptflow::simcluster::{
    ClusterSpec, CpuPool, Language, LanguageTable, ObjectStoreModel, SimDuration, SimTime,
};
use scriptflow::workflow::ops::{FilterOp, ScanOp, SinkOp};
use scriptflow::workflow::{
    gui, trace, CostProfile, EngineConfig, PartitionStrategy, SimExecutor, WorkflowBuilder,
};

fn main() {
    // --- CPU pool: Ray's num_cpus accounting in miniature -------------
    println!("== CPU pool ==");
    let mut pool = CpuPool::new(4);
    for i in 0..6 {
        let r = pool.reserve(SimTime::ZERO, 1, SimDuration::from_secs(10));
        println!("  task {i}: starts {} finishes {}", r.start, r.finish);
    }

    // --- Object store: the GOTTA mechanism -----------------------------
    println!("\n== object store (1.59 GB model) ==");
    let mut store = ObjectStoreModel::default();
    let (model, put_cost) = store.put(1_590_000_000);
    println!("  put: {put_cost}");
    for task in 0..3 {
        let get = store.get(model).expect("model resident");
        println!("  task {task} get: {get}  (every task pays again)");
    }

    // --- Language profiles: the Table I mechanism ----------------------
    println!("\n== language profiles ==");
    let langs = LanguageTable::default();
    let base = SimDuration::from_millis(100);
    for lang in Language::ALL {
        println!(
            "  {lang:<7} compute {}  serde {}",
            langs.compute(lang, base),
            langs.serde(lang, base)
        );
    }

    // --- Engine observability: trace + pause + Gantt -------------------
    println!("\n== traced, paused workflow run ==");
    let schema = Schema::of(&[("id", DataType::Int)]);
    let batch =
        Batch::from_rows(schema, (0..3_000i64).map(|i| vec![Value::Int(i)]).collect()).unwrap();
    let mut b = WorkflowBuilder::new();
    let scan = b.add(Arc::new(ScanOp::new("scan", batch)), 1);
    let work = b.add(
        Arc::new(
            FilterOp::new("work", |_| Ok(true))
                .with_cost(CostProfile::per_tuple_micros(400)),
        ),
        2,
    );
    let sink = b.add(Arc::new(SinkOp::new("sink")), 1);
    b.connect(scan, work, 0, PartitionStrategy::RoundRobin);
    b.connect(work, sink, 0, PartitionStrategy::Single);
    let wf = b.build().unwrap();

    let res = SimExecutor::new(EngineConfig {
        cluster: ClusterSpec::paper_cluster(),
        ..EngineConfig::default()
    })
    .with_trace(SimDuration::from_millis(100))
    .with_pause(SimTime::from_micros(300_000), SimDuration::from_millis(300))
    .with_worker_timeline()
    .run(&wf)
    .expect("run");

    println!("timeline (I=init R=running P=paused C=completed):");
    print!("{}", trace::render_timeline(&res.trace));
    println!("\nGantt (worker busy intervals):");
    print!(
        "{}",
        gui::render_gantt(&wf, &res.worker_timeline, res.makespan, 60)
    );
    println!(
        "\nutilization: {}",
        res.metrics
            .operators
            .iter()
            .map(|m| format!("{} {:.0}%", m.name, m.utilization(res.makespan) * 100.0))
            .collect::<Vec<_>>()
            .join(", ")
    );
}
