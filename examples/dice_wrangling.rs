//! DICE data wrangling end to end: the same MACCROBAT-style corpus
//! preprocessed under both paradigms, with identical outputs and the
//! paper's timing asymmetry (Fig. 13a / 14a).
//!
//! ```text
//! cargo run --release --example dice_wrangling
//! ```

use scriptflow::core::Calibration;
use scriptflow::tasks::dice::{oracle, script, workflow, DiceParams};

fn main() {
    let cal = Calibration::paper();
    let params = DiceParams::new(50, 2);
    let dataset = params.dataset();
    println!(
        "corpus: {} reports, {} annotations, {} sentences/report",
        dataset.reports.len(),
        dataset.annotation_count(),
        params.sentences_per_report
    );
    println!(
        "sample report:\n  {}\nsample .ann lines:\n{}",
        &dataset.reports[0].text[..dataset.reports[0].sentences[0].1],
        dataset.reports[0]
            .to_ann_file()
            .lines()
            .take(4)
            .map(|l| format!("  {l}"))
            .collect::<Vec<_>>()
            .join("\n")
    );

    let sc = script::run_script(&params, &cal).expect("script run");
    let wf = workflow::run_workflow(&params, &cal).expect("workflow run");
    let expected = oracle(&dataset);

    assert_eq!(sc.output, expected, "script output matches the oracle");
    assert_eq!(wf.output, expected, "workflow output matches the oracle");

    println!("\nMACCROBAT-EE rows: {} (both paradigms identical)", expected.len());
    for row in expected.iter().take(5) {
        println!("  {row}");
    }
    println!(
        "\nvirtual execution time @ {} workers:\n  script (notebook + Ray): {:8.2}s\n  workflow (pipelined):    {:8.2}s  ({:.0}% of script)",
        params.workers,
        sc.seconds(),
        wf.seconds(),
        100.0 * wf.seconds() / sc.seconds()
    );
    println!(
        "lines of code: script {}, workflow {} (paper: 377 vs 215)",
        sc.report.metrics.lines_of_code, wf.report.metrics.lines_of_code
    );
}
