//! GOTTA one-step inference end to end: cloze questions answered by the
//! real extractive model under both paradigms, and the object-store
//! mechanism behind the paper's Fig. 13d gap made visible.
//!
//! ```text
//! cargo run --release --example gotta_inference
//! ```

use scriptflow::core::Calibration;
use scriptflow::tasks::gotta::{exact_match_of, script, workflow, GottaParams};

fn main() {
    let cal = Calibration::paper();
    let params = GottaParams::new(8, 1);
    let dataset = params.dataset(&cal);
    println!(
        "dataset: {} paragraphs × {} cloze questions",
        dataset.examples.len(),
        cal.gotta_questions_per_paragraph
    );
    let ex = &dataset.examples[0];
    println!("sample passage:\n  {}", ex.paragraph);
    println!("sample cloze:   {}", ex.questions[0].masked);

    let sc = script::run_script(&params, &cal).expect("script run");
    let wf = workflow::run_workflow(&params, &cal).expect("workflow run");
    assert_eq!(sc.output, wf.output, "identical predictions");

    println!("\nexact match: {:.3}", exact_match_of(&sc.output));
    for row in sc.output.iter().take(4) {
        println!("  {row}");
    }
    println!(
        "\nvirtual inference time (paper @4 paragraphs: 463.96s vs 149.45s):\n  script (Ray, model in object store, 1 CPU): {:8.2}s\n  workflow (model shipped once, kernel free): {:8.2}s ({:.1}x faster)",
        sc.seconds(),
        wf.seconds(),
        sc.seconds() / wf.seconds()
    );

    // The mechanism: shrink the model and the script-side tax vanishes.
    let mut weightless = Calibration::paper();
    weightless.gotta_model_bytes = 0;
    let light = script::run_script(&params, &weightless).expect("script run");
    println!(
        "\nobject-store ablation (script): 1.59 GB model {:.2}s -> weightless model {:.2}s",
        sc.seconds(),
        light.seconds()
    );
}
