//! KGE multi-step inference end to end: a product recommender over
//! knowledge-graph embeddings, with the fusion-level sweep (Fig. 12b)
//! and the Python→Scala join swap (Table I).
//!
//! ```text
//! cargo run --release --example kge_recommender
//! ```

use scriptflow::core::Calibration;
use scriptflow::simcluster::Language;
use scriptflow::tasks::kge::{script, workflow, KgeParams};

fn main() {
    let cal = Calibration::paper();
    let params = KgeParams::new(6_800, 2);

    let sc = script::run_script(&params, &cal).expect("script run");
    let wf = workflow::run_workflow(&params, &cal).expect("workflow run");
    assert_eq!(sc.output, wf.output, "identical recommendations");

    println!("top-{} predicted purchases:", sc.output.len());
    let mut rows = sc.output.clone();
    rows.sort_by_key(|r| {
        r.split("rank=")
            .nth(1)
            .unwrap()
            .split('|')
            .next()
            .unwrap()
            .parse::<usize>()
            .unwrap()
    });
    for row in &rows {
        println!("  {row}");
    }
    println!(
        "\nvirtual time @6.8k products (paper: 90.69s vs 135.85s):\n  script:   {:8.2}s\n  workflow: {:8.2}s ({:.0}% slower — the serde tax)",
        sc.seconds(),
        wf.seconds(),
        100.0 * (wf.seconds() / sc.seconds() - 1.0)
    );

    println!("\n== modularity sweep (Fig. 12b) ==");
    for fusion in 1..=6 {
        let run = workflow::run_workflow(
            &KgeParams::new(6_800, 1).with_fusion(fusion),
            &cal,
        )
        .expect("workflow run");
        println!(
            "  {fusion} logical operator(s): {:8.2}s  ({} DAG nodes)",
            run.seconds(),
            run.report.metrics.operator_count
        );
    }

    println!("\n== language swap (Table I) ==");
    for (label, params) in [
        (
            "Python join (pandas)",
            KgeParams::new(6_800, 1).with_fusion(3).with_pandas_join(),
        ),
        (
            "Scala join pipeline ",
            KgeParams::new(6_800, 1)
                .with_fusion(3)
                .with_join_language(Language::Scala),
        ),
    ] {
        let run = workflow::run_workflow(&params, &cal).expect("workflow run");
        println!("  {label}: {:8.2}s", run.seconds());
    }
}
