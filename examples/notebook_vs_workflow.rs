//! The qualitative comparison of §III, executable: implicit notebook
//! state and out-of-order execution (with lineage auditing) vs explicit
//! workflow edges; cell-level vs operator-level error traces.
//!
//! ```text
//! cargo run --release --example notebook_vs_workflow
//! ```

use std::sync::Arc;

use scriptflow::datakit::{Batch, DataType, Schema, Value};
use scriptflow::notebook::{Cell, Kernel, LineageGraph, Notebook};
use scriptflow::raysim::RayConfig;
use scriptflow::simcluster::ClusterSpec;
use scriptflow::workflow::ops::{FilterOp, ScanOp, SinkOp};
use scriptflow::workflow::{EngineConfig, PartitionStrategy, SimExecutor, WorkflowBuilder};

fn main() {
    // ---------- Script paradigm: Fig. 8's notebook --------------------
    let mut nb = Notebook::new("fig8");
    nb.push(
        Cell::new("Load", "data = fetch_20newsgroups()", |k| {
            k.set("data", vec![1i64, 2, 3]);
            Ok(())
        })
        .writes(&["data"]),
    );
    nb.push(
        Cell::new(
            "Sentiment_Analysis",
            "predicted = text_clf.fit(data).predict(data)",
            |k| {
                let data = k.get::<Vec<i64>>("data")?;
                k.set("predicted", data.iter().map(|x| x % 2).collect::<Vec<i64>>());
                Ok(())
            },
        )
        .reads(&["data"])
        .writes(&["predicted"]),
    );
    nb.push(
        Cell::new("Write", "write(data)", |k| {
            let _ = k.get::<Vec<i64>>("data")?;
            Ok(())
        })
        .reads(&["data"]),
    );

    let graph = LineageGraph::from_notebook(&nb);
    println!("== notebook lineage (reconstructed from reads/writes) ==");
    for i in 0..nb.len() {
        println!("  cell {} ({}) depends on {:?}", i, nb.cells()[i].name(), graph.deps(i));
    }

    // The paper's point: users may execute Write before Sentiment_Analysis.
    let mut kernel = Kernel::new(&ClusterSpec::single_node(2), RayConfig::default());
    nb.run_in_order(&[0, 2, 1], &mut kernel).expect("reordered run works");
    println!(
        "\nout-of-order run [Load, Write, Sentiment_Analysis] is fine: audit -> {:?}",
        graph.audit(&nb, &[0, 2, 1])
    );
    // But running a dependent cell first is a latent NameError the
    // paradigm only reports at run time, with a cell-level trace:
    let mut fresh = Kernel::new(&ClusterSpec::single_node(2), RayConfig::default());
    let err = nb.run_cell(1, &mut fresh).unwrap_err();
    println!("running cell 1 first -> cell-level trace: {err}");
    println!("lineage audit flags it statically: {:?}", graph.audit(&nb, &[1, 0, 2]));

    // ---------- Workflow paradigm: the same hazard is unrepresentable --
    println!("\n== workflow paradigm ==");
    let schema = Schema::of(&[("id", DataType::Int)]);
    let batch =
        Batch::from_rows(schema, (0..100i64).map(|i| vec![Value::Int(i)]).collect()).unwrap();
    let mut b = WorkflowBuilder::new();
    let load = b.add(Arc::new(ScanOp::new("Load", batch)), 1);
    let analyze = b.add(
        Arc::new(FilterOp::new("Sentiment_Analysis", |t| {
            Ok(t.get_int("id")? % 2 == 0)
        })),
        2,
    );
    let write = b.add(Arc::new(SinkOp::new("Write")), 1);
    b.connect(load, analyze, 0, PartitionStrategy::RoundRobin);
    b.connect(analyze, write, 0, PartitionStrategy::Single);
    let wf = b.build().expect("explicit edges force a valid order");
    println!(
        "explicit DAG; execution order is the topological order {:?} — no reordering possible",
        wf.topo_order()
    );

    // Operator-level error trace: a failing operator names itself.
    let mut bad = WorkflowBuilder::new();
    let schema2 = Schema::of(&[("id", DataType::Int)]);
    let batch2 =
        Batch::from_rows(schema2, (0..10i64).map(|i| vec![Value::Int(i)]).collect()).unwrap();
    let s = bad.add(Arc::new(ScanOp::new("Load", batch2)), 1);
    let f = bad.add(
        Arc::new(FilterOp::new("Sentiment_Analysis", |t| {
            t.get_int("missing_column")?; // the bug
            Ok(true)
        })),
        1,
    );
    let k = bad.add(Arc::new(SinkOp::new("Write")), 1);
    bad.connect(s, f, 0, PartitionStrategy::RoundRobin);
    bad.connect(f, k, 0, PartitionStrategy::Single);
    let wf_bad = bad.build().unwrap();
    let err = SimExecutor::new(EngineConfig::default()).run(&wf_bad).unwrap_err();
    println!("failing operator -> operator-level trace: {err}");
}
