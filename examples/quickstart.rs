//! Quickstart: build a small GUI-style workflow, run it on both the
//! simulated cluster and real OS threads, and render its "GUI" state.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use scriptflow::datakit::{Batch, DataType, Schema, Value};
use scriptflow::simcluster::ClusterSpec;
use scriptflow::workflow::gui;
use scriptflow::workflow::ops::{AggFn, AggregateOp, FilterOp, ScanOp, SinkOp};
use scriptflow::workflow::{
    EngineConfig, LiveExecutor, PartitionStrategy, SimExecutor, WorkflowBuilder,
};

fn main() {
    // 1. Some data: 10k sensor readings.
    let schema = Schema::of(&[("sensor", DataType::Str), ("value", DataType::Float)]);
    let rows = (0..10_000i64)
        .map(|i| {
            vec![
                Value::Str(format!("s{}", i % 7)),
                Value::Float((i % 100) as f64 / 10.0),
            ]
        })
        .collect();
    let batch = Batch::from_rows(schema, rows).expect("rows conform");

    // 2. A workflow: scan → filter hot readings → per-sensor stats → view.
    let mut b = WorkflowBuilder::new();
    let scan = b.add(Arc::new(ScanOp::new("Readings Scan", batch)), 2);
    let filter = b.add(
        Arc::new(FilterOp::new("Hot Readings", |t| {
            Ok(t.get_float("value")? > 5.0)
        })),
        4,
    );
    let agg = b.add(
        Arc::new(AggregateOp::new(
            "Per-Sensor Stats",
            &["sensor"],
            vec![
                AggFn::Count("n".into()),
                AggFn::Avg("value".into()),
                AggFn::Max("value".into()),
            ],
        )),
        2,
    );
    let sink_op = SinkOp::new("View Results");
    let handle = sink_op.handle();
    let sink = b.add(Arc::new(sink_op), 1);
    b.connect(scan, filter, 0, PartitionStrategy::RoundRobin);
    b.connect(filter, agg, 0, PartitionStrategy::Hash(vec!["sensor".into()]));
    b.connect(agg, sink, 0, PartitionStrategy::Single);
    let wf = b.build().expect("valid workflow");

    println!("== workflow structure ==\n{}", gui::render_ascii(&wf));

    // 3. Run on the simulated paper cluster (virtual time).
    let cfg = EngineConfig {
        cluster: ClusterSpec::paper_cluster(),
        ..EngineConfig::default()
    };
    let sim = SimExecutor::new(cfg).run(&wf).expect("sim run");
    println!("== simulated run ==\n{}", gui::render_run_ascii(&wf, &sim.metrics));

    let mut sim_rows: Vec<(String, i64, f64, f64)> = handle
        .results()
        .iter()
        .map(|t| {
            (
                t.get_str("sensor").unwrap().to_owned(),
                t.get_int("n").unwrap(),
                t.get_float("avg_value").unwrap(),
                t.get_float("max_value").unwrap(),
            )
        })
        .collect();
    sim_rows.sort_by(|a, b| a.0.cmp(&b.0));
    handle.clear();

    // 4. Run the SAME workflow on real OS threads.
    let live = LiveExecutor::default().run(&wf).expect("live run");
    let mut live_rows: Vec<(String, i64, f64, f64)> = handle
        .results()
        .iter()
        .map(|t| {
            (
                t.get_str("sensor").unwrap().to_owned(),
                t.get_int("n").unwrap(),
                t.get_float("avg_value").unwrap(),
                t.get_float("max_value").unwrap(),
            )
        })
        .collect();
    live_rows.sort_by(|a, b| a.0.cmp(&b.0));

    println!(
        "== live run ==\nwall-clock: {:?} over {} worker threads",
        live.elapsed, live.metrics.total_workers
    );
    // Counts/max are exact; averages agree up to f64 summation order
    // (thread arrival order differs between executors).
    assert_eq!(sim_rows.len(), live_rows.len());
    for (s, l) in sim_rows.iter().zip(&live_rows) {
        assert_eq!((&s.0, s.1, s.3), (&l.0, l.1, l.3));
        assert!((s.2 - l.2).abs() < 1e-9, "avg mismatch: {s:?} vs {l:?}");
    }
    println!("\nper-sensor stats ({} groups):", live_rows.len());
    for (sensor, n, avg, max) in &live_rows {
        println!("  {sensor}: n={n} avg={avg:.3} max={max}");
    }
    println!(
        "\nGUI state as JSON:\n{}",
        gui::metrics_json(&sim.metrics).to_string_compact()
    );
}
