//! WEF model training end to end: fine-tune the four-framing ensemble on
//! synthetic wildfire tweets and evaluate it — the real model actually
//! learns; the virtual clock shows the paper's Fig. 13b near-tie.
//!
//! ```text
//! cargo run --release --example wildfire_training
//! ```

use scriptflow::core::Calibration;
use scriptflow::datagen::wildfire::FRAMINGS;
use scriptflow::mlkit::logreg::TrainConfig;
use scriptflow::mlkit::{f1_binary, MultiLabelModel};
use scriptflow::tasks::wef::{script, subset_accuracy, workflow, WefParams};

fn main() {
    let cal = Calibration::paper();
    let params = WefParams::new(300);
    let dataset = params.dataset();

    // Train the real ensemble directly and report quality.
    let labels: Vec<&str> = FRAMINGS.to_vec();
    let model = MultiLabelModel::fit(&labels, &dataset.training_pairs(), TrainConfig::default());
    println!("== real ensemble quality (training set) ==");
    for framing in FRAMINGS {
        let gold: Vec<bool> = dataset
            .tweets
            .iter()
            .map(|t| t.framings.iter().any(|f| f == framing))
            .collect();
        let pred: Vec<bool> = dataset
            .tweets
            .iter()
            .map(|t| model.predict(&t.text).iter().any(|f| f == framing))
            .collect();
        println!("  {framing:<16} F1 = {:.3}", f1_binary(&pred, &gold));
    }

    // Now the paradigm comparison.
    let sc = script::run_script(&params, &cal).expect("script run");
    let wf = workflow::run_workflow(&params, &cal).expect("workflow run");
    assert_eq!(sc.output, wf.output, "identical predictions");
    let acc = subset_accuracy(&dataset, &{
        let mut o = sc.output.clone();
        o.sort_by_key(|r| {
            r.split('=').nth(1).unwrap().split('|').next().unwrap().parse::<i64>().unwrap()
        });
        o
    });
    println!("\nsubset accuracy (all 4 labels exact): {acc:.3}");
    println!(
        "\nvirtual training time @ {} tweets (paper: 1922.86s vs 1896.01s):\n  script:   {:8.2}s\n  workflow: {:8.2}s ({:+.1}%)",
        params.tweets,
        sc.seconds(),
        wf.seconds(),
        100.0 * (wf.seconds() / sc.seconds() - 1.0)
    );
}
