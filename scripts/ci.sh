#!/usr/bin/env bash
# Tier-1 CI gate for the scriptflow workspace.
#
#   scripts/ci.sh          # build + test + fmt + clippy + engine bench
#   SKIP_BENCH=1 scripts/ci.sh
#
# Mirrors ROADMAP.md's tier-1 definition (release build + full test suite)
# and adds the hygiene gates. The engine bench runs in quick mode and
# leaves BENCH_engine.json (tuples/sec per executor configuration) in the
# repo root for archiving.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps -D warnings"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> cargo test --doc"
cargo test -q --doc --workspace

echo "==> chaos suite, retries disabled (seeded fingerprints must be unchanged)"
CHAOS_RETRIES=0 cargo test -q --test chaos_faults -- --test-threads=1

echo "==> chaos suite, retries enabled (retryable faults must lose zero rows)"
CHAOS_RETRIES=1 cargo test -q --test chaos_faults -- --test-threads=1

echo "==> service chaos suite, retries disabled (noisy tenant must not corrupt a neighbor)"
CHAOS_RETRIES=0 cargo test -q --test service_chaos -- --test-threads=1

echo "==> service chaos suite, retries enabled (the storm parks on the timer, neighbors drain)"
CHAOS_RETRIES=1 cargo test -q --test service_chaos -- --test-threads=1

echo "==> spill chaos suite, retries disabled (faults mid-spill must drain cleanly)"
CHAOS_RETRIES=0 cargo test -q --test spill_chaos -- --test-threads=1

echo "==> spill chaos suite, retries enabled (replay over spilled partitions is exactly-once)"
CHAOS_RETRIES=1 cargo test -q --test spill_chaos -- --test-threads=1

echo "==> cache chaos suite, retries disabled (faulted runs must never publish)"
CHAOS_RETRIES=0 cargo test -q --test cache_chaos -- --test-threads=1

echo "==> cache chaos suite, retries enabled (recovered runs withhold publication; clean runs publish)"
CHAOS_RETRIES=1 cargo test -q --test cache_chaos -- --test-threads=1

echo "==> fingerprint invalidation (spec edits invalidate; commutative rewires do not)"
cargo test -q --test fingerprint_invalidation

echo "==> backend parity, row batches (paper engine)"
SCRIPTFLOW_BATCH_MODE=row cargo test -q --test backend_parity

echo "==> backend parity, columnar batches (identical rows required)"
SCRIPTFLOW_BATCH_MODE=columnar cargo test -q --test backend_parity

echo "==> backend parity, tiny memory budget (blocking operators spill, rows unchanged)"
SCRIPTFLOW_MEM_BUDGET=1024 cargo test -q --test backend_parity

echo "==> backend parity, result cache armed (fingerprinted memoization, rows unchanged)"
SCRIPTFLOW_RESULT_CACHE=1 cargo test -q --test backend_parity

echo "==> cache eviction suite (byte budget is a hard ceiling; cost-aware victims)"
cargo test -q --test cache_eviction

echo "==> persistent cache: cold publish, process exit, warm from disk in a new process"
CACHE_DIR="$(mktemp -d)"
SCRIPTFLOW_CACHE_DIR="$CACHE_DIR" SCRIPTFLOW_CACHE_EXPECT=cold \
    cargo test -q --test cache_persistence -- --test-threads=1
SCRIPTFLOW_CACHE_DIR="$CACHE_DIR" SCRIPTFLOW_CACHE_EXPECT=warm \
    cargo test -q --test cache_persistence -- --test-threads=1
rm -rf "$CACHE_DIR"

if [[ "${SKIP_BENCH:-0}" != "1" ]]; then
    echo "==> engine throughput bench (quick)"
    BENCH_ENGINE_QUICK=1 cargo run --release -p scriptflow-bench --bin bench_engine
    echo "==> columnar smoke: BENCH_engine.json must carry columnar rows with batch skips"
    if command -v python3 >/dev/null 2>&1; then
        python3 - <<'PY'
import json

with open("BENCH_engine.json") as f:
    doc = json.load(f)
rows = doc["configs"]
columnar = [r for r in rows if r.get("batchLayout") == "columnar"]
assert columnar, "no columnar measurement rows in BENCH_engine.json"
skipped = sum(r.get("batchesSkipped", 0) for r in columnar)
assert skipped > 0, "columnar rows report zero skipped batches"
print(f"columnar rows: {len(columnar)}, batches skipped: {skipped}")

budgeted = [r for r in rows if r.get("memoryBudget")]
assert budgeted, "no budgeted spill_join rows in BENCH_engine.json"
spilled = sum(r.get("spilledBlocks", 0) for r in budgeted)
assert spilled > 0, "budgeted rows report zero spilled blocks"
unbounded = [r for r in rows if r["workload"] == "spill_join" and not r.get("memoryBudget")]
assert all(r.get("spilledBlocks", 0) == 0 for r in unbounded), \
    "unbounded spill_join rows must not spill"
print(f"budgeted rows: {len(budgeted)}, blocks spilled: {spilled}")

cold = [r for r in rows if r["workload"] == "edit_rerun" and r.get("leg") == "cold"]
warm = [r for r in rows if r["workload"] == "edit_rerun" and r.get("leg") == "warm"]
assert cold and warm, "no edit_rerun cold/warm legs in BENCH_engine.json"
assert all(r.get("cacheHits", -1) == 0 for r in cold), "cold legs must not hit the cache"
assert all(r.get("cachePublished", 0) > 0 for r in cold), "cold legs must publish segments"
assert all(r.get("cacheHits", 0) > 0 for r in warm), "warm legs must serve from the cache"
assert all(r.get("cachePublished", -1) == 0 for r in warm), "warm legs must republish nothing"
print(f"edit_rerun legs: cold={len(cold)}, warm={len(warm)}, "
      f"warm hits={sum(r['cacheHits'] for r in warm)}")

budg = [r for r in rows if r["workload"] == "edit_rerun" and r.get("leg") == "budgeted"]
assert budg, "no budgeted edit_rerun legs in BENCH_engine.json"
for r in budg:
    assert r.get("cacheEvictions", 0) > 0, f"budgeted leg reports zero evictions: {r}"
    assert r["cacheLiveBytes"] <= r["cacheBudget"], f"budget exceeded: {r}"
    assert r["cacheLiveBytes"] == r["cachePublished"] - r["cacheEvictedBytes"], \
        f"byte ledger does not sum (live != published - evicted): {r}"
print(f"budgeted legs: {len(budg)}, evictions={sum(r['cacheEvictions'] for r in budg)}")
PY
    else
        grep -q '"batchLayout": *"columnar"' BENCH_engine.json || {
            echo "BENCH_engine.json missing columnar rows" >&2
            exit 1
        }
    fi
    echo "==> multi-tenant service bench (quick closed loop)"
    BENCH_SERVICE_QUICK=1 cargo run --release -p scriptflow-bench --bin bench_service
    echo "==> service smoke: BENCH_engine.json must carry the latency-vs-tenant-count curve"
    if command -v python3 >/dev/null 2>&1; then
        python3 - <<'PY'
import json

with open("BENCH_engine.json") as f:
    doc = json.load(f)
assert "configs" in doc, "bench_service merge dropped the engine configs"
svc = doc["service"]
points = svc["points"]
assert len(points) >= 3, f"expected a tenant sweep, got {len(points)} points"
for p in points:
    assert p["p50_ms"] > 0 and p["p99_ms"] >= p["p50_ms"], f"bad percentiles: {p}"
    assert p["tuples_per_sec"] > 0, f"bad throughput: {p}"
    assert p["rows_match_anchor"], f"rows diverged from the solo anchor: {p}"
    assert p["rows_per_run"] == svc["anchor_rows"], f"row count mismatch: {p}"
tenants = [p["tenants"] for p in points]
print(f"service sweep tenants={tenants}, anchor rows per run: {svc['anchor_rows']}")
PY
    else
        grep -q '"service"' BENCH_engine.json || {
            echo "BENCH_engine.json missing service results" >&2
            exit 1
        }
    fi
fi

echo "==> multi-tenant isolation experiment (noisy vs quiet tenant, shared pool)"
cargo run --release -p scriptflow-bench --bin repro -- service

echo "==> bounded-memory experiment (KGE past RAM: unbounded vs tiny budget)"
cargo run --release -p scriptflow-bench --bin repro -- fig13-spill

echo "==> incremental re-execution experiment (KGE cold vs warm vs edited rerun)"
cargo run --release -p scriptflow-bench --bin repro -- edit-rerun

echo "==> cross-session edit loop (persistent cache restarts vs notebook stale-cone reruns)"
cargo run --release -p scriptflow-bench --bin repro -- edit-loop

echo "==> repro on both backends (fig12a + probe-scale task comparison)"
cargo run --release -p scriptflow-bench --bin repro -- fig12a --backend both
for task in dice wef gotta kge; do
    trace="artifacts/trace_live_${task}.json"
    if [[ ! -s "$trace" ]]; then
        echo "missing or empty live trace: $trace" >&2
        exit 1
    fi
    if command -v python3 >/dev/null 2>&1; then
        python3 -m json.tool "$trace" >/dev/null || {
            echo "live trace is not valid JSON: $trace" >&2
            exit 1
        }
    else
        grep -q '"samples"' "$trace" || {
            echo "live trace missing samples array: $trace" >&2
            exit 1
        }
    fi
done

echo "==> CI gate passed"
