//! # scriptflow
//!
//! Umbrella crate for the `scriptflow` workspace: a Rust reproduction of
//! *“Data Science Tasks Implemented with Scripts versus GUI-Based
//! Workflows: The Good, the Bad, and the Ugly”* (ICDE 2024).
//!
//! Re-exports every subsystem crate under a stable module name. See the
//! repository README for a quickstart and DESIGN.md for the system
//! inventory.

pub use scriptflow_core as core;
pub use scriptflow_datagen as datagen;
pub use scriptflow_datakit as datakit;
pub use scriptflow_mlkit as mlkit;
pub use scriptflow_notebook as notebook;
pub use scriptflow_raysim as raysim;
pub use scriptflow_simcluster as simcluster;
pub use scriptflow_study as study;
pub use scriptflow_tasks as tasks;
pub use scriptflow_workflow as workflow;
