//! Sim/live backend parity: the [`scriptflow::workflow::ExecBackend`]
//! surface must make the two engines interchangeable for every paper
//! task. For each of DICE, WEF, GOTTA and KGE, the same
//! `run_workflow_on` call on the simulator and on the pooled live
//! executor must produce identical output rows (the engines differ in
//! clocks, never in data), the same operator set in the terminal trace
//! sample, and — on a fault-free run — a live trace in which every
//! operator ends `Completed`.
//!
//! The suite honours `SCRIPTFLOW_BATCH_MODE`: unset or `row` runs the
//! paper calibration (row batches), `columnar` re-runs every parity
//! check with the columnar batch path enabled. `ci.sh` runs it in both
//! modes; results must be identical because the columnar path only
//! changes the batch layout, never the rows.
//!
//! It also honours `SCRIPTFLOW_MEM_BUDGET` (bytes): when set, every
//! blocking operator runs under that per-operator memory budget, so the
//! join-bearing tasks spill their build sides to the compressed block
//! store mid-parity-check. Rows must still be identical — spilling is a
//! memory-management decision, never a data decision.
//!
//! And `SCRIPTFLOW_RESULT_CACHE=1` re-runs every parity check with the
//! result cache armed (a fresh cache per run: all misses, full
//! recording). Fingerprinted memoization must never change a row —
//! caching is a scheduling decision, never a data decision.

use std::collections::BTreeSet;
use std::sync::Arc;

use scriptflow::core::{BackendKind, Calibration};
use scriptflow::simcluster::Language;
use scriptflow::tasks::dice::{self, DiceParams};
use scriptflow::tasks::gotta::{self, GottaParams};
use scriptflow::tasks::kge::{self, KgeParams};
use scriptflow::tasks::wef::{self, WefParams};
use scriptflow::tasks::BackendRun;
use scriptflow::workflow::{OperatorState, ResultCache};

/// The calibration under test: `SCRIPTFLOW_BATCH_MODE=columnar` flips
/// the engine to columnar edge batches, anything else (including unset)
/// keeps the paper's row engine. `SCRIPTFLOW_MEM_BUDGET=<bytes>` caps
/// every blocking operator's in-memory state on top of either mode, and
/// `SCRIPTFLOW_RESULT_CACHE=1` arms the fingerprinted result cache.
fn calibration() -> Calibration {
    let mut cal = match std::env::var("SCRIPTFLOW_BATCH_MODE").as_deref() {
        Ok("columnar") => Calibration::paper_columnar(),
        _ => Calibration::paper(),
    };
    if let Ok(raw) = std::env::var("SCRIPTFLOW_MEM_BUDGET") {
        cal.wf_memory_budget = Some(
            raw.parse()
                .expect("SCRIPTFLOW_MEM_BUDGET must be a byte count"),
        );
    }
    if std::env::var("SCRIPTFLOW_RESULT_CACHE").is_ok_and(|v| v == "1") {
        cal.wf_result_cache = true;
    }
    cal
}

fn operator_set(run: &BackendRun) -> BTreeSet<String> {
    let (_, last) = run
        .trace
        .samples
        .last()
        .expect("every run ends with a terminal trace sample");
    last.iter().map(|o| o.name.clone()).collect()
}

fn assert_parity(task: &str, run_on: impl Fn(BackendKind) -> BackendRun) {
    let sim = run_on(BackendKind::Sim);
    let live = run_on(BackendKind::Live);
    assert_eq!(sim.kind, BackendKind::Sim, "{task}");
    assert_eq!(live.kind, BackendKind::Live, "{task}");
    assert!(sim.wall_clock.is_none(), "{task}: sim time is virtual");
    assert!(
        live.wall_clock.is_some(),
        "{task}: live run measures wall-clock"
    );

    // Identical rows, order-independent (live thread interleaving may
    // reorder a sink's arrivals).
    let mut sim_rows = sim.run.output.clone();
    let mut live_rows = live.run.output.clone();
    sim_rows.sort_unstable();
    live_rows.sort_unstable();
    assert_eq!(
        sim_rows.len(),
        live_rows.len(),
        "{task}: backends disagree on row count"
    );
    assert_eq!(sim_rows, live_rows, "{task}: backends disagree on rows");

    // Both engines report the same DAG.
    assert_eq!(
        operator_set(&sim),
        operator_set(&live),
        "{task}: backends disagree on the operator set"
    );

    // A fault-free live run leaves no operator behind.
    let (_, last) = live.trace.samples.last().expect("terminal sample");
    for op in last {
        assert_eq!(
            op.state,
            OperatorState::Completed,
            "{task}: operator `{}` did not complete on the live backend",
            op.name
        );
    }
}

#[test]
fn dice_backends_agree() {
    let cal = calibration();
    assert_parity("dice", |kind| {
        dice::workflow::run_workflow_on(&DiceParams::new(10, 2), &cal, kind).expect("DICE runs")
    });
}

#[test]
fn wef_backends_agree() {
    let cal = calibration();
    assert_parity("wef", |kind| {
        wef::workflow::run_workflow_on(&WefParams::new(80), &cal, kind).expect("WEF runs")
    });
}

#[test]
fn gotta_backends_agree() {
    let cal = calibration();
    assert_parity("gotta", |kind| {
        gotta::workflow::run_workflow_on(&GottaParams::new(2, 1), &cal, kind).expect("GOTTA runs")
    });
}

#[test]
fn kge_backends_agree() {
    let cal = calibration();
    assert_parity("kge", |kind| {
        kge::workflow::run_workflow_on(&KgeParams::new(600, 1), &cal, kind).expect("KGE runs")
    });
}

/// Direct unbounded-vs-tiny-budget parity, independent of the env
/// knobs: for every paper task on both backends, a memory budget far
/// below the blocking operators' working set must change no output row
/// — and on the join-bearing tasks (DICE, KGE) it must actually force
/// spills, while the unbounded run never touches the block store.
#[test]
fn tiny_budget_changes_no_rows_on_any_task() {
    let unbounded = Calibration::paper();
    let mut tiny = Calibration::paper();
    tiny.wf_memory_budget = Some(1 << 10);
    let tasks: [(&str, bool, Box<dyn Fn(&Calibration, BackendKind) -> BackendRun>); 4] = [
        (
            "dice",
            true,
            Box::new(|cal, k| {
                dice::workflow::run_workflow_on(&DiceParams::new(6, 2), cal, k).expect("DICE runs")
            }),
        ),
        (
            "wef",
            false,
            Box::new(|cal, k| {
                wef::workflow::run_workflow_on(&WefParams::new(40), cal, k).expect("WEF runs")
            }),
        ),
        (
            "gotta",
            false,
            Box::new(|cal, k| {
                gotta::workflow::run_workflow_on(&GottaParams::new(1, 1), cal, k)
                    .expect("GOTTA runs")
            }),
        ),
        (
            // The Scala join pipeline routes the embedding join through
            // the standalone HashJoinOp — the operator that grace-
            // partitions under a budget (the default fused UDF join
            // holds its own state and never spills).
            "kge",
            true,
            Box::new(|cal, k| {
                let p = KgeParams::new(300, 1)
                    .with_fusion(3)
                    .with_join_language(Language::Scala);
                kge::workflow::run_workflow_on(&p, cal, k).expect("KGE runs")
            }),
        ),
    ];
    for (task, has_join, run_on) in &tasks {
        for kind in [BackendKind::Sim, BackendKind::Live] {
            let full = run_on(&unbounded, kind);
            let capped = run_on(&tiny, kind);
            // TaskRun::output is already sorted.
            assert_eq!(
                full.run.output, capped.run.output,
                "{task}/{kind}: a memory budget must not change task results"
            );
            assert_eq!(
                full.spilled_blocks, 0,
                "{task}/{kind}: the unbounded engine never spills"
            );
            if *has_join {
                assert!(
                    capped.spilled_blocks > 0,
                    "{task}/{kind}: the tiny budget must force the join build side to spill"
                );
                assert!(
                    capped.spilled_bytes > 0,
                    "{task}/{kind}: spilled blocks carry compressed bytes"
                );
            }
        }
    }
}

/// Direct row-vs-columnar parity, independent of `SCRIPTFLOW_BATCH_MODE`:
/// for every paper task, the columnar calibration must produce exactly
/// the rows the row calibration does on both backends.
#[test]
fn columnar_mode_changes_no_rows_on_any_task() {
    let row = Calibration::paper();
    let col = Calibration::paper_columnar();
    let tasks: [(&str, Box<dyn Fn(&Calibration, BackendKind) -> BackendRun>); 4] = [
        (
            "dice",
            Box::new(|cal, k| {
                dice::workflow::run_workflow_on(&DiceParams::new(6, 2), cal, k).expect("DICE runs")
            }),
        ),
        (
            "wef",
            Box::new(|cal, k| {
                wef::workflow::run_workflow_on(&WefParams::new(40), cal, k).expect("WEF runs")
            }),
        ),
        (
            "gotta",
            Box::new(|cal, k| {
                gotta::workflow::run_workflow_on(&GottaParams::new(1, 1), cal, k)
                    .expect("GOTTA runs")
            }),
        ),
        (
            "kge",
            Box::new(|cal, k| {
                kge::workflow::run_workflow_on(&KgeParams::new(300, 1), cal, k).expect("KGE runs")
            }),
        ),
    ];
    for (task, run_on) in &tasks {
        for kind in [BackendKind::Sim, BackendKind::Live] {
            let r = run_on(&row, kind);
            let c = run_on(&col, kind);
            // TaskRun::output is already sorted.
            assert_eq!(
                r.run.output, c.run.output,
                "{task}/{kind}: columnar mode must not change task results"
            );
            assert_eq!(
                r.batches_skipped, 0,
                "{task}/{kind}: the row engine never consults zone maps"
            );
        }
        // The virtual clock must show the calibrated columnar win.
        let r = run_on(&row, BackendKind::Sim);
        let c = run_on(&col, BackendKind::Sim);
        assert!(
            c.seconds() < r.seconds(),
            "{task}: columnar sim run ({}) should beat row ({})",
            c.seconds(),
            r.seconds()
        );
    }
}

/// Direct cold-vs-warm cache parity, independent of
/// `SCRIPTFLOW_RESULT_CACHE`: for every paper task on both backends, a
/// cold run against a shared [`ResultCache`] must publish (all misses),
/// the warm rerun must serve its frontier from sealed segments (hits,
/// nothing republished) — and neither may change a single row relative
/// to the cache-free run.
#[test]
fn warm_cache_rerun_changes_no_rows_on_any_task() {
    let cal = Calibration::paper();
    let tasks: [(&str, Box<dyn Fn(BackendKind, Option<&Arc<ResultCache>>) -> BackendRun>); 4] = [
        (
            "dice",
            Box::new(|k, cache| {
                let p = DiceParams::new(6, 2);
                match cache {
                    Some(c) => dice::workflow::run_workflow_cached(&p, &cal, k, c),
                    None => dice::workflow::run_workflow_on(&p, &cal, k),
                }
                .expect("DICE runs")
            }),
        ),
        (
            "wef",
            Box::new(|k, cache| {
                let p = WefParams::new(40);
                match cache {
                    Some(c) => wef::workflow::run_workflow_cached(&p, &cal, k, c),
                    None => wef::workflow::run_workflow_on(&p, &cal, k),
                }
                .expect("WEF runs")
            }),
        ),
        (
            "gotta",
            Box::new(|k, cache| {
                let p = GottaParams::new(1, 1);
                match cache {
                    Some(c) => gotta::workflow::run_workflow_cached(&p, &cal, k, c),
                    None => gotta::workflow::run_workflow_on(&p, &cal, k),
                }
                .expect("GOTTA runs")
            }),
        ),
        (
            "kge",
            Box::new(|k, cache| {
                let p = KgeParams::new(300, 1);
                match cache {
                    Some(c) => kge::workflow::run_workflow_cached(&p, &cal, k, c),
                    None => kge::workflow::run_workflow_on(&p, &cal, k),
                }
                .expect("KGE runs")
            }),
        ),
    ];
    for (task, run_on) in &tasks {
        for kind in [BackendKind::Sim, BackendKind::Live] {
            let baseline = run_on(kind, None);
            let cache = Arc::new(ResultCache::new());
            let cold = run_on(kind, Some(&cache));
            let warm = run_on(kind, Some(&cache));
            // TaskRun::output is already sorted.
            assert_eq!(
                baseline.run.output, cold.run.output,
                "{task}/{kind}: a recording cold run must not change task results"
            );
            assert_eq!(
                baseline.run.output, warm.run.output,
                "{task}/{kind}: a served warm rerun must not change task results"
            );
            assert_eq!(cold.cache_hits, 0, "{task}/{kind}: an empty cache cannot hit");
            assert!(
                cold.cache_published > 0,
                "{task}/{kind}: the cold run must publish sealed segments"
            );
            assert!(
                warm.cache_hits > 0,
                "{task}/{kind}: the warm rerun must serve from the cache"
            );
            assert_eq!(
                warm.cache_published, 0,
                "{task}/{kind}: a fully-warm rerun republishes nothing"
            );
        }
    }
}
