//! Sim/live backend parity: the [`scriptflow::workflow::ExecBackend`]
//! surface must make the two engines interchangeable for every paper
//! task. For each of DICE, WEF, GOTTA and KGE, the same
//! `run_workflow_on` call on the simulator and on the pooled live
//! executor must produce identical output rows (the engines differ in
//! clocks, never in data), the same operator set in the terminal trace
//! sample, and — on a fault-free run — a live trace in which every
//! operator ends `Completed`.

use std::collections::BTreeSet;

use scriptflow::core::{BackendKind, Calibration};
use scriptflow::tasks::dice::{self, DiceParams};
use scriptflow::tasks::gotta::{self, GottaParams};
use scriptflow::tasks::kge::{self, KgeParams};
use scriptflow::tasks::wef::{self, WefParams};
use scriptflow::tasks::BackendRun;
use scriptflow::workflow::OperatorState;

fn operator_set(run: &BackendRun) -> BTreeSet<String> {
    let (_, last) = run
        .trace
        .samples
        .last()
        .expect("every run ends with a terminal trace sample");
    last.iter().map(|o| o.name.clone()).collect()
}

fn assert_parity(task: &str, run_on: impl Fn(BackendKind) -> BackendRun) {
    let sim = run_on(BackendKind::Sim);
    let live = run_on(BackendKind::Live);
    assert_eq!(sim.kind, BackendKind::Sim, "{task}");
    assert_eq!(live.kind, BackendKind::Live, "{task}");
    assert!(sim.wall_clock.is_none(), "{task}: sim time is virtual");
    assert!(
        live.wall_clock.is_some(),
        "{task}: live run measures wall-clock"
    );

    // Identical rows, order-independent (live thread interleaving may
    // reorder a sink's arrivals).
    let mut sim_rows = sim.run.output.clone();
    let mut live_rows = live.run.output.clone();
    sim_rows.sort_unstable();
    live_rows.sort_unstable();
    assert_eq!(
        sim_rows.len(),
        live_rows.len(),
        "{task}: backends disagree on row count"
    );
    assert_eq!(sim_rows, live_rows, "{task}: backends disagree on rows");

    // Both engines report the same DAG.
    assert_eq!(
        operator_set(&sim),
        operator_set(&live),
        "{task}: backends disagree on the operator set"
    );

    // A fault-free live run leaves no operator behind.
    let (_, last) = live.trace.samples.last().expect("terminal sample");
    for op in last {
        assert_eq!(
            op.state,
            OperatorState::Completed,
            "{task}: operator `{}` did not complete on the live backend",
            op.name
        );
    }
}

#[test]
fn dice_backends_agree() {
    let cal = Calibration::paper();
    assert_parity("dice", |kind| {
        dice::workflow::run_workflow_on(&DiceParams::new(10, 2), &cal, kind).expect("DICE runs")
    });
}

#[test]
fn wef_backends_agree() {
    let cal = Calibration::paper();
    assert_parity("wef", |kind| {
        wef::workflow::run_workflow_on(&WefParams::new(80), &cal, kind).expect("WEF runs")
    });
}

#[test]
fn gotta_backends_agree() {
    let cal = Calibration::paper();
    assert_parity("gotta", |kind| {
        gotta::workflow::run_workflow_on(&GottaParams::new(2, 1), &cal, kind).expect("GOTTA runs")
    });
}

#[test]
fn kge_backends_agree() {
    let cal = Calibration::paper();
    assert_parity("kge", |kind| {
        kge::workflow::run_workflow_on(&KgeParams::new(600, 1), &cal, kind).expect("KGE runs")
    });
}
