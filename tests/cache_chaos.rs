//! Chaos suite for the result-cache publication path: seeded faults
//! landing while cache-missing operators are recording their output must
//! never let a partial segment reach the shared cache. Publication is
//! all-or-nothing — recordings commit only after a run finishes with
//! zero faults and zero retries — so a faulted run (recovered or not)
//! leaves the cache byte-for-byte untouched, and the first clean run
//! afterwards publishes sealed segments that warm reruns replay with
//! rows identical to the cache-free baseline.
//!
//! CI (`scripts/ci.sh`) runs this suite under both `CHAOS_RETRIES`
//! legs: the seed sweep arms its own budgets, while
//! [`cache_chaos_retries_env_matrix`] checks the leg-specific halves.

use std::sync::Arc;

use scriptflow::datakit::{Batch, CmpOp, DataType, Schema, Value};
use scriptflow::workflow::ops::{FilterOp, ScanOp, SinkHandle, SinkOp};
use scriptflow::workflow::{
    FaultPlan, LiveExecutor, PartitionStrategy, ResultCache, RetryConfig, RetryPolicy, Workflow,
    WorkflowBuilder,
};

const ROWS: i64 = 300;

/// scan → keep (faultable) → trim → sink, with seed-perturbed data and
/// thresholds so the 32-seed sweep exercises different row mixes. Both
/// filters are cacheable (pure, non-sink); the fault always lands on
/// `keep`, mid-recording.
fn pipeline(seed: u64) -> (Workflow, SinkHandle) {
    let shift = (seed % 13) as i64;
    let schema = Schema::of(&[("id", DataType::Int)]);
    let batch = Batch::from_rows(
        schema,
        (0..ROWS).map(|i| vec![Value::Int((i * 7 + shift) % 211)]).collect(),
    )
    .expect("rows conform");
    let mut b = WorkflowBuilder::new();
    let scan = b.add(Arc::new(ScanOp::new("scan", batch)), 1);
    let keep = b.add(
        Arc::new(FilterOp::cmp("keep", "id", CmpOp::Ge, Value::Int(10 + shift))),
        2,
    );
    let trim = b.add(
        Arc::new(FilterOp::cmp("trim", "id", CmpOp::Le, Value::Int(190 - shift))),
        1,
    );
    let sink_op = SinkOp::new("sink");
    let handle = sink_op.handle();
    let sink = b.add(Arc::new(sink_op), 1);
    b.connect(scan, keep, 0, PartitionStrategy::RoundRobin);
    b.connect(keep, trim, 0, PartitionStrategy::RoundRobin);
    b.connect(trim, sink, 0, PartitionStrategy::Single);
    (b.build().expect("cache chaos pipeline is a valid DAG"), handle)
}

fn sorted_rows(h: &SinkHandle) -> Vec<String> {
    let mut rows: Vec<String> = h.results().iter().map(|t| format!("{t:?}")).collect();
    rows.sort();
    rows
}

fn executor(cache: &Arc<ResultCache>) -> LiveExecutor {
    LiveExecutor::new(16)
        .with_pool_size(1)
        .with_result_cache(cache.clone())
}

/// Cache-free baseline row multiset for one seed.
fn baseline_rows(seed: u64) -> Vec<String> {
    let (wf, h) = pipeline(seed);
    LiveExecutor::new(16)
        .with_pool_size(1)
        .run(&wf)
        .expect("cache-free baseline succeeds");
    sorted_rows(&h)
}

/// The tentpole sweep: 32 seeds × {panic, kill} landing on `keep` while
/// it records for publication. Unrecovered faults fail the run, a
/// retry-armed rerun recovers it — and in *both* cases the cache stays
/// empty, because dirty runs never commit their recordings. Only the
/// clean run that follows publishes, and its segments serve a warm
/// rerun with rows identical to the cache-free baseline.
#[test]
fn faults_mid_recording_never_publish_partial_segments_across_32_seeds() {
    for seed in 0..32u64 {
        let clean = baseline_rows(seed);
        let at = 5 + seed % ((ROWS as u64) / 2);
        let plan = |kind: &str| match kind {
            "panic" => FaultPlan::new(seed).panic_at("keep", at),
            _ => FaultPlan::new(seed).kill_worker("keep", at),
        };
        let kind = if seed % 2 == 0 { "panic" } else { "kill" };
        let cache = Arc::new(ResultCache::new());

        // Unrecovered fault: the run fails; nothing may be published.
        let (wf, _h) = pipeline(seed);
        let (_trace, result) = executor(&cache).with_faults(plan(kind)).run_observed(&wf);
        result.expect_err("no retry budget: the fault fails the run");
        assert_eq!(cache.entries(), 0, "seed {seed} {kind}@{at}: failed run published");
        assert_eq!(cache.bytes(), 0, "seed {seed} {kind}@{at}: failed run leaked bytes");

        // Recovered fault: the run succeeds, but it was dirty — the
        // replayed quanta could have double-recorded, so publication is
        // withheld.
        let (wf, h) = pipeline(seed);
        let (_trace, result) = executor(&cache)
            .with_faults(plan(kind))
            .with_retry(RetryConfig::uniform(RetryPolicy::default()))
            .run_observed(&wf);
        let res = result.unwrap_or_else(|e| panic!("seed {seed} {kind}@{at}: {e}"));
        let stats = res.pool.expect("pooled mode reports stats");
        assert!(
            stats.faults_injected > 0,
            "seed {seed} {kind}@{at}: the fault must actually fire"
        );
        assert_eq!(sorted_rows(&h), clean, "seed {seed} {kind}@{at}: recovered rows");
        assert_eq!(res.cache_published, 0, "seed {seed} {kind}@{at}: dirty run published");
        assert_eq!(cache.entries(), 0, "seed {seed} {kind}@{at}: dirty run leaked entries");

        // First clean run publishes sealed segments...
        let (wf, h) = pipeline(seed);
        let (_trace, result) = executor(&cache).run_observed(&wf);
        let res = result.unwrap_or_else(|e| panic!("seed {seed}: clean run: {e}"));
        assert_eq!(sorted_rows(&h), clean, "seed {seed}: clean rows");
        assert!(res.cache_published > 0, "seed {seed}: clean run must publish");
        assert!(cache.entries() > 0, "seed {seed}: cache populated");

        // ...and a warm rerun serves them with identical rows.
        let (wf, h) = pipeline(seed);
        let (_trace, result) = executor(&cache).run_observed(&wf);
        let res = result.unwrap_or_else(|e| panic!("seed {seed}: warm run: {e}"));
        let stats = res.pool.expect("pooled mode reports stats");
        assert!(stats.cache_hits > 0, "seed {seed}: warm rerun must hit");
        assert_eq!(sorted_rows(&h), clean, "seed {seed}: served rows are byte-identical");
    }
}

/// Poison-safety regression: a run whose worker panics *mid-recording*
/// must leave the shared cache usable, not poisoned. Before the cache
/// recovered from [`std::sync::PoisonError`], the panicked run could
/// leave the shared `Mutex` poisoned and every later `.lock().unwrap()`
/// — lookups, publishes, even `bytes()` — cascaded the panic across
/// every run sharing the cache. Now the failed run is the only
/// casualty: the same `Arc` keeps accepting publishes and serving warm
/// reruns, and its accessors answer.
#[test]
fn panicked_recording_run_leaves_the_shared_cache_usable() {
    let seed = 23u64;
    let clean = baseline_rows(seed);
    let cache = Arc::new(ResultCache::new());

    // Several panic runs in a row — each unwinds a worker while `keep`
    // is recording for publication against the shared cache.
    for at in [10u64, 40, 80] {
        let (wf, _h) = pipeline(seed);
        let (_trace, result) = executor(&cache)
            .with_faults(FaultPlan::new(seed).panic_at("keep", at))
            .run_observed(&wf);
        result.expect_err("no retry budget: the panic fails the run");
    }

    // Every accessor still answers on the same shared value.
    assert_eq!(cache.entries(), 0);
    assert_eq!(cache.bytes(), 0);
    assert_eq!(cache.evictions(), 0);
    cache.set_byte_budget(Some(u64::MAX));
    cache.set_byte_budget(None);

    // And the cache still does its job: a clean run publishes, a warm
    // rerun is served with baseline rows.
    let (wf, h) = pipeline(seed);
    let (_trace, result) = executor(&cache).run_observed(&wf);
    let res = result.expect("clean run succeeds on the shared cache");
    assert!(res.cache_published > 0, "clean run publishes after the panics");
    assert_eq!(sorted_rows(&h), clean);

    let (wf, h) = pipeline(seed);
    let (_trace, result) = executor(&cache).run_observed(&wf);
    let res = result.expect("warm run succeeds on the shared cache");
    let stats = res.pool.expect("pooled mode reports stats");
    assert!(stats.cache_hits > 0, "warm rerun served after the panics");
    assert_eq!(sorted_rows(&h), clean, "served rows are byte-identical");
}

/// Leg-specific behaviour under the CI `CHAOS_RETRIES` matrix. The
/// disabled leg pins that an explicit `disabled()` policy behaves like
/// no policy — the kill fails the run and publishes nothing. The armed
/// leg proves a recovered kill still publishes nothing, and that the
/// clean run afterwards does.
#[test]
fn cache_chaos_retries_env_matrix() {
    let armed = std::env::var("CHAOS_RETRIES").is_ok_and(|v| v == "1");
    let seed = 17u64;
    let cache = Arc::new(ResultCache::new());
    if !armed {
        for retry in [Some(RetryConfig::uniform(RetryPolicy::disabled())), None] {
            let (wf, _h) = pipeline(seed);
            let mut exec = executor(&cache).with_faults(FaultPlan::new(seed).kill_worker("keep", 30));
            if let Some(r) = retry {
                exec = exec.with_retry(r);
            }
            let (_trace, result) = exec.run_observed(&wf);
            result.expect_err("disabled leg: the kill fails the run");
        }
        assert_eq!(cache.entries(), 0, "disabled leg: nothing published");
        assert_eq!(cache.bytes(), 0, "disabled leg: no bytes leaked");
        return;
    }
    let clean = baseline_rows(seed);
    let (wf, h) = pipeline(seed);
    let (_trace, result) = executor(&cache)
        .with_faults(FaultPlan::new(seed).kill_worker("keep", 30))
        .with_retry(RetryConfig::uniform(RetryPolicy::default()))
        .run_observed(&wf);
    let res = result.unwrap_or_else(|e| panic!("armed leg: {e}"));
    assert_eq!(sorted_rows(&h), clean, "armed leg: zero lost rows");
    assert_eq!(res.cache_published, 0, "armed leg: recovered run must not publish");
    assert_eq!(cache.entries(), 0, "armed leg: cache untouched by the dirty run");

    let (wf, h) = pipeline(seed);
    let (_trace, result) = executor(&cache).run_observed(&wf);
    let res = result.unwrap_or_else(|e| panic!("armed leg clean run: {e}"));
    assert_eq!(sorted_rows(&h), clean, "armed leg: clean rows");
    assert!(res.cache_published > 0, "armed leg: clean run publishes");
}
