//! Integration suite for the result cache's cost-aware eviction: the
//! byte budget is a hard ceiling after every publish, victim selection
//! is deterministic and prefers big-and-cheap-to-recompute entries, the
//! byte ledger always sums (`bytes == Σ published − Σ evicted`), and —
//! the part users observe — a warm rerun that lands partly on evicted
//! entries recomputes them and still produces rows byte-identical to a
//! cache-free run, on both backends.

use std::sync::Arc;

use scriptflow::core::{BackendKind, OpFingerprint};
use scriptflow::datakit::{Batch, CmpOp, DataType, Schema, SchemaRef, Tuple, Value};
use scriptflow::simcluster::SimDuration;
use scriptflow::workflow::ops::{FilterOp, ScanOp, SinkHandle, SinkOp};
use scriptflow::workflow::{
    EngineConfig, ExecBackend, PartitionStrategy, ResultCache, Workflow, WorkflowBuilder,
};

fn schema() -> SchemaRef {
    Schema::of(&[("id", DataType::Int)])
}

fn rows(n: i64) -> Vec<Tuple> {
    (0..n)
        .map(|i| Tuple::new(schema(), vec![Value::Int(i)]).unwrap())
        .collect()
}

/// Bytes one `rows(100)` entry seals to (sizes every budget below).
fn entry_bytes() -> u64 {
    let probe = ResultCache::new();
    let bytes = probe.publish(OpFingerprint(0), &schema(), &rows(100));
    assert!(bytes > 0);
    bytes
}

/// scan → keep → trim → sink; three cacheable operators so a tight
/// budget must evict some of what a cold run publishes.
fn pipeline(n: i64) -> (Workflow, SinkHandle) {
    let batch =
        Batch::from_rows(schema(), (0..n).map(|i| vec![Value::Int(i * 3 % 97)]).collect())
            .expect("rows conform");
    let mut b = WorkflowBuilder::new();
    let scan = b.add(Arc::new(ScanOp::new("scan", batch)), 1);
    let keep = b.add(
        Arc::new(FilterOp::cmp("keep", "id", CmpOp::Ge, Value::Int(5))),
        2,
    );
    let trim = b.add(
        Arc::new(FilterOp::cmp("trim", "id", CmpOp::Le, Value::Int(90))),
        1,
    );
    let sink_op = SinkOp::new("sink");
    let handle = sink_op.handle();
    let sink = b.add(Arc::new(sink_op), 1);
    b.connect(scan, keep, 0, PartitionStrategy::RoundRobin);
    b.connect(keep, trim, 0, PartitionStrategy::RoundRobin);
    b.connect(trim, sink, 0, PartitionStrategy::Single);
    (b.build().expect("valid DAG"), handle)
}

fn sorted_rows(h: &SinkHandle) -> Vec<String> {
    let mut rows: Vec<String> = h.results().iter().map(|t| format!("{t:?}")).collect();
    rows.sort();
    rows
}

fn backend_of(kind: BackendKind, cache: &Arc<ResultCache>) -> ExecBackend {
    ExecBackend::of_kind(
        kind,
        EngineConfig::default().with_result_cache(Arc::clone(cache)),
    )
}

/// Acceptance pin: after every publish returns, `bytes()` never exceeds
/// the budget — not just eventually, but at each step of a long mixed
/// publish sequence.
#[test]
fn budget_is_a_hard_ceiling_after_every_publish() {
    let per_entry = entry_bytes();
    let budget = per_entry * 3 + per_entry / 2;
    let cache = ResultCache::new().with_byte_budget(budget);
    assert_eq!(cache.byte_budget(), Some(budget));
    for i in 0..40u64 {
        let cost = SimDuration::from_micros((i % 7) * 950);
        cache.publish_costed(OpFingerprint(u128::from(i)), &schema(), &rows(100), cost, None);
        assert!(
            cache.bytes() <= budget,
            "publish {i}: {} bytes exceeds budget {budget}",
            cache.bytes()
        );
    }
    assert!(cache.evictions() > 0, "a 40-entry sweep must have evicted");
    assert_eq!(cache.entries(), 3, "three whole entries fit the budget");
}

/// Identical publish sequences on identical budgets leave identical
/// caches: same surviving fingerprints, same byte and eviction ledgers.
#[test]
fn eviction_is_deterministic_across_identical_sequences() {
    let per_entry = entry_bytes();
    let run = || {
        let cache = ResultCache::new().with_byte_budget(per_entry * 4);
        for i in 0..24u64 {
            let cost = SimDuration::from_micros((i % 5) * 1_700);
            cache.publish_costed(
                OpFingerprint(u128::from(i * 31)),
                &schema(),
                &rows(100),
                cost,
                None,
            );
        }
        (
            cache.fingerprints(),
            cache.bytes(),
            cache.evictions(),
            cache.evicted_bytes(),
        )
    };
    assert_eq!(run(), run());
}

/// Victim order is cost-aware: the biggest-and-cheapest entry goes
/// first, an expensive same-sized entry survives.
#[test]
fn eviction_prefers_big_and_cheap_to_recompute() {
    let per_small = entry_bytes();
    let cache = ResultCache::new();
    let big_bytes = cache.publish(OpFingerprint(99), &schema(), &rows(400));
    assert!(big_bytes > per_small);

    let budget = big_bytes + 2 * per_small;
    let cache = ResultCache::new().with_byte_budget(budget);
    let cheap = SimDuration::from_micros(10);
    let dear = SimDuration::from_micros(5_000_000);
    // A big cheap entry, a big expensive entry would not fit together
    // with two small ones — the cheap big one is the right victim.
    cache.publish_costed(OpFingerprint(1), &schema(), &rows(400), cheap, None);
    cache.publish_costed(OpFingerprint(2), &schema(), &rows(100), dear, None);
    cache.publish_costed(OpFingerprint(3), &schema(), &rows(100), dear, None);
    assert_eq!(cache.evictions(), 0, "everything fits so far");
    let out = cache.publish_costed(OpFingerprint(4), &schema(), &rows(100), dear, None);
    assert!(out.admitted);
    assert!(out.evictions >= 1);
    assert!(
        cache.lookup(OpFingerprint(1)).is_none(),
        "big cheap entry is the first victim"
    );
    for kept in [2u128, 3, 4] {
        assert!(
            cache.lookup(OpFingerprint(kept)).is_some(),
            "expensive entry {kept} survives"
        );
    }
}

/// The byte ledger sums across an arbitrary publish/evict history.
#[test]
fn byte_ledger_sums_published_minus_evicted() {
    let per_entry = entry_bytes();
    let cache = ResultCache::new().with_byte_budget(per_entry * 2);
    let mut published = 0u64;
    for i in 0..12u64 {
        let out = cache.publish_costed(
            OpFingerprint(u128::from(i)),
            &schema(),
            &rows(100),
            SimDuration::from_micros(i * 40),
            None,
        );
        published += out.added;
    }
    assert_eq!(cache.bytes(), published - cache.evicted_bytes());
    assert!(cache.evictions() > 0);
}

/// An entry bigger than the whole budget is rejected outright rather
/// than admitted-then-evicted (which would churn the resident set).
#[test]
fn oversized_entries_are_rejected_not_admitted() {
    let per_entry = entry_bytes();
    let cache = ResultCache::new().with_byte_budget(per_entry / 2);
    let out = cache.publish_costed(
        OpFingerprint(8),
        &schema(),
        &rows(100),
        SimDuration::from_micros(1),
        None,
    );
    assert!(!out.admitted);
    assert_eq!(out.added, 0);
    assert_eq!(cache.entries(), 0);
    assert_eq!(cache.bytes(), 0);
}

/// The user-visible contract: a budget tight enough to evict most of a
/// cold run's publications still leaves warm reruns correct — partially
/// served, partially recomputed, rows byte-identical to a cache-free
/// run. Checked on both backends.
#[test]
fn warm_rerun_after_eviction_matches_cache_free_rows_on_both_backends() {
    const N: i64 = 400;
    for kind in [BackendKind::Sim, BackendKind::Live] {
        // Cache-free baseline.
        let (wf, handle) = pipeline(N);
        ExecBackend::of_kind(kind, EngineConfig::default())
            .run_detached(&wf)
            .expect("baseline runs");
        let baseline = sorted_rows(&handle);

        // Cold run against an unbounded cache sizes the budget.
        let probe = Arc::new(ResultCache::new());
        let (wf, _h) = pipeline(N);
        let cold = backend_of(kind, &probe)
            .run_detached(&wf)
            .expect("cold probe runs");
        assert!(cold.cache_published > 0);

        // A budget below the full publish forces eviction at commit.
        let budget = cold.cache_published - 1;
        let cache = Arc::new(ResultCache::new().with_byte_budget(budget));
        let (wf, _h) = pipeline(N);
        let budgeted = backend_of(kind, &cache)
            .run_detached(&wf)
            .expect("budgeted cold run");
        assert!(
            budgeted.cache_evictions > 0,
            "{kind:?}: the tight budget must evict at commit"
        );
        assert!(cache.bytes() <= budget, "{kind:?}: ceiling holds");
        assert_eq!(
            cache.bytes(),
            budgeted.cache_published - cache.evicted_bytes(),
            "{kind:?}: ledger sums"
        );

        // Warm rerun: some entries survived, some must recompute —
        // and the rows cannot tell the difference.
        let (wf, handle) = pipeline(N);
        let warm = backend_of(kind, &cache)
            .run_detached(&wf)
            .expect("warm rerun");
        assert_eq!(
            sorted_rows(&handle),
            baseline,
            "{kind:?}: warm-after-eviction rows diverged"
        );
        assert!(
            warm.cache_hits > 0 || warm.cache_misses > 0,
            "{kind:?}: the cache was consulted"
        );
        assert!(cache.bytes() <= budget, "{kind:?}: ceiling holds after rerun");
    }
}
