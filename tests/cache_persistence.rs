//! Integration suite for the result cache's on-disk persistence: a
//! "process restart" (a fresh [`ResultCache::persistent`] over the same
//! directory) serves warm reruns with rows byte-identical to a
//! cache-free run and `cache_hits > 0`; corrupt or truncated segment
//! files degrade to a miss (the run recomputes and republishes, rows
//! unchanged); and an env-gated leg lets `scripts/ci.sh` drive the same
//! round trip across two real OS processes sharing one
//! `SCRIPTFLOW_CACHE_DIR`.

use std::path::PathBuf;
use std::sync::Arc;

use scriptflow::core::BackendKind;
use scriptflow::datakit::{Batch, CmpOp, DataType, Schema, SchemaRef, Value};
use scriptflow::workflow::ops::{FilterOp, ScanOp, SinkHandle, SinkOp};
use scriptflow::workflow::{
    EngineConfig, ExecBackend, PartitionStrategy, ResultCache, Workflow, WorkflowBuilder,
};

const ROWS: i64 = 350;

fn schema() -> SchemaRef {
    Schema::of(&[("id", DataType::Int)])
}

fn pipeline() -> (Workflow, SinkHandle) {
    let batch = Batch::from_rows(
        schema(),
        (0..ROWS).map(|i| vec![Value::Int(i * 11 % 251)]).collect(),
    )
    .expect("rows conform");
    let mut b = WorkflowBuilder::new();
    let scan = b.add(Arc::new(ScanOp::new("scan", batch)), 1);
    let keep = b.add(
        Arc::new(FilterOp::cmp("keep", "id", CmpOp::Ge, Value::Int(12))),
        2,
    );
    let sink_op = SinkOp::new("sink");
    let handle = sink_op.handle();
    let sink = b.add(Arc::new(sink_op), 1);
    b.connect(scan, keep, 0, PartitionStrategy::RoundRobin);
    b.connect(keep, sink, 0, PartitionStrategy::Single);
    (b.build().expect("valid DAG"), handle)
}

fn sorted_rows(h: &SinkHandle) -> Vec<String> {
    let mut rows: Vec<String> = h.results().iter().map(|t| format!("{t:?}")).collect();
    rows.sort();
    rows
}

fn baseline_rows() -> Vec<String> {
    let (wf, h) = pipeline();
    ExecBackend::of_kind(BackendKind::Live, EngineConfig::default())
        .run_detached(&wf)
        .expect("cache-free baseline");
    sorted_rows(&h)
}

fn cached_backend(cache: &Arc<ResultCache>) -> ExecBackend {
    ExecBackend::of_kind(
        BackendKind::Live,
        EngineConfig::default().with_result_cache(Arc::clone(cache)),
    )
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "scriptflow-persist-test-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Acceptance pin: publish, "restart" (reopen the directory with a
/// fresh cache value — nothing carried over in memory), and the warm
/// rerun is served off disk with rows identical to the cache-free run.
#[test]
fn restart_serves_warm_reruns_byte_identical_from_disk() {
    let dir = temp_dir("restart");
    let baseline = baseline_rows();

    let session1 = Arc::new(ResultCache::persistent(&dir).expect("open store"));
    let (wf, h) = pipeline();
    let cold = cached_backend(&session1)
        .run_detached(&wf)
        .expect("cold run");
    assert!(cold.cache_published > 0, "cold run seals segments to disk");
    assert_eq!(sorted_rows(&h), baseline);
    drop(session1);

    let session2 = Arc::new(ResultCache::persistent(&dir).expect("reopen store"));
    assert!(session2.entries() > 0, "manifest restored the entries");
    let (wf, h) = pipeline();
    let warm = cached_backend(&session2)
        .run_detached(&wf)
        .expect("warm run");
    assert!(warm.cache_hits > 0, "restarted rerun is served from disk");
    assert_eq!(warm.cache_published, 0, "nothing new to publish");
    assert_eq!(sorted_rows(&h), baseline, "served rows are byte-identical");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Corruption fuzz over every persisted segment file: flip a byte in
/// one, truncate another, and the reopened cache treats each damaged
/// entry as a miss — the rerun recomputes, produces baseline rows, and
/// republishes fresh segments.
#[test]
fn corrupt_and_truncated_segments_degrade_to_misses() {
    let dir = temp_dir("corrupt");
    let baseline = baseline_rows();
    {
        let cache = Arc::new(ResultCache::persistent(&dir).expect("open store"));
        let (wf, _h) = pipeline();
        let cold = cached_backend(&cache).run_detached(&wf).expect("cold run");
        assert!(cold.cache_published > 0);
    }
    let mut segs: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("store dir exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "seg"))
        .collect();
    segs.sort();
    assert!(segs.len() >= 2, "expected segments for scan and keep");
    // Damage every file a different way: byte flip, truncation, empty.
    for (i, path) in segs.iter().enumerate() {
        let mut bytes = std::fs::read(path).expect("segment readable");
        match i % 3 {
            0 => {
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0x55;
            }
            1 => bytes.truncate(bytes.len() / 3),
            _ => bytes.clear(),
        }
        std::fs::write(path, &bytes).expect("rewrite damaged segment");
    }

    let cache = Arc::new(ResultCache::persistent(&dir).expect("reopen store"));
    let (wf, h) = pipeline();
    let rerun = cached_backend(&cache).run_detached(&wf).expect("rerun");
    assert_eq!(rerun.cache_hits, 0, "damaged entries must not serve");
    assert!(rerun.cache_misses > 0, "every operator recomputes");
    assert!(rerun.cache_published > 0, "fresh segments are republished");
    assert_eq!(sorted_rows(&h), baseline, "recomputed rows are identical");

    // The repaired store now serves again.
    let (wf, h) = pipeline();
    let warm = cached_backend(&cache).run_detached(&wf).expect("warm run");
    assert!(warm.cache_hits > 0);
    assert_eq!(sorted_rows(&h), baseline);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A store written by a *budgeted* persistent cache restarts with only
/// the surviving entries — evicted segments are gone from disk too.
#[test]
fn budgeted_store_restarts_with_only_surviving_entries() {
    let dir = temp_dir("budgeted");
    let cold_published = {
        let probe = Arc::new(ResultCache::new());
        let (wf, _h) = pipeline();
        cached_backend(&probe)
            .run_detached(&wf)
            .expect("probe run")
            .cache_published
    };
    let budget = cold_published - 1;
    let (live_bytes, survivors) = {
        let cache = Arc::new(
            ResultCache::persistent(&dir)
                .expect("open store")
                .with_byte_budget(budget),
        );
        let (wf, _h) = pipeline();
        let run = cached_backend(&cache).run_detached(&wf).expect("cold run");
        assert!(run.cache_evictions > 0, "tight budget evicts at commit");
        (cache.bytes(), cache.fingerprints())
    };
    let reopened = ResultCache::persistent(&dir).expect("reopen store");
    assert_eq!(reopened.bytes(), live_bytes);
    assert_eq!(reopened.fingerprints(), survivors);
    for fp in survivors {
        assert!(reopened.lookup(fp).is_some(), "survivor decodes off disk");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Cross-process leg, driven by `scripts/ci.sh`: with
/// `SCRIPTFLOW_CACHE_DIR` pointing at a shared directory, the first
/// process (`SCRIPTFLOW_CACHE_EXPECT=cold`) publishes, the second
/// (`SCRIPTFLOW_CACHE_EXPECT=warm`) must be served from what the dead
/// process left on disk. A no-op without the env vars.
#[test]
fn cross_process_round_trip_when_env_directed() {
    let Some(dir) = std::env::var_os("SCRIPTFLOW_CACHE_DIR") else {
        return;
    };
    let expect = std::env::var("SCRIPTFLOW_CACHE_EXPECT").unwrap_or_default();
    if expect != "cold" && expect != "warm" {
        return;
    }
    let baseline = baseline_rows();
    let cache = Arc::new(ResultCache::persistent(&dir).expect("open shared store"));
    let (wf, h) = pipeline();
    let run = cached_backend(&cache).run_detached(&wf).expect("run");
    assert_eq!(sorted_rows(&h), baseline, "{expect} leg rows");
    match expect.as_str() {
        "cold" => {
            assert!(run.cache_published > 0, "cold process must publish");
            assert_eq!(run.cache_hits, 0, "store was empty");
        }
        _ => {
            assert!(
                run.cache_hits > 0,
                "warm process must be served from the segments the first process persisted"
            );
            assert_eq!(run.cache_published, 0, "nothing new to publish");
        }
    }
}
