//! Chaos suite for the pooled executor's deterministic fault-injection
//! harness: every [`scriptflow::workflow::FaultKind`] must drain the
//! pool cleanly (no leaked threads, no deadlock), pin the failure to one
//! `Failed` operator, keep the partial trace consistent, and — with a
//! single pool thread — reproduce the identical failure trace from the
//! same seed.

use scriptflow::workflow::fault::{random_chain, FaultPlan};
use scriptflow::workflow::{
    render_timeline, LiveExecutor, OperatorState, ProgressTrace, RetryConfig, RetryPolicy,
    TraceJson,
};

/// `(name, state, input, output)` per operator in the final snapshot.
fn final_states(trace: &ProgressTrace) -> Vec<(String, OperatorState, u64, u64)> {
    let (_, last) = trace
        .samples
        .last()
        .expect("a faulted run still produces a trace");
    last.iter()
        .map(|s| (s.name.clone(), s.state, s.input_tuples, s.output_tuples))
        .collect()
}

/// Everything that must be reproducible from a seeded single-thread run:
/// the final operator states and counts, the error, and the rendered
/// timeline minus its wall-clock footer (the `(time)` line carries real
/// seconds, which legitimately vary run to run).
fn fingerprint(trace: &ProgressTrace, err: &str) -> String {
    let timeline: String = render_timeline(trace)
        .lines()
        .filter(|l| !l.starts_with("(time)"))
        .collect::<Vec<_>>()
        .join("\n");
    format!("{:?} | {} | {}", final_states(trace), err, timeline)
}

/// Live threads in this process (one `/proc/self/task` entry per task).
/// procfs is Linux-only, hence the gate; other platforms get the
/// portable fallback below.
#[cfg(target_os = "linux")]
fn live_threads() -> usize {
    std::fs::read_dir("/proc/self/task")
        .expect("procfs is available on the test platform")
        .count()
}

/// Assert the process thread count returns to at most `baseline`,
/// polling briefly: pool threads are joined before `run_observed`
/// returns, but the OS may report the task entry a beat longer.
#[cfg(target_os = "linux")]
fn assert_threads_drained(baseline: usize, context: &str) {
    use std::time::{Duration, Instant};
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let now = live_threads();
        if now <= baseline {
            return;
        }
        if Instant::now() > deadline {
            panic!("{context}: {now} threads alive, baseline {baseline}");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Portable fallback: no procfs to count tasks with. The pool joins
/// every worker handle before `run_observed` returns, so reaching this
/// call at all already proves the threads were joined — the baseline is
/// meaningless off-Linux and the assertion degrades to that proof.
#[cfg(not(target_os = "linux"))]
fn live_threads() -> usize {
    0
}

#[cfg(not(target_os = "linux"))]
fn assert_threads_drained(_baseline: usize, _context: &str) {}

/// Sink rows as a sorted multiset of debug renderings — the
/// order-independent exactly-once comparison the retry tests use.
fn sorted_rows(h: &scriptflow::workflow::ops::SinkHandle) -> Vec<String> {
    let mut rows: Vec<String> = h.results().iter().map(|t| format!("{t:?}")).collect();
    rows.sort();
    rows
}

#[test]
fn same_seed_reproduces_identical_failure_trace() {
    let baseline = live_threads();
    let mut prints = Vec::new();
    for _ in 0..10 {
        let (wf, _h, _names) = random_chain(5);
        let plan = FaultPlan::new(5).kill_worker("f0", 10);
        let (trace, result) = LiveExecutor::new(8)
            .with_pool_size(1)
            .with_faults(plan)
            .run_observed(&wf);
        let err = result.expect_err("the kill fails the run").to_string();
        prints.push(fingerprint(&trace, &err));
    }
    for (i, w) in prints.windows(2).enumerate() {
        assert_eq!(
            w[0],
            w[1],
            "runs {i} and {} diverged under the same seed",
            i + 1
        );
    }
    assert_threads_drained(baseline, "same-seed determinism");
}

#[test]
fn panic_capture_surfaces_as_failed_operator() {
    let baseline = live_threads();
    let (wf, _h, _names) = random_chain(7);
    let plan = FaultPlan::new(7).panic_at("f0", 21);
    let (trace, result) = LiveExecutor::new(8)
        .with_pool_size(2)
        .with_faults(plan)
        .run_observed(&wf);
    let err = result.expect_err("the panic fails the run").to_string();
    assert!(err.contains("panicked"), "panic text surfaces: {err}");
    assert!(err.contains("f0"), "error names the operator: {err}");
    let st = final_states(&trace);
    assert!(
        st.iter()
            .any(|(n, s, _, _)| n == "f0" && *s == OperatorState::Failed),
        "the panicking operator ends Failed, not aborted: {st:?}"
    );
    assert_threads_drained(baseline, "panic capture");
}

#[test]
fn every_fault_kind_drains_and_joins_threads() {
    let baseline = live_threads();
    let plans: Vec<FaultPlan> = vec![
        FaultPlan::new(41).panic_at("f0", 10),
        FaultPlan::new(41).kill_worker("f0", 10),
        FaultPlan::new(41).poison_mailbox("sink", 1),
        FaultPlan::new(41).drop_eos("scan"),
        FaultPlan::new(41).delay_eos("f0", 2),
        FaultPlan::new(41).slow_edge("scan", 50),
    ];
    for plan in plans {
        let desc = plan.describe();
        let (wf, _h, _names) = random_chain(41);
        let (trace, _result) = LiveExecutor::new(8)
            .with_pool_size(2)
            .with_faults(plan)
            .run_observed(&wf);
        assert!(
            !trace.samples.is_empty(),
            "{desc}: the trace survives the fault"
        );
        assert_threads_drained(baseline, &desc);
    }
}

#[test]
fn chaos_random_plans_terminate_with_consistent_traces() {
    let baseline = live_threads();
    for seed in 0..32u64 {
        let (wf, _h, names) = random_chain(seed);
        let plan = FaultPlan::random(seed, &names);
        let desc = plan.describe();
        let (trace, _result) = LiveExecutor::new(8)
            .with_pool_size(1 + (seed % 3) as usize)
            .with_faults(plan)
            .run_observed(&wf);
        let st = final_states(&trace);
        // The chain is linear: each operator's input is bounded by its
        // upstream's output, faulted or not.
        for w in st.windows(2) {
            assert!(
                w[1].2 <= w[0].3,
                "seed {seed} ({desc}): {} read {} tuples but {} only wrote {}\n{st:?}",
                w[1].0,
                w[1].2,
                w[0].0,
                w[0].3
            );
        }
        assert!(
            st.iter().all(|(_, s, _, _)| s.is_terminal()),
            "seed {seed} ({desc}): operator left non-terminal: {st:?}"
        );
        assert_threads_drained(baseline, &format!("chaos seed {seed}"));
    }
}

#[test]
fn trace_parity_under_failure_roundtrips_json() {
    let baseline = live_threads();
    let (wf, _h, _names) = random_chain(9);
    let plan = FaultPlan::new(9).panic_at("f0", 15);
    let (trace, result) = LiveExecutor::new(8)
        .with_pool_size(1)
        .with_faults(plan)
        .run_observed(&wf);
    assert!(result.is_err());
    let st = final_states(&trace);
    assert!(
        st.iter().any(|(_, s, _, _)| *s == OperatorState::Failed),
        "{st:?}"
    );
    assert!(
        st.iter().any(|(_, s, _, _)| *s == OperatorState::Degraded),
        "downstream of the fault ends Degraded: {st:?}"
    );
    // The failure states survive the JSON wire format losslessly.
    let text = TraceJson::from_trace(&trace).to_string_compact();
    let back = TraceJson::parse(&text).expect("failure trace parses back");
    assert_eq!(back.samples, trace.samples);
    assert_threads_drained(baseline, "trace parity");
}

#[test]
fn drop_eos_recovers_without_deadlock() {
    let baseline = live_threads();
    let (wf, _h, _names) = random_chain(11);
    let plan = FaultPlan::new(11).drop_eos("scan");
    let (trace, result) = LiveExecutor::new(8)
        .with_pool_size(2)
        .with_faults(plan)
        .run_observed(&wf);
    let err = result.expect_err("dropping EOS fails the run").to_string();
    assert!(err.contains("end-of-stream"), "{err}");
    let st = final_states(&trace);
    assert!(st.iter().all(|(_, s, _, _)| s.is_terminal()), "{st:?}");
    assert_threads_drained(baseline, "drop EOS");
}

#[test]
fn poisoned_mailbox_fails_the_consumer() {
    let baseline = live_threads();
    let (wf, _h, _names) = random_chain(9);
    let plan = FaultPlan::new(9).poison_mailbox("sink", 2);
    let (trace, result) = LiveExecutor::new(8)
        .with_pool_size(1)
        .with_faults(plan)
        .run_observed(&wf);
    let err = result.expect_err("the poison fails the run").to_string();
    assert!(err.contains("poisoned"), "{err}");
    let st = final_states(&trace);
    assert!(
        st.iter()
            .any(|(n, s, _, _)| n == "sink" && *s == OperatorState::Failed),
        "the consumer of the poisoned mailbox fails: {st:?}"
    );
    assert_threads_drained(baseline, "poisoned mailbox");
}

#[test]
fn kill_worker_truncates_but_downstream_still_terminates() {
    let baseline = live_threads();
    let (wf, h, _names) = random_chain(5);
    let plan = FaultPlan::new(5).kill_worker("f0", 10);
    let (trace, result) = LiveExecutor::new(8)
        .with_pool_size(1)
        .with_faults(plan)
        .run_observed(&wf);
    assert!(result.is_err());
    let st = final_states(&trace);
    let f0 = st.iter().find(|(n, ..)| n == "f0").unwrap();
    assert_eq!(f0.1, OperatorState::Failed);
    let sink = st.iter().find(|(n, ..)| n == "sink").unwrap();
    assert!(sink.1.is_terminal(), "{st:?}");
    // The sink kept whatever flowed before the kill — no more.
    assert!(
        h.len() as u64 <= f0.3,
        "{} rows vs f0 output {}",
        h.len(),
        f0.3
    );
    assert_threads_drained(baseline, "kill worker");
}

#[test]
fn benign_faults_preserve_every_row() {
    let baseline = live_threads();
    let (wf, h, _names) = random_chain(13);
    let (_trace, clean) = LiveExecutor::new(8).with_pool_size(1).run_observed(&wf);
    assert!(clean.is_ok());
    let clean_rows = h.len();

    let (wf, h, _names) = random_chain(13);
    let plan = FaultPlan::new(13).slow_edge("scan", 50).delay_eos("f0", 3);
    let (_trace, result) = LiveExecutor::new(8)
        .with_pool_size(1)
        .with_faults(plan)
        .run_observed(&wf);
    let res = result.expect("benign faults do not fail the run");
    assert_eq!(h.len(), clean_rows, "benign faults lose nothing");
    let stats = res.pool.expect("pooled mode reports stats");
    assert_eq!(stats.faults_injected, 2, "both benign faults counted");
    assert_threads_drained(baseline, "benign faults");
}

#[test]
fn seeded_random_plans_pin_their_fingerprints() {
    // `FaultPlan::random` now draws via `next_below`, which is exactly
    // `next_u64() % bound` — these descriptions must be byte-identical
    // to the pre-unification modulo arithmetic. Pinning them makes any
    // future RNG change an explicit, reviewed event.
    let pinned = [
        "seed 0 [scan: kill worker at tuple 5]",
        "seed 1 [f0: kill worker at tuple 43]",
        "seed 2 [f0: drop EOS]",
        "seed 3 [f0: panic at tuple 36]",
        "seed 4 [f0: slow edge (+171us/batch)]",
        "seed 5 [scan: drop EOS]",
    ];
    for (seed, expect) in pinned.iter().enumerate() {
        let (_wf, _h, names) = random_chain(seed as u64);
        let plan = FaultPlan::random(seed as u64, &names);
        assert_eq!(plan.describe(), *expect, "seed {seed}");
    }
}

#[test]
fn combined_kill_and_drop_eos_terminates_and_stays_consistent() {
    // Regression: `drain_failed` used to clear its pending buffer
    // blindly, discarding the EOS markers the stall detector had
    // synthesized — every recovery pass re-synthesized them, every
    // drain quantum threw them away, and the run livelocked.
    let baseline = live_threads();
    let (wf, _h, _names) = random_chain(5);
    let plan = FaultPlan::new(5).kill_worker("f0", 10).drop_eos("scan");
    let (trace, result) = LiveExecutor::new(8)
        .with_pool_size(2)
        .with_faults(plan)
        .run_observed(&wf);
    assert!(result.is_err(), "the kill still fails the run");
    let st = final_states(&trace);
    assert!(st.iter().all(|(_, s, _, _)| s.is_terminal()), "{st:?}");
    assert_threads_drained(baseline, "kill + drop EOS");
}

#[test]
fn stall_recovered_operators_surface_degraded_not_completed() {
    // Regression for the stall-recovery surfacing: an operator that
    // never saw real EOS — the detector handed it synthesized markers,
    // or force-finished it outright — must report `Degraded`, never a
    // clean `Completed`.
    let baseline = live_threads();
    let (wf, _h, _names) = random_chain(11);
    let plan = FaultPlan::new(11).drop_eos("scan");
    let (trace, result) = LiveExecutor::new(8)
        .with_pool_size(2)
        .with_faults(plan)
        .run_observed(&wf);
    assert!(result.is_err(), "the dropped EOS is the recorded failure");
    let st = final_states(&trace);
    let scan = st.iter().find(|(n, ..)| n == "scan").unwrap();
    assert_eq!(scan.1, OperatorState::Failed, "{st:?}");
    let f0 = st.iter().find(|(n, ..)| n == "f0").unwrap();
    assert_eq!(
        f0.1,
        OperatorState::Degraded,
        "the consumer of the dropped EOS was stall-recovered and must not claim Completed: {st:?}"
    );
    assert_threads_drained(baseline, "stall recovery surfacing");
}

/// Fault-free sorted rows for `random_chain(seed)` — the exactly-once
/// reference every retry test compares against.
fn clean_rows(seed: u64) -> Vec<String> {
    let (wf, h, _names) = random_chain(seed);
    let (_trace, res) = LiveExecutor::new(8).with_pool_size(1).run_observed(&wf);
    res.expect("fault-free run succeeds");
    sorted_rows(&h)
}

#[test]
fn default_retry_budget_salvages_every_retryable_fault_kind() {
    let baseline = live_threads();
    let clean = clean_rows(17);
    let plans: Vec<(&str, FaultPlan)> = vec![
        ("panic", FaultPlan::new(17).panic_at("f0", 10)),
        ("kill", FaultPlan::new(17).kill_worker("f0", 10)),
        ("poison", FaultPlan::new(17).poison_mailbox("sink", 1)),
    ];
    for (kind, plan) in plans {
        let (wf, h, _names) = random_chain(17);
        let (trace, result) = LiveExecutor::new(8)
            .with_pool_size(2)
            .with_faults(plan)
            .with_retry(RetryConfig::uniform(RetryPolicy::default()))
            .run_observed(&wf);
        let run = result.unwrap_or_else(|e| panic!("{kind}: the budget absorbs the fault: {e}"));
        let st = final_states(&trace);
        assert!(
            st.iter().all(|(_, s, _, _)| *s == OperatorState::Completed),
            "{kind}: every operator ends Completed after the replay: {st:?}"
        );
        assert_eq!(sorted_rows(&h), clean, "{kind}: exactly-once delivery");
        let stats = run.pool.expect("pooled mode reports stats");
        assert!(stats.retries_succeeded >= 1, "{kind}: {stats:?}");
        assert!(
            stats.retries_attempted >= stats.retries_succeeded,
            "{kind}: {stats:?}"
        );
        assert_threads_drained(baseline, kind);
    }
}

#[test]
fn retried_runs_preserve_exactly_once_across_32_seeds() {
    let baseline = live_threads();
    for seed in 0..32u64 {
        let clean = clean_rows(seed);
        for kind in ["panic", "kill", "poison"] {
            let plan = match kind {
                "panic" => FaultPlan::new(seed).panic_at("f0", 5 + seed % 40),
                "kill" => FaultPlan::new(seed).kill_worker("f0", 5 + seed % 40),
                _ => FaultPlan::new(seed).poison_mailbox("sink", 1 + seed % 3),
            };
            let (wf, h, _names) = random_chain(seed);
            let (trace, result) = LiveExecutor::new(8)
                .with_pool_size(1)
                .with_faults(plan)
                .with_retry(RetryConfig::uniform(RetryPolicy::default()))
                .run_observed(&wf);
            result.unwrap_or_else(|e| panic!("seed {seed} {kind}: {e}"));
            assert_eq!(sorted_rows(&h), clean, "seed {seed} {kind}: exactly-once");
            let st = final_states(&trace);
            assert!(
                st.iter().all(|(_, s, _, _)| *s == OperatorState::Completed),
                "seed {seed} {kind}: {st:?}"
            );
        }
    }
    assert_threads_drained(baseline, "32-seed exactly-once sweep");
}

#[test]
fn same_seed_retry_run_fingerprint_is_identical_across_10_reps() {
    let mut prints = Vec::new();
    for _ in 0..10 {
        let (wf, h, _names) = random_chain(5);
        let plan = FaultPlan::new(5).kill_worker("f0", 10);
        let (trace, result) = LiveExecutor::new(8)
            .with_pool_size(1)
            .with_faults(plan)
            .with_retry(RetryConfig::uniform(RetryPolicy::default()))
            .run_observed(&wf);
        let run = result.expect("the budget salvages the kill");
        let stats = run.pool.expect("pooled mode reports stats");
        prints.push(format!(
            "{:?} | {}/{} | {}",
            final_states(&trace),
            stats.retries_succeeded,
            stats.retries_attempted,
            sorted_rows(&h).join(",")
        ));
    }
    for (i, w) in prints.windows(2).enumerate() {
        assert_eq!(
            w[0],
            w[1],
            "retried runs {i} and {} diverged under the same seed",
            i + 1
        );
    }
}

#[test]
fn columnar_batches_under_faults_retry_exactly_once() {
    // Regression for the columnar batch path: a fault landing while the
    // engine seals edge batches as column vectors must behave exactly
    // like the row engine — the armed batch takes the row path, the
    // replay quantum re-delivers every tuple once, and nothing about the
    // drain changes. Rows must match the *row-engine* clean run, pinning
    // that columnar sealing never alters data even across a retry.
    let baseline = live_threads();
    for seed in [5u64, 17, 23] {
        let clean = clean_rows(seed);

        // Fault-free columnar run: identical rows to the row engine.
        let (wf, h, _names) = random_chain(seed);
        let (_trace, res) = LiveExecutor::new(8)
            .with_pool_size(2)
            .with_columnar(true)
            .run_observed(&wf);
        res.expect("fault-free columnar run succeeds");
        assert_eq!(sorted_rows(&h), clean, "seed {seed}: columnar parity");

        for kind in ["panic", "kill", "poison"] {
            let plan = match kind {
                "panic" => FaultPlan::new(seed).panic_at("f0", 5 + seed % 40),
                "kill" => FaultPlan::new(seed).kill_worker("f0", 5 + seed % 40),
                _ => FaultPlan::new(seed).poison_mailbox("sink", 1 + seed % 3),
            };
            let (wf, h, _names) = random_chain(seed);
            let (trace, result) = LiveExecutor::new(8)
                .with_pool_size(1)
                .with_columnar(true)
                .with_faults(plan)
                .with_retry(RetryConfig::uniform(RetryPolicy::default()))
                .run_observed(&wf);
            result.unwrap_or_else(|e| panic!("seed {seed} {kind} (columnar): {e}"));
            assert_eq!(
                sorted_rows(&h),
                clean,
                "seed {seed} {kind}: columnar retry is exactly-once"
            );
            let st = final_states(&trace);
            assert!(
                st.iter().all(|(_, s, _, _)| *s == OperatorState::Completed),
                "seed {seed} {kind}: {st:?}"
            );
        }
    }
    assert_threads_drained(baseline, "columnar chaos sweep");
}

#[test]
fn columnar_mode_without_budget_drains_like_the_row_engine() {
    // An unbudgeted kill mid-columnar-stream must still converge: one
    // Failed operator, terminal states everywhere, threads joined.
    let baseline = live_threads();
    let (wf, _h, _names) = random_chain(5);
    let plan = FaultPlan::new(5).kill_worker("f0", 10);
    let (trace, result) = LiveExecutor::new(8)
        .with_pool_size(2)
        .with_columnar(true)
        .with_faults(plan)
        .run_observed(&wf);
    assert!(result.is_err(), "no budget: the kill fails the run");
    let st = final_states(&trace);
    assert!(
        st.iter()
            .any(|(n, s, _, _)| n == "f0" && *s == OperatorState::Failed),
        "{st:?}"
    );
    assert!(st.iter().all(|(_, s, _, _)| s.is_terminal()), "{st:?}");
    assert_threads_drained(baseline, "columnar kill without budget");
}

/// CI (`scripts/ci.sh`) runs this suite twice: `CHAOS_RETRIES=0` — the
/// default-disabled policy must leave the PR 3 seeded fingerprints
/// unchanged — and `CHAOS_RETRIES=1`, which arms the sweep below to
/// prove zero rows are lost once retryable faults run under a budget.
#[test]
fn chaos_retries_env_matrix() {
    let armed = std::env::var("CHAOS_RETRIES").is_ok_and(|v| v == "1");
    if !armed {
        // Disabled leg: an explicit `disabled()` config must behave
        // byte-identically to no retry config at all.
        let fp = |_: u32| {
            let (wf, _h, _names) = random_chain(3);
            let plan = FaultPlan::new(3).kill_worker("f0", 10);
            let (trace, result) = LiveExecutor::new(8)
                .with_pool_size(1)
                .with_faults(plan)
                .with_retry(RetryConfig::uniform(RetryPolicy::disabled()))
                .run_observed(&wf);
            let err = result.expect_err("no budget: the kill fails").to_string();
            fingerprint(&trace, &err)
        };
        let bare = {
            let (wf, _h, _names) = random_chain(3);
            let plan = FaultPlan::new(3).kill_worker("f0", 10);
            let (trace, result) = LiveExecutor::new(8)
                .with_pool_size(1)
                .with_faults(plan)
                .run_observed(&wf);
            let err = result.expect_err("the kill fails").to_string();
            fingerprint(&trace, &err)
        };
        assert_eq!(fp(0), fp(1), "disabled retries stay deterministic");
        assert_eq!(
            fp(0),
            bare,
            "max_attempts = 0 is byte-identical to no policy"
        );
        return;
    }
    for seed in [3u64, 19, 29] {
        let clean = clean_rows(seed);
        let (wf, h, _names) = random_chain(seed);
        let plan = FaultPlan::new(seed).kill_worker("f0", 10);
        let (_trace, result) = LiveExecutor::new(8)
            .with_pool_size(1)
            .with_faults(plan)
            .with_retry(RetryConfig::uniform(RetryPolicy::default()))
            .run_observed(&wf);
        result.unwrap_or_else(|e| panic!("armed leg, seed {seed}: {e}"));
        assert_eq!(sorted_rows(&h), clean, "seed {seed}: zero lost rows");
    }
}
