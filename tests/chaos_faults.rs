//! Chaos suite for the pooled executor's deterministic fault-injection
//! harness: every [`scriptflow::workflow::FaultKind`] must drain the
//! pool cleanly (no leaked threads, no deadlock), pin the failure to one
//! `Failed` operator, keep the partial trace consistent, and — with a
//! single pool thread — reproduce the identical failure trace from the
//! same seed.

use std::time::{Duration, Instant};

use scriptflow::workflow::fault::{random_chain, FaultPlan};
use scriptflow::workflow::{
    render_timeline, LiveExecutor, OperatorState, ProgressTrace, TraceJson,
};

/// `(name, state, input, output)` per operator in the final snapshot.
fn final_states(trace: &ProgressTrace) -> Vec<(String, OperatorState, u64, u64)> {
    let (_, last) = trace
        .samples
        .last()
        .expect("a faulted run still produces a trace");
    last.iter()
        .map(|s| (s.name.clone(), s.state, s.input_tuples, s.output_tuples))
        .collect()
}

/// Everything that must be reproducible from a seeded single-thread run:
/// the final operator states and counts, the error, and the rendered
/// timeline minus its wall-clock footer (the `(time)` line carries real
/// seconds, which legitimately vary run to run).
fn fingerprint(trace: &ProgressTrace, err: &str) -> String {
    let timeline: String = render_timeline(trace)
        .lines()
        .filter(|l| !l.starts_with("(time)"))
        .collect::<Vec<_>>()
        .join("\n");
    format!("{:?} | {} | {}", final_states(trace), err, timeline)
}

/// Live threads in this process (Linux: one entry per task).
fn live_threads() -> usize {
    std::fs::read_dir("/proc/self/task")
        .expect("procfs is available on the test platform")
        .count()
}

/// Assert the process thread count returns to at most `baseline`,
/// polling briefly: pool threads are joined before `run_observed`
/// returns, but the OS may report the task entry a beat longer.
fn assert_threads_drained(baseline: usize, context: &str) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let now = live_threads();
        if now <= baseline {
            return;
        }
        if Instant::now() > deadline {
            panic!("{context}: {now} threads alive, baseline {baseline}");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn same_seed_reproduces_identical_failure_trace() {
    let baseline = live_threads();
    let mut prints = Vec::new();
    for _ in 0..10 {
        let (wf, _h, _names) = random_chain(5);
        let plan = FaultPlan::new(5).kill_worker("f0", 10);
        let (trace, result) = LiveExecutor::new(8)
            .with_pool_size(1)
            .with_faults(plan)
            .run_observed(&wf);
        let err = result.expect_err("the kill fails the run").to_string();
        prints.push(fingerprint(&trace, &err));
    }
    for (i, w) in prints.windows(2).enumerate() {
        assert_eq!(
            w[0], w[1],
            "runs {i} and {} diverged under the same seed",
            i + 1
        );
    }
    assert_threads_drained(baseline, "same-seed determinism");
}

#[test]
fn panic_capture_surfaces_as_failed_operator() {
    let baseline = live_threads();
    let (wf, _h, _names) = random_chain(7);
    let plan = FaultPlan::new(7).panic_at("f0", 21);
    let (trace, result) = LiveExecutor::new(8)
        .with_pool_size(2)
        .with_faults(plan)
        .run_observed(&wf);
    let err = result.expect_err("the panic fails the run").to_string();
    assert!(err.contains("panicked"), "panic text surfaces: {err}");
    assert!(err.contains("f0"), "error names the operator: {err}");
    let st = final_states(&trace);
    assert!(
        st.iter()
            .any(|(n, s, _, _)| n == "f0" && *s == OperatorState::Failed),
        "the panicking operator ends Failed, not aborted: {st:?}"
    );
    assert_threads_drained(baseline, "panic capture");
}

#[test]
fn every_fault_kind_drains_and_joins_threads() {
    let baseline = live_threads();
    let plans: Vec<FaultPlan> = vec![
        FaultPlan::new(41).panic_at("f0", 10),
        FaultPlan::new(41).kill_worker("f0", 10),
        FaultPlan::new(41).poison_mailbox("sink", 1),
        FaultPlan::new(41).drop_eos("scan"),
        FaultPlan::new(41).delay_eos("f0", 2),
        FaultPlan::new(41).slow_edge("scan", 50),
    ];
    for plan in plans {
        let desc = plan.describe();
        let (wf, _h, _names) = random_chain(41);
        let (trace, _result) = LiveExecutor::new(8)
            .with_pool_size(2)
            .with_faults(plan)
            .run_observed(&wf);
        assert!(
            !trace.samples.is_empty(),
            "{desc}: the trace survives the fault"
        );
        assert_threads_drained(baseline, &desc);
    }
}

#[test]
fn chaos_random_plans_terminate_with_consistent_traces() {
    let baseline = live_threads();
    for seed in 0..32u64 {
        let (wf, _h, names) = random_chain(seed);
        let plan = FaultPlan::random(seed, &names);
        let desc = plan.describe();
        let (trace, _result) = LiveExecutor::new(8)
            .with_pool_size(1 + (seed % 3) as usize)
            .with_faults(plan)
            .run_observed(&wf);
        let st = final_states(&trace);
        // The chain is linear: each operator's input is bounded by its
        // upstream's output, faulted or not.
        for w in st.windows(2) {
            assert!(
                w[1].2 <= w[0].3,
                "seed {seed} ({desc}): {} read {} tuples but {} only wrote {}\n{st:?}",
                w[1].0,
                w[1].2,
                w[0].0,
                w[0].3
            );
        }
        assert!(
            st.iter().all(|(_, s, _, _)| s.is_terminal()),
            "seed {seed} ({desc}): operator left non-terminal: {st:?}"
        );
        assert_threads_drained(baseline, &format!("chaos seed {seed}"));
    }
}

#[test]
fn trace_parity_under_failure_roundtrips_json() {
    let baseline = live_threads();
    let (wf, _h, _names) = random_chain(9);
    let plan = FaultPlan::new(9).panic_at("f0", 15);
    let (trace, result) = LiveExecutor::new(8)
        .with_pool_size(1)
        .with_faults(plan)
        .run_observed(&wf);
    assert!(result.is_err());
    let st = final_states(&trace);
    assert!(
        st.iter().any(|(_, s, _, _)| *s == OperatorState::Failed),
        "{st:?}"
    );
    assert!(
        st.iter().any(|(_, s, _, _)| *s == OperatorState::Degraded),
        "downstream of the fault ends Degraded: {st:?}"
    );
    // The failure states survive the JSON wire format losslessly.
    let text = TraceJson::from_trace(&trace).to_string_compact();
    let back = TraceJson::parse(&text).expect("failure trace parses back");
    assert_eq!(back.samples, trace.samples);
    assert_threads_drained(baseline, "trace parity");
}

#[test]
fn drop_eos_recovers_without_deadlock() {
    let baseline = live_threads();
    let (wf, _h, _names) = random_chain(11);
    let plan = FaultPlan::new(11).drop_eos("scan");
    let (trace, result) = LiveExecutor::new(8)
        .with_pool_size(2)
        .with_faults(plan)
        .run_observed(&wf);
    let err = result.expect_err("dropping EOS fails the run").to_string();
    assert!(err.contains("end-of-stream"), "{err}");
    let st = final_states(&trace);
    assert!(st.iter().all(|(_, s, _, _)| s.is_terminal()), "{st:?}");
    assert_threads_drained(baseline, "drop EOS");
}

#[test]
fn poisoned_mailbox_fails_the_consumer() {
    let baseline = live_threads();
    let (wf, _h, _names) = random_chain(9);
    let plan = FaultPlan::new(9).poison_mailbox("sink", 2);
    let (trace, result) = LiveExecutor::new(8)
        .with_pool_size(1)
        .with_faults(plan)
        .run_observed(&wf);
    let err = result.expect_err("the poison fails the run").to_string();
    assert!(err.contains("poisoned"), "{err}");
    let st = final_states(&trace);
    assert!(
        st.iter()
            .any(|(n, s, _, _)| n == "sink" && *s == OperatorState::Failed),
        "the consumer of the poisoned mailbox fails: {st:?}"
    );
    assert_threads_drained(baseline, "poisoned mailbox");
}

#[test]
fn kill_worker_truncates_but_downstream_still_terminates() {
    let baseline = live_threads();
    let (wf, h, _names) = random_chain(5);
    let plan = FaultPlan::new(5).kill_worker("f0", 10);
    let (trace, result) = LiveExecutor::new(8)
        .with_pool_size(1)
        .with_faults(plan)
        .run_observed(&wf);
    assert!(result.is_err());
    let st = final_states(&trace);
    let f0 = st.iter().find(|(n, ..)| n == "f0").unwrap();
    assert_eq!(f0.1, OperatorState::Failed);
    let sink = st.iter().find(|(n, ..)| n == "sink").unwrap();
    assert!(sink.1.is_terminal(), "{st:?}");
    // The sink kept whatever flowed before the kill — no more.
    assert!(h.len() as u64 <= f0.3, "{} rows vs f0 output {}", h.len(), f0.3);
    assert_threads_drained(baseline, "kill worker");
}

#[test]
fn benign_faults_preserve_every_row() {
    let baseline = live_threads();
    let (wf, h, _names) = random_chain(13);
    let (_trace, clean) = LiveExecutor::new(8).with_pool_size(1).run_observed(&wf);
    assert!(clean.is_ok());
    let clean_rows = h.len();

    let (wf, h, _names) = random_chain(13);
    let plan = FaultPlan::new(13).slow_edge("scan", 50).delay_eos("f0", 3);
    let (_trace, result) = LiveExecutor::new(8)
        .with_pool_size(1)
        .with_faults(plan)
        .run_observed(&wf);
    let res = result.expect("benign faults do not fail the run");
    assert_eq!(h.len(), clean_rows, "benign faults lose nothing");
    let stats = res.pool.expect("pooled mode reports stats");
    assert_eq!(stats.faults_injected, 2, "both benign faults counted");
    assert_threads_drained(baseline, "benign faults");
}
