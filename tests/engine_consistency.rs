//! Engine-level consistency: the simulated and live executors must agree
//! on data for arbitrary workflows, and both paradigms must report
//! errors at the right granularity.

use std::sync::Arc;

use scriptflow::datakit::{Batch, DataError, DataType, Schema, Value};
use scriptflow::notebook::{Cell, Kernel, Notebook};
use scriptflow::raysim::RayConfig;
use scriptflow::simcluster::ClusterSpec;
use scriptflow::workflow::ops::{
    AggFn, AggregateOp, DistinctOp, FilterOp, HashJoinOp, ProjectOp, ScanOp, SinkHandle, SinkOp,
};
use scriptflow::workflow::{
    EngineConfig, ExecMode, LiveExecutor, PartitionStrategy, SimExecutor, Workflow, WorkflowBuilder,
};

fn int_batch(n: i64, modulus: i64) -> Batch {
    let schema = Schema::of(&[("id", DataType::Int), ("k", DataType::Int)]);
    Batch::from_rows(
        schema,
        (0..n)
            .map(|i| vec![Value::Int(i), Value::Int(i % modulus)])
            .collect(),
    )
    .unwrap()
}

/// A moderately gnarly workflow: scan → filter → join with a dimension
/// table → project → distinct → aggregate → sink.
fn gnarly(n: i64, workers: usize) -> (Workflow, SinkHandle) {
    let dim_schema = Schema::of(&[("k", DataType::Int), ("label", DataType::Str)]);
    let dim = Batch::from_rows(
        dim_schema,
        (0..7i64)
            .map(|k| vec![Value::Int(k), Value::Str(format!("g{k}"))])
            .collect(),
    )
    .unwrap();

    let mut b = WorkflowBuilder::new();
    let facts = b.add(Arc::new(ScanOp::new("facts", int_batch(n, 11))), workers);
    let dims = b.add(Arc::new(ScanOp::new("dims", dim)), 1);
    let filt = b.add(
        Arc::new(FilterOp::new(
            "drop_mod4",
            |t| Ok(t.get_int("id")? % 4 != 0),
        )),
        workers,
    );
    let join = b.add(
        Arc::new(HashJoinOp::new("label_join", &["k"], &["k"])),
        workers,
    );
    let proj = b.add(Arc::new(ProjectOp::new("proj", &["label", "id"])), workers);
    let dedup = b.add(
        Arc::new(DistinctOp::new("dedup", &["label", "id"])),
        workers,
    );
    let agg = b.add(
        Arc::new(AggregateOp::new(
            "per_label",
            &["label"],
            vec![AggFn::Count("n".into()), AggFn::Max("id".into())],
        )),
        workers,
    );
    let sink_op = SinkOp::new("sink");
    let handle = sink_op.handle();
    let sink = b.add(Arc::new(sink_op), 1);

    let by_k = PartitionStrategy::Hash(vec!["k".into()]);
    let by_label = PartitionStrategy::Hash(vec!["label".into()]);
    b.connect(facts, filt, 0, PartitionStrategy::RoundRobin);
    b.connect(dims, join, 0, by_k.clone());
    b.connect(filt, join, 1, by_k);
    b.connect(join, proj, 0, PartitionStrategy::RoundRobin);
    b.connect(proj, dedup, 0, by_label.clone());
    b.connect(dedup, agg, 0, by_label);
    b.connect(agg, sink, 0, PartitionStrategy::Single);
    (b.build().unwrap(), handle)
}

fn fingerprints(handle: &SinkHandle) -> Vec<String> {
    let mut rows: Vec<String> = handle.results().iter().map(|t| t.to_string()).collect();
    rows.sort_unstable();
    rows
}

#[test]
fn sim_and_live_agree_on_gnarly_workflows() {
    for (n, workers) in [(500, 1), (2_000, 2), (5_000, 4)] {
        let (wf_sim, h_sim) = gnarly(n, workers);
        SimExecutor::new(EngineConfig {
            cluster: ClusterSpec::single_node(4),
            ..EngineConfig::default()
        })
        .run(&wf_sim)
        .unwrap();

        // Both live concurrency models must match the simulation exactly.
        for mode in [ExecMode::Pooled, ExecMode::ThreadPerWorker] {
            let (wf_live, h_live) = gnarly(n, workers);
            LiveExecutor::new(128)
                .with_mode(mode)
                .run(&wf_live)
                .unwrap();

            assert_eq!(
                fingerprints(&h_sim),
                fingerprints(&h_live),
                "n={n} workers={workers} mode={mode:?}"
            );
        }
        // Sanity: only ids not divisible by 4 and k < 7 survive the
        // filter+join; 7 labels remain.
        assert_eq!(h_sim.results().len(), 7);
    }
}

#[test]
fn pooled_live_agrees_under_tight_backpressure() {
    // Small mailboxes and a pool far smaller than the worker count force
    // heavy task multiplexing and producer stalls; data must not change.
    let (wf_sim, h_sim) = gnarly(2_000, 4);
    SimExecutor::new(EngineConfig {
        cluster: ClusterSpec::single_node(4),
        ..EngineConfig::default()
    })
    .run(&wf_sim)
    .unwrap();

    let (wf_live, h_live) = gnarly(2_000, 4);
    let res = LiveExecutor::new(32)
        .with_pool_size(2)
        .with_channel_capacity(2)
        .run(&wf_live)
        .unwrap();

    assert_eq!(fingerprints(&h_sim), fingerprints(&h_live));
    let stats = res.pool.expect("pooled run reports stats");
    assert_eq!(stats.tasks, wf_live.total_workers());
    assert_eq!(stats.pool_threads, 2);
}

#[test]
fn workflow_error_is_operator_level() {
    let mut b = WorkflowBuilder::new();
    let scan = b.add(Arc::new(ScanOp::new("scan", int_batch(100, 5))), 1);
    let bad = b.add(
        Arc::new(FilterOp::new("fragile operator", |t| {
            if t.get_int("id")? == 57 {
                Err(DataError::Decode {
                    line: 57,
                    message: "corrupt record".into(),
                })
            } else {
                Ok(true)
            }
        })),
        2,
    );
    let sink = b.add(Arc::new(SinkOp::new("sink")), 1);
    b.connect(scan, bad, 0, PartitionStrategy::RoundRobin);
    b.connect(bad, sink, 0, PartitionStrategy::Single);
    let wf = b.build().unwrap();

    for flavour in ["sim", "live"] {
        let err = match flavour {
            "sim" => SimExecutor::new(EngineConfig::default())
                .run(&wf)
                .unwrap_err(),
            _ => LiveExecutor::default().run(&wf).unwrap_err(),
        };
        let msg = err.to_string();
        assert!(
            msg.contains("fragile operator") && msg.contains("corrupt record"),
            "{flavour}: {msg}"
        );
    }
}

#[test]
fn notebook_error_is_cell_level() {
    let mut nb = Notebook::new("err");
    nb.push(Cell::new("good", "x = 1", |k| {
        k.set("x", 1i64);
        Ok(())
    }));
    nb.push(Cell::new("bad cell", "y = undefined_name", |k| {
        k.get::<i64>("undefined_name")?;
        Ok(())
    }));
    let mut kernel = Kernel::new(&ClusterSpec::single_node(2), RayConfig::default());
    let err = nb.run_all(&mut kernel).unwrap_err();
    assert_eq!(err.cell, Some(1));
    assert_eq!(err.cell_name.as_deref(), Some("bad cell"));
    assert!(err.to_string().contains("NameError"), "{err}");
    // The failing run still advanced the execution counter through the
    // good cell.
    assert_eq!(kernel.execution_count(), 2);
}

#[test]
fn pipelining_ablation_never_changes_data() {
    let (wf_a, h_a) = gnarly(1_500, 3);
    SimExecutor::new(EngineConfig::default())
        .run(&wf_a)
        .unwrap();
    let (wf_b, h_b) = gnarly(1_500, 3);
    SimExecutor::new(EngineConfig::default().without_pipelining())
        .run(&wf_b)
        .unwrap();
    assert_eq!(fingerprints(&h_a), fingerprints(&h_b));
}

#[test]
fn sim_executor_is_deterministic_end_to_end() {
    let run = || {
        let (wf, h) = gnarly(3_000, 4);
        let res = SimExecutor::new(EngineConfig::default()).run(&wf).unwrap();
        (res.makespan, res.metrics.events, fingerprints(&h))
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "makespan must be bit-identical");
    assert_eq!(a.1, b.1, "event count must match");
    assert_eq!(a.2, b.2, "data must match");
}
