//! Invalidation correctness for fingerprinted operator memoization.
//!
//! The result cache is only sound if the [`OpFingerprint`] vocabulary
//! draws the invalidation boundary exactly right: every observable spec
//! edit must move the fingerprint (stale entries can never be served),
//! while equivalences that cannot change the rows — commutative input
//! reordering — must *not* move it (or the cache would never hit).
//! This suite pins both directions structurally, then
//! sweeps seeded random DAG edits on both backends asserting the
//! contract that matters: a warm rerun after an edit produces rows
//! byte-identical to a cold, cache-free run of the edited DAG.
//!
//! [`OpFingerprint`]: scriptflow::core::OpFingerprint

use std::collections::HashSet;
use std::sync::Arc;

use scriptflow::core::{BackendKind, OpFingerprint};
use scriptflow::datakit::{Batch, CmpOp, DataType, Schema, Value};
use scriptflow::simcluster::Language;
use scriptflow::workflow::ops::{FilterOp, HashJoinOp, ScanOp, SinkHandle, SinkOp, UnionOp};
use scriptflow::workflow::{
    CostProfile, EngineConfig, ExecBackend, PartitionStrategy, ResultCache, Workflow,
    WorkflowBuilder,
};

fn int_batch(rows: &[i64]) -> Batch {
    let schema = Schema::of(&[("id", DataType::Int)]);
    Batch::from_rows(schema, rows.iter().map(|&i| vec![Value::Int(i)]).collect())
        .expect("rows conform")
}

/// scan → filter → sink with every knob explicit; returns the filter
/// node's fingerprint.
#[allow(clippy::too_many_arguments)]
fn filter_fp(
    rows: &[i64],
    scan_name: &str,
    filter_name: &str,
    threshold: i64,
    cmp: CmpOp,
    cost_micros: u64,
    language: Language,
    workers: usize,
) -> OpFingerprint {
    let mut b = WorkflowBuilder::new();
    let scan = b.add(Arc::new(ScanOp::new(scan_name, int_batch(rows))), workers);
    let filter = b.add(
        Arc::new(
            FilterOp::cmp(filter_name, "id", cmp, Value::Int(threshold))
                .with_cost(CostProfile::per_tuple_micros(cost_micros))
                .with_language(language),
        ),
        workers,
    );
    let sink = b.add(Arc::new(SinkOp::new("sink")), 1);
    b.connect(scan, filter, 0, PartitionStrategy::RoundRobin);
    b.connect(filter, sink, 0, PartitionStrategy::Single);
    let wf = b.build().expect("valid DAG");
    wf.fingerprint(filter)
}

/// Every observable spec field — on the operator itself or anywhere in
/// its upstream cone — must move the node's fingerprint; all mutations
/// must also be pairwise distinct.
#[test]
fn every_spec_field_mutation_changes_the_fingerprint() {
    let rows: Vec<i64> = (0..50).collect();
    let base = filter_fp(&rows, "scan", "f", 5, CmpOp::Gt, 10, Language::Python, 2);

    let mut edited_rows = rows.clone();
    edited_rows[7] = -7;
    let mutations = [
        ("scan data", filter_fp(&edited_rows, "scan", "f", 5, CmpOp::Gt, 10, Language::Python, 2)),
        ("scan name", filter_fp(&rows, "scan2", "f", 5, CmpOp::Gt, 10, Language::Python, 2)),
        ("filter name", filter_fp(&rows, "scan", "g", 5, CmpOp::Gt, 10, Language::Python, 2)),
        ("literal", filter_fp(&rows, "scan", "f", 6, CmpOp::Gt, 10, Language::Python, 2)),
        ("comparison", filter_fp(&rows, "scan", "f", 5, CmpOp::Ge, 10, Language::Python, 2)),
        ("cost", filter_fp(&rows, "scan", "f", 5, CmpOp::Gt, 11, Language::Python, 2)),
        ("language", filter_fp(&rows, "scan", "f", 5, CmpOp::Gt, 10, Language::Scala, 2)),
    ];
    let mut seen = HashSet::from([base.0]);
    for (what, fp) in mutations {
        assert_ne!(fp, base, "editing {what} must invalidate");
        assert!(seen.insert(fp.0), "mutation {what} collided with another");
    }
    // Stability: rebuilding the identical spec reproduces the digest.
    assert_eq!(
        base,
        filter_fp(&rows, "scan", "f", 5, CmpOp::Gt, 10, Language::Python, 2)
    );
}

/// Repartitioning invalidates conservatively: per-worker-stateful
/// operators (distinct, join) can emit different multisets under a
/// different worker count, so the node fold deliberately includes
/// parallelism even though the operator's own spec digest does not.
#[test]
fn repartitioning_conservatively_invalidates() {
    let rows: Vec<i64> = (0..50).collect();
    assert_ne!(
        filter_fp(&rows, "scan", "f", 5, CmpOp::Gt, 10, Language::Python, 2),
        filter_fp(&rows, "scan", "f", 5, CmpOp::Gt, 10, Language::Python, 4),
    );
}

/// A union's inputs are interchangeable, so wiring them in either order
/// folds to the same fingerprint — while a join's build/probe ports are
/// not, so swapping those must invalidate.
#[test]
fn commutative_input_reordering_preserves_the_fingerprint() {
    let union_fp = |swap: bool| {
        let mut b = WorkflowBuilder::new();
        let a = b.add(Arc::new(ScanOp::new("a", int_batch(&[1, 2, 3]))), 1);
        let c = b.add(Arc::new(ScanOp::new("c", int_batch(&[4, 5]))), 1);
        let u = b.add(Arc::new(UnionOp::new("u", 2)), 1);
        let sink = b.add(Arc::new(SinkOp::new("sink")), 1);
        let (p0, p1) = if swap { (c, a) } else { (a, c) };
        b.connect(p0, u, 0, PartitionStrategy::RoundRobin);
        b.connect(p1, u, 1, PartitionStrategy::RoundRobin);
        b.connect(u, sink, 0, PartitionStrategy::Single);
        let wf = b.build().expect("valid DAG");
        wf.fingerprint(u)
    };
    assert_eq!(union_fp(false), union_fp(true));

    let join_fp = |swap: bool| {
        let schema = Schema::of(&[("k", DataType::Int)]);
        let mk = |n: i64| {
            Batch::from_rows(schema.clone(), (0..n).map(|i| vec![Value::Int(i)]).collect())
                .expect("rows conform")
        };
        let mut b = WorkflowBuilder::new();
        let x = b.add(Arc::new(ScanOp::new("x", mk(3))), 1);
        let y = b.add(Arc::new(ScanOp::new("y", mk(5))), 1);
        let j = b.add(Arc::new(HashJoinOp::new("j", &["k"], &["k"])), 1);
        let sink = b.add(Arc::new(SinkOp::new("sink")), 1);
        let (build, probe) = if swap { (y, x) } else { (x, y) };
        b.connect(build, j, 0, PartitionStrategy::Hash(vec!["k".into()]));
        b.connect(probe, j, 1, PartitionStrategy::Hash(vec!["k".into()]));
        b.connect(j, sink, 0, PartitionStrategy::Single);
        let wf = b.build().expect("valid DAG");
        wf.fingerprint(j)
    };
    assert_ne!(join_fp(false), join_fp(true), "build/probe order matters");
}

/// Deterministic xorshift64* for the seeded DAG-edit sweep (no external
/// RNG crates in the workspace).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// A randomized two-branch DAG genome: two scans filtered separately,
/// unioned, filtered again. Every parameter comes from the seed.
#[derive(Clone)]
struct Genome {
    rows_a: Vec<i64>,
    rows_b: Vec<i64>,
    cut_a: i64,
    cut_b: i64,
    cut_tail: i64,
}

impl Genome {
    fn random(rng: &mut XorShift) -> Genome {
        let n_a = 40 + rng.below(60) as i64;
        let n_b = 40 + rng.below(60) as i64;
        Genome {
            rows_a: (0..n_a).map(|i| (i * 7 + rng.below(5) as i64) % 200).collect(),
            rows_b: (0..n_b).map(|i| (i * 11 + rng.below(5) as i64) % 200).collect(),
            cut_a: rng.below(100) as i64,
            cut_b: rng.below(100) as i64,
            cut_tail: rng.below(150) as i64,
        }
    }

    /// One random edit: mutate a single spec field, leaving the rest of
    /// the DAG (and so its cache entries) intact.
    fn edited(&self, rng: &mut XorShift) -> Genome {
        let mut g = self.clone();
        match rng.below(4) {
            0 => g.cut_a += 1 + rng.below(20) as i64,
            1 => g.cut_b += 1 + rng.below(20) as i64,
            2 => g.cut_tail += 1 + rng.below(20) as i64,
            _ => {
                let i = rng.below(g.rows_a.len() as u64) as usize;
                g.rows_a[i] += 201;
            }
        }
        g
    }

    fn build(&self) -> (Workflow, SinkHandle) {
        let mut b = WorkflowBuilder::new();
        let sa = b.add(Arc::new(ScanOp::new("scan_a", int_batch(&self.rows_a))), 1);
        let sb = b.add(Arc::new(ScanOp::new("scan_b", int_batch(&self.rows_b))), 1);
        let fa = b.add(
            Arc::new(FilterOp::cmp("fa", "id", CmpOp::Ge, Value::Int(self.cut_a))),
            2,
        );
        let fb = b.add(
            Arc::new(FilterOp::cmp("fb", "id", CmpOp::Ge, Value::Int(self.cut_b))),
            2,
        );
        let u = b.add(Arc::new(UnionOp::new("union", 2)), 1);
        let tail = b.add(
            Arc::new(FilterOp::cmp("tail", "id", CmpOp::Le, Value::Int(self.cut_tail))),
            2,
        );
        let sink_op = SinkOp::new("sink");
        let handle = sink_op.handle();
        let sink = b.add(Arc::new(sink_op), 1);
        b.connect(sa, fa, 0, PartitionStrategy::RoundRobin);
        b.connect(sb, fb, 0, PartitionStrategy::RoundRobin);
        b.connect(fa, u, 0, PartitionStrategy::RoundRobin);
        b.connect(fb, u, 1, PartitionStrategy::RoundRobin);
        b.connect(u, tail, 0, PartitionStrategy::RoundRobin);
        b.connect(tail, sink, 0, PartitionStrategy::Single);
        (b.build().expect("genome builds"), handle)
    }
}

fn run_rows(
    genome: &Genome,
    kind: BackendKind,
    cache: Option<&Arc<ResultCache>>,
) -> (Vec<String>, u64, u64) {
    let (wf, handle) = genome.build();
    let mut config = EngineConfig::default();
    if let Some(c) = cache {
        config = config.with_result_cache(c.clone());
    }
    let run = ExecBackend::of_kind(kind, config)
        .run(&wf, &handle)
        .expect("genome runs");
    let mut rows: Vec<String> = run.rows.iter().map(|t| format!("{t:?}")).collect();
    rows.sort_unstable();
    (rows, run.cache_hits, run.cache_misses)
}

/// The sweep: 16 seeds × both backends. Cold-populate a cache, apply
/// one random edit, rerun warm — the warm rerun must serve at least one
/// unedited operator from the cache and still produce rows
/// byte-identical to a cache-free cold run of the edited DAG.
#[test]
fn random_dag_edits_serve_hits_with_byte_identical_rows_on_both_backends() {
    for seed in 0..16u64 {
        let mut rng = XorShift(0x9e37_79b9 ^ (seed + 1));
        let base = Genome::random(&mut rng);
        let edited = base.edited(&mut rng);
        for kind in [BackendKind::Sim, BackendKind::Live] {
            let cache = Arc::new(ResultCache::new());
            let (_, cold_hits, cold_misses) = run_rows(&base, kind, Some(&cache));
            assert_eq!(cold_hits, 0, "seed {seed}/{kind}: empty cache cannot hit");
            assert!(cold_misses > 0, "seed {seed}/{kind}: cold run records");

            let (warm_rows, warm_hits, _) = run_rows(&edited, kind, Some(&cache));
            let (control_rows, _, _) = run_rows(&edited, kind, None);
            assert!(
                warm_hits > 0,
                "seed {seed}/{kind}: a one-field edit must leave some cone cached"
            );
            assert_eq!(
                warm_rows, control_rows,
                "seed {seed}/{kind}: cache hit must imply byte-identical rows"
            );
        }
    }
}
