//! Live-vs-sim observability parity: on the same DAG, the pooled live
//! executor's sampled [`ProgressTrace`] must end in the same per-operator
//! tuple counts and terminal states the simulated executor reports, and a
//! failing operator must surface as `Failed` in the live trace instead of
//! hanging the pool.

use std::sync::Arc;
use std::time::Duration;

use scriptflow::core::Calibration;
use scriptflow::datakit::{Batch, DataError, DataType, Schema, Value};
use scriptflow::simcluster::{ClusterSpec, SimDuration};
use scriptflow::tasks::dice::{workflow::build_dice_workflow, DiceParams};
use scriptflow::workflow::ops::{FilterOp, ScanOp, SinkOp};
use scriptflow::workflow::{
    render_timeline, EngineConfig, LiveExecutor, OperatorState, PartitionStrategy, ProgressTrace,
    SimExecutor, TraceJson, WorkflowBuilder,
};

/// The last sample, flattened to comparable per-operator facts.
fn final_counts(trace: &ProgressTrace) -> Vec<(String, OperatorState, u64, u64)> {
    let (_, snaps) = trace.samples.last().expect("non-empty trace");
    snaps
        .iter()
        .map(|s| (s.name.clone(), s.state, s.input_tuples, s.output_tuples))
        .collect()
}

#[test]
fn dice_live_trace_matches_sim_executor() {
    let cal = Calibration::paper();
    let params = DiceParams::new(12, 2);

    let (wf, _sink) = build_dice_workflow(&params, &cal).expect("valid DAG");
    let cfg = EngineConfig {
        cluster: ClusterSpec::paper_cluster(),
        batch_size: cal.wf_batch_size,
        serde_per_tuple: cal.wf_serde_per_tuple,
        pipelining: cal.wf_pipelining,
        ..EngineConfig::default()
    };
    let sim = SimExecutor::new(cfg)
        .with_trace(SimDuration::from_millis(100))
        .run(&wf)
        .expect("sim run");

    let (wf, _sink) = build_dice_workflow(&params, &cal).expect("valid DAG");
    let live = LiveExecutor::new(64)
        .with_trace(Duration::from_micros(500))
        .run(&wf)
        .expect("live run");

    assert!(!live.trace.is_empty(), "live trace must carry samples");
    assert!(!sim.trace.is_empty(), "sim trace must carry samples");
    assert_eq!(
        final_counts(&live.trace),
        final_counts(&sim.trace),
        "terminal per-operator states and tuple counts must agree"
    );

    // Sample instants are monotone, so the GUI can replay in order.
    for w in live.trace.samples.windows(2) {
        assert!(w[0].0 <= w[1].0, "live sample times must be ascending");
    }

    // Both traces render through the same timeline code path, unchanged.
    for trace in [&live.trace, &sim.trace] {
        let text = render_timeline(trace);
        assert!(!text.is_empty());
        assert!(text.contains("samples from"), "{text}");
    }

    // The live trace survives the JSON wire format losslessly.
    let text = TraceJson::from_trace(&live.trace).to_string_compact();
    let back = TraceJson::parse(&text).expect("parse back");
    assert_eq!(back.samples, live.trace.samples);
}

#[test]
fn failing_operator_surfaces_failed_state_in_live_trace() {
    let schema = Schema::of(&[("id", DataType::Int)]);
    let batch =
        Batch::from_rows(schema, (0..500i64).map(|i| vec![Value::Int(i)]).collect()).unwrap();
    let mut b = WorkflowBuilder::new();
    let scan = b.add(Arc::new(ScanOp::new("scan", batch)), 1);
    let bad = b.add(
        Arc::new(FilterOp::new("fragile", |t| {
            if t.get_int("id")? == 57 {
                Err(DataError::Decode {
                    line: 57,
                    message: "corrupt record".into(),
                })
            } else {
                Ok(true)
            }
        })),
        2,
    );
    let sink = b.add(Arc::new(SinkOp::new("sink")), 1);
    b.connect(scan, bad, 0, PartitionStrategy::RoundRobin);
    b.connect(bad, sink, 0, PartitionStrategy::Single);
    let wf = b.build().unwrap();

    // `run_observed` hands back the trace even though the run errors.
    let (trace, result) = LiveExecutor::new(64)
        .with_trace(Duration::from_millis(1))
        .run_observed(&wf);
    let err = result.expect_err("the fragile operator must fail the run");
    assert!(err.to_string().contains("corrupt record"), "{err}");

    let (_, snaps) = trace.samples.last().expect("trace present on failure");
    let fragile = snaps.iter().find(|s| s.name == "fragile").expect("probe");
    assert_eq!(fragile.state, OperatorState::Failed);
}
