//! Cross-paradigm equivalence: for every task, the notebook+Ray
//! implementation and the workflow implementation must produce the same
//! output multiset as each other and as the task oracle, at several
//! sizes and worker counts.

use scriptflow::core::Calibration;
use scriptflow::simcluster::Language;
use scriptflow::tasks::{dice, gotta, kge, wef};

#[test]
fn dice_equivalence_across_sizes_and_workers() {
    let cal = Calibration::paper();
    for (pairs, workers) in [(5, 1), (12, 2), (20, 4)] {
        let params = dice::DiceParams::new(pairs, workers);
        let expected = dice::oracle(&params.dataset());
        let sc = dice::script::run_script(&params, &cal).expect("script");
        let wf = dice::workflow::run_workflow(&params, &cal).expect("workflow");
        assert_eq!(sc.output, expected, "script @ {pairs}x{workers}");
        assert_eq!(wf.output, expected, "workflow @ {pairs}x{workers}");
    }
}

#[test]
fn wef_equivalence_and_quality() {
    let cal = Calibration::paper();
    for tweets in [60, 150] {
        let params = wef::WefParams::new(tweets);
        let sc = wef::script::run_script(&params, &cal).expect("script");
        let wf = wef::workflow::run_workflow(&params, &cal).expect("workflow");
        assert_eq!(sc.output, wf.output, "@ {tweets} tweets");
        assert_eq!(sc.output.len(), tweets);
    }
}

#[test]
fn gotta_equivalence_and_exact_match() {
    let cal = Calibration::paper();
    for (paragraphs, workers) in [(2, 1), (6, 2), (10, 4)] {
        let params = gotta::GottaParams::new(paragraphs, workers);
        let sc = gotta::script::run_script(&params, &cal).expect("script");
        let wf = gotta::workflow::run_workflow(&params, &cal).expect("workflow");
        assert_eq!(sc.output, wf.output, "@ {paragraphs}x{workers}");
        let em = gotta::exact_match_of(&sc.output);
        assert!(em > 0.5, "exact match {em} @ {paragraphs} paragraphs");
    }
}

#[test]
fn kge_equivalence_across_all_configurations() {
    let cal = Calibration::paper();
    let base = kge::KgeParams::new(700, 2);
    let mut expected = kge::oracle(&base.catalog(&cal), cal.kge_top_k);
    expected.sort_unstable();

    let sc = kge::script::run_script(&base, &cal).expect("script");
    assert_eq!(sc.output, expected);

    for fusion in 1..=6 {
        let params = kge::KgeParams::new(700, 2).with_fusion(fusion);
        let wf = kge::workflow::run_workflow(&params, &cal).expect("workflow");
        assert_eq!(wf.output, expected, "fusion {fusion}");
    }
    for params in [
        kge::KgeParams::new(700, 2).with_fusion(3).with_pandas_join(),
        kge::KgeParams::new(700, 2)
            .with_fusion(3)
            .with_join_language(Language::Scala),
    ] {
        let wf = kge::workflow::run_workflow(&params, &cal).expect("workflow");
        assert_eq!(wf.output, expected, "{}", params.config_string());
    }
}

#[test]
fn worker_count_never_changes_results() {
    let cal = Calibration::paper();
    let baseline = kge::script::run_script(&kge::KgeParams::new(900, 1), &cal)
        .expect("script")
        .output;
    for workers in [2, 3, 4, 8] {
        let run = kge::script::run_script(&kge::KgeParams::new(900, workers), &cal)
            .expect("script");
        assert_eq!(run.output, baseline, "workers={workers}");
        let wf = kge::workflow::run_workflow(&kge::KgeParams::new(900, workers), &cal)
            .expect("workflow");
        assert_eq!(wf.output, baseline, "workflow workers={workers}");
    }
}
