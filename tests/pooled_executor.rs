//! Regression guards for the pool-scheduled live executor: bounded
//! channels must never deadlock a blocking-operator DAG, and the pooled
//! data path must agree with the simulator bit-for-bit.

use std::sync::Arc;
use std::time::Duration;

use scriptflow::datakit::{Batch, DataType, Schema, Value};
use scriptflow::simcluster::ClusterSpec;
use scriptflow::workflow::ops::{FilterOp, HashJoinOp, ScanOp, SinkHandle, SinkOp};
use scriptflow::workflow::{
    EngineConfig, LiveExecutor, PartitionStrategy, PoolStats, SimExecutor, Workflow,
    WorkflowBuilder,
};

/// Diamond DAG: one source fans out to two filter branches that reconverge
/// on a hash join — evens feed the blocking build port, odds the gated
/// probe port.
///
/// This is the deadlock-prone shape under bounded channels: while the
/// build port is open, probe batches must be *held* by the join (not left
/// in its mailbox), or the probe branch wedges, backpressure propagates to
/// the shared source, and the build branch starves forever.
fn diamond(n: i64, workers: usize) -> (Workflow, SinkHandle) {
    let schema = Schema::of(&[("id", DataType::Int), ("k", DataType::Int)]);
    let batch = Batch::from_rows(
        schema,
        (0..n)
            .map(|i| vec![Value::Int(i), Value::Int(i % 7)])
            .collect(),
    )
    .unwrap();

    let mut b = WorkflowBuilder::new();
    let scan = b.add(Arc::new(ScanOp::new("scan", batch)), workers);
    let evens = b.add(
        Arc::new(FilterOp::new("evens", |t| Ok(t.get_int("id")? % 2 == 0))),
        workers,
    );
    let odds = b.add(
        Arc::new(FilterOp::new("odds", |t| Ok(t.get_int("id")? % 2 == 1))),
        workers,
    );
    let join = b.add(Arc::new(HashJoinOp::new("rejoin", &["k"], &["k"])), workers);
    let sink_op = SinkOp::new("sink");
    let handle = sink_op.handle();
    let sink = b.add(Arc::new(sink_op), 1);

    let by_k = PartitionStrategy::Hash(vec!["k".into()]);
    b.connect(scan, evens, 0, PartitionStrategy::RoundRobin);
    b.connect(scan, odds, 0, PartitionStrategy::RoundRobin);
    b.connect(evens, join, 0, by_k.clone());
    b.connect(odds, join, 1, by_k);
    b.connect(join, sink, 0, PartitionStrategy::Single);
    (b.build().unwrap(), handle)
}

fn fingerprints(handle: &SinkHandle) -> Vec<String> {
    let mut rows: Vec<String> = handle.results().iter().map(|t| t.to_string()).collect();
    rows.sort_unstable();
    rows
}

/// Run the diamond pooled with the given knobs on a watchdog thread so a
/// scheduling deadlock fails the test instead of hanging the suite.
fn run_diamond_pooled(
    n: i64,
    workers: usize,
    batch: usize,
    pool: usize,
    capacity: usize,
) -> (Option<PoolStats>, Vec<String>) {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let (wf, handle) = diamond(n, workers);
        let res = LiveExecutor::new(batch)
            .with_pool_size(pool)
            .with_channel_capacity(capacity)
            .run(&wf)
            .expect("diamond workflow must execute");
        let _ = tx.send((res.pool, fingerprints(&handle)));
    });
    rx.recv_timeout(Duration::from_secs(120))
        .expect("pooled diamond DAG deadlocked (or panicked) under bounded channels")
}

#[test]
fn diamond_dag_completes_under_bounded_channels() {
    // Capacity 1 + a pool smaller than the task count is the harshest
    // configuration: every send can stall and no task owns a thread.
    let (stats, rows) = run_diamond_pooled(2_048, 2, 4, 2, 1);
    assert!(!rows.is_empty(), "join must produce matches");
    let stats = stats.expect("pooled run reports stats");
    assert!(
        stats.backpressure_stalls > 0,
        "capacity-1 mailboxes must exercise backpressure: {stats:?}"
    );
}

#[test]
fn pooled_diamond_matches_sim() {
    let (wf_sim, h_sim) = diamond(2_048, 2);
    SimExecutor::new(EngineConfig {
        cluster: ClusterSpec::single_node(4),
        ..EngineConfig::default()
    })
    .run(&wf_sim)
    .unwrap();

    for (pool, capacity) in [(1, 1), (2, 3), (8, 64)] {
        let (_, rows) = run_diamond_pooled(2_048, 2, 16, pool, capacity);
        assert_eq!(
            fingerprints(&h_sim),
            rows,
            "pool={pool} capacity={capacity}"
        );
    }
}
