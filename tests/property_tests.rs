//! Property-based tests (proptest) over the core invariants DESIGN.md
//! lists: partitioning completeness, join correctness vs a nested-loop
//! oracle, top-k vs full sort, codec roundtrips, and schema soundness.

use std::sync::Arc;

use proptest::prelude::*;
use scriptflow::datakit::codec::{from_csv, from_jsonl, to_csv, to_jsonl, Json};
use scriptflow::datakit::{
    Batch, BlockAppender, CmpOp, ColumnarBatch, CompressedBlock, DataFrame, DataType, HashKey,
    MergeHow, Schema, Tuple, Value,
};
use scriptflow::mlkit::kge::{EmbeddingTable, KgeScorer};
use scriptflow::workflow::ops::{FilterOp, HashJoinOp, ScanOp, SinkOp};
use scriptflow::workflow::{
    EngineConfig, LiveExecutor, PartitionStrategy, SimExecutor, WorkflowBuilder,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hash partitioning is a function: same key → same bucket; and all
    /// buckets are within range.
    #[test]
    fn hash_partitioning_is_stable_and_in_range(keys in prop::collection::vec(any::<i64>(), 1..200), buckets in 1usize..16) {
        for k in &keys {
            let hk = HashKey::Int(*k);
            let b1 = hk.bucket(buckets);
            let b2 = hk.bucket(buckets);
            prop_assert_eq!(b1, b2);
            prop_assert!(b1 < buckets);
        }
    }

    /// Round-robin + hash partitioning together cover every tuple exactly
    /// once (no loss, no duplication) through a real workflow.
    #[test]
    fn partitioned_pipeline_loses_nothing(n in 1i64..400, workers in 1usize..5) {
        let schema = Schema::of(&[("id", DataType::Int)]);
        let batch = Batch::from_rows(schema, (0..n).map(|i| vec![Value::Int(i)]).collect()).unwrap();
        let mut b = WorkflowBuilder::new();
        let scan = b.add(Arc::new(ScanOp::new("scan", batch)), workers);
        let sink_op = SinkOp::new("sink");
        let handle = sink_op.handle();
        let sink = b.add(Arc::new(sink_op), workers);
        b.connect(scan, sink, 0, PartitionStrategy::Hash(vec!["id".into()]));
        let wf = b.build().unwrap();
        SimExecutor::new(EngineConfig::default()).run(&wf).unwrap();
        let mut ids: Vec<i64> = handle.results().iter().map(|t| t.get_int("id").unwrap()).collect();
        ids.sort_unstable();
        let expected: Vec<i64> = (0..n).collect();
        prop_assert_eq!(ids, expected);
    }

    /// The engine's hash join equals a nested-loop oracle for arbitrary
    /// key multisets on both sides.
    #[test]
    fn hash_join_matches_nested_loop(
        build_keys in prop::collection::vec(0i64..20, 0..40),
        probe_keys in prop::collection::vec(0i64..20, 0..60),
        workers in 1usize..4,
    ) {
        // Oracle count.
        let mut expected = 0usize;
        for p in &probe_keys {
            expected += build_keys.iter().filter(|b| *b == p).count();
        }

        let bs = Schema::of(&[("k", DataType::Int), ("tag", DataType::Int)]);
        let build = Batch::from_rows(
            bs,
            build_keys.iter().enumerate().map(|(i, k)| vec![Value::Int(*k), Value::Int(i as i64)]).collect(),
        ).unwrap();
        let ps = Schema::of(&[("id", DataType::Int), ("k", DataType::Int)]);
        let probe = Batch::from_rows(
            ps,
            probe_keys.iter().enumerate().map(|(i, k)| vec![Value::Int(i as i64), Value::Int(*k)]).collect(),
        ).unwrap();

        let mut b = WorkflowBuilder::new();
        let bsrc = b.add(Arc::new(ScanOp::new("build", build)), 1);
        let psrc = b.add(Arc::new(ScanOp::new("probe", probe)), workers);
        let join = b.add(Arc::new(HashJoinOp::new("join", &["k"], &["k"])), workers);
        let sink_op = SinkOp::new("sink");
        let handle = sink_op.handle();
        let sink = b.add(Arc::new(sink_op), 1);
        b.connect(bsrc, join, 0, PartitionStrategy::Hash(vec!["k".into()]));
        b.connect(psrc, join, 1, PartitionStrategy::Hash(vec!["k".into()]));
        b.connect(join, sink, 0, PartitionStrategy::Single);
        let wf = b.build().unwrap();
        SimExecutor::new(EngineConfig::default()).run(&wf).unwrap();
        prop_assert_eq!(handle.len(), expected);
    }

    /// Top-k ranking equals the head of the full sort for arbitrary
    /// embedding tables.
    #[test]
    fn top_k_matches_full_sort(n in 1usize..150, k in 1usize..20, seed in any::<u64>()) {
        let table = EmbeddingTable::random(4, 0..n as i64, seed);
        let scorer = KgeScorer::new(vec![0.3, -0.1, 0.7, 0.2], vec![0.1, 0.1, -0.4, 0.0]);
        let top = scorer.top_k((0..n as i64).map(|i| (i, table.get(i).unwrap())), k);
        let all = scorer.top_k((0..n as i64).map(|i| (i, table.get(i).unwrap())), n);
        prop_assert_eq!(&top[..], &all[..k.min(n)]);
    }

    /// CSV and JSONL codecs roundtrip arbitrary string/int/float rows.
    #[test]
    fn codecs_roundtrip(
        rows in prop::collection::vec(
            ("[a-zA-Z0-9 ,\"\n\\\\]{0,24}", any::<i64>(), -1.0e6f64..1.0e6),
            0..30,
        )
    ) {
        let schema = Schema::of(&[
            ("s", DataType::Str),
            ("i", DataType::Int),
            ("x", DataType::Float),
        ]);
        let batch = Batch::from_rows(
            schema.clone(),
            rows.iter()
                .map(|(s, i, x)| vec![Value::Str(s.clone()), Value::Int(*i), Value::Float(*x)])
                .collect(),
        ).unwrap();
        let csv_back = from_csv(schema.clone(), &to_csv(&batch)).unwrap();
        prop_assert_eq!(&csv_back, &batch);
        let jsonl_back = from_jsonl(schema, &to_jsonl(&batch)).unwrap();
        prop_assert_eq!(&jsonl_back, &batch);
    }

    /// JSON documents rendered by the GUI layer parse back identically.
    #[test]
    fn json_writer_parser_roundtrip(s in "[\\x20-\\x7e]{0,40}", i in any::<i64>()) {
        let doc = Json::Object(vec![
            ("name".into(), Json::Str(s)),
            ("count".into(), Json::Int(i)),
            ("nested".into(), Json::Array(vec![Json::Null, Json::Bool(true)])),
        ]);
        let text = doc.to_string_compact();
        prop_assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    /// The eager DataFrame merge (the pandas analogue the script
    /// paradigm uses) agrees with the pipelined workflow hash join on
    /// arbitrary inputs — the paper's two `merge` implementations really
    /// compute the same relation.
    #[test]
    fn dataframe_merge_matches_workflow_join(
        build_keys in prop::collection::vec(0i64..12, 1..30),
        probe_keys in prop::collection::vec(0i64..12, 1..50),
    ) {
        let bs = Schema::of(&[("k", DataType::Int), ("tag", DataType::Int)]);
        let build = Batch::from_rows(
            bs,
            build_keys.iter().enumerate().map(|(i, k)| vec![Value::Int(*k), Value::Int(i as i64)]).collect(),
        ).unwrap();
        let ps = Schema::of(&[("id", DataType::Int), ("k", DataType::Int)]);
        let probe = Batch::from_rows(
            ps,
            probe_keys.iter().enumerate().map(|(i, k)| vec![Value::Int(i as i64), Value::Int(*k)]).collect(),
        ).unwrap();

        // Eager pandas-style merge.
        let df = DataFrame::new(probe.clone())
            .merge(&DataFrame::new(build.clone()), &["k"], &["k"], MergeHow::Inner)
            .unwrap();
        let mut eager: Vec<String> = df.batch().tuples().iter().map(|t| t.to_string()).collect();
        eager.sort_unstable();

        // Pipelined workflow join.
        let mut b = WorkflowBuilder::new();
        let bsrc = b.add(Arc::new(ScanOp::new("build", build)), 1);
        let psrc = b.add(Arc::new(ScanOp::new("probe", probe)), 2);
        let join = b.add(Arc::new(HashJoinOp::new("join", &["k"], &["k"])), 2);
        let sink_op = SinkOp::new("sink");
        let handle = sink_op.handle();
        let sink = b.add(Arc::new(sink_op), 1);
        b.connect(bsrc, join, 0, PartitionStrategy::Hash(vec!["k".into()]));
        b.connect(psrc, join, 1, PartitionStrategy::Hash(vec!["k".into()]));
        b.connect(join, sink, 0, PartitionStrategy::Single);
        let wf = b.build().unwrap();
        SimExecutor::new(EngineConfig::default()).run(&wf).unwrap();
        let mut piped: Vec<String> = handle.results().iter().map(|t| t.to_string()).collect();
        piped.sort_unstable();

        prop_assert_eq!(eager, piped);
    }

    /// DataFrame group_count matches a manual fold for arbitrary keys.
    #[test]
    fn dataframe_group_count_matches_fold(keys in prop::collection::vec(0i64..6, 0..60)) {
        let schema = Schema::of(&[("k", DataType::Int)]);
        let batch = Batch::from_rows(
            schema,
            keys.iter().map(|k| vec![Value::Int(*k)]).collect(),
        ).unwrap();
        let grouped = DataFrame::new(batch).group_count(&["k"]).unwrap();
        let mut expected: std::collections::HashMap<i64, i64> = Default::default();
        for k in &keys {
            *expected.entry(*k).or_insert(0) += 1;
        }
        prop_assert_eq!(grouped.len(), expected.len());
        for t in grouped.batch().tuples() {
            let k = t.get_int("k").unwrap();
            prop_assert_eq!(t.get_int("count").unwrap(), expected[&k]);
        }
    }

    /// Every partition strategy preserves the tuple multiset: RoundRobin,
    /// Hash, and Single scatter each tuple to exactly one worker (disjoint
    /// and exhaustive), while Broadcast is k-fold — every worker receives
    /// the full input.
    #[test]
    fn partition_strategies_preserve_multiset(
        ids in prop::collection::vec(0i64..50, 1..200),
        workers in 1usize..6,
        strat in 0usize..4,
    ) {
        let schema = Schema::of(&[("id", DataType::Int)]);
        let tuples: Vec<Tuple> = ids
            .iter()
            .map(|i| Tuple::new(schema.clone(), vec![Value::Int(*i)]).unwrap())
            .collect();
        let strategy = match strat {
            0 => PartitionStrategy::RoundRobin,
            1 => PartitionStrategy::Hash(vec!["id".into()]),
            2 => PartitionStrategy::Single,
            _ => PartitionStrategy::Broadcast,
        };

        if strategy == PartitionStrategy::Broadcast {
            // k-fold: every tuple reaches every worker.
            for (seq, t) in tuples.iter().enumerate() {
                let dests = strategy.route(t, seq as u64, workers).unwrap();
                prop_assert_eq!(dests, (0..workers).collect::<Vec<_>>());
            }
        } else {
            let compiled = strategy.compile(&schema).unwrap();
            let mut bufs: Vec<Vec<Tuple>> = vec![Vec::new(); workers];
            let mut seq = 0u64;
            compiled.scatter(tuples, &mut seq, &mut bufs).unwrap();
            prop_assert_eq!(seq, ids.len() as u64);
            // Disjoint + exhaustive: the scattered union is the input
            // multiset, nothing lost and nothing duplicated.
            let mut got: Vec<i64> = bufs
                .iter()
                .flatten()
                .map(|t| t.get_int("id").unwrap())
                .collect();
            got.sort_unstable();
            let mut want = ids.clone();
            want.sort_unstable();
            prop_assert_eq!(got, want);
            // Seq-independent strategies must agree with the declared
            // per-tuple route (RoundRobin depends on arrival order, which
            // the flattened view no longer has).
            if strategy != PartitionStrategy::RoundRobin {
                for (w, buf) in bufs.iter().enumerate() {
                    for t in buf {
                        prop_assert_eq!(strategy.route(t, 0, workers).unwrap(), vec![w]);
                    }
                }
            }
        }
    }

    /// The columnar batch representation is lossless: `from_rows` then
    /// `to_rows` is the identity for arbitrary int/float/str/bool rows
    /// with arbitrary null patterns, and the sealed per-column
    /// statistics agree with a direct fold over the same rows.
    #[test]
    fn columnar_from_rows_to_rows_is_identity(
        rows in prop::collection::vec(
            (
                prop::option::of(any::<i64>()),
                prop::option::of(-1.0e9f64..1.0e9),
                prop::option::of("[a-z]{0,8}"),
                prop::option::of(any::<bool>()),
            ),
            0..60,
        )
    ) {
        let schema = Schema::of(&[
            ("i", DataType::Int),
            ("x", DataType::Float),
            ("s", DataType::Str),
            ("b", DataType::Bool),
        ]);
        let values: Vec<Vec<Value>> = rows
            .iter()
            .map(|(i, x, s, b)| {
                vec![
                    i.map_or(Value::Null, Value::Int),
                    x.map_or(Value::Null, Value::Float),
                    s.clone().map_or(Value::Null, Value::Str),
                    b.map_or(Value::Null, Value::Bool),
                ]
            })
            .collect();
        let cb = ColumnarBatch::from_rows(schema.clone(), values.clone()).unwrap();
        prop_assert_eq!(cb.len(), values.len());
        prop_assert_eq!(cb.to_rows(), values.clone());

        // Sealed stats vs a direct fold: null counts per column, and
        // min/max over the non-null ints.
        let int_nulls = values.iter().filter(|r| r[0] == Value::Null).count() as u64;
        let ints: Vec<i64> = rows.iter().filter_map(|(i, ..)| *i).collect();
        let col = cb.stats().column(0);
        prop_assert_eq!(col.null_count, int_nulls);
        match (&col.min, &col.max) {
            (Some(Value::Int(lo)), Some(Value::Int(hi))) => {
                prop_assert_eq!(*lo, *ints.iter().min().unwrap());
                prop_assert_eq!(*hi, *ints.iter().max().unwrap());
            }
            (None, None) => prop_assert!(ints.is_empty()),
            other => prop_assert!(false, "inconsistent int stats: {:?}", other),
        }

        // And through the tuple path too.
        let tuples = cb.to_tuples();
        let back = ColumnarBatch::from_tuples(schema, &tuples);
        prop_assert_eq!(back.to_rows(), values);
    }

    /// The compressed block store is lossless and its manifest honest:
    /// seal → decode is the identity for arbitrary nullable rows split
    /// into arbitrary block sizes, and the sealed segment's merged
    /// min/max/null statistics agree with a direct fold over the same
    /// rows.
    #[test]
    fn blockstore_roundtrip_and_manifest_stats(
        rows in prop::collection::vec(
            (prop::option::of(-1000i64..1000), prop::option::of("[a-z]{0,6}")),
            1..80,
        ),
        chunk in 1usize..16,
    ) {
        let schema = Schema::of(&[("i", DataType::Int), ("s", DataType::Str)]);
        let values: Vec<Vec<Value>> = rows
            .iter()
            .map(|(i, s)| {
                vec![
                    i.map_or(Value::Null, Value::Int),
                    s.clone().map_or(Value::Null, Value::Str),
                ]
            })
            .collect();

        let mut app = BlockAppender::new();
        for chunk_rows in values.chunks(chunk) {
            let cb = ColumnarBatch::from_rows(schema.clone(), chunk_rows.to_vec()).unwrap();
            // Per-block roundtrip: encode → compress → decompress →
            // decode is the identity.
            let block = CompressedBlock::seal(&cb);
            prop_assert_eq!(block.decode().unwrap().to_rows(), chunk_rows.to_vec());
            app.append(&cb);
        }
        let seg = app.seal();

        // Whole-segment roundtrip preserves rows in append order.
        let mut decoded: Vec<Vec<Value>> = Vec::new();
        for b in seg.blocks() {
            decoded.extend(b.decode().unwrap().to_rows());
        }
        prop_assert_eq!(&decoded, &values);

        // Manifest totals vs direct folds.
        let m = seg.manifest();
        prop_assert_eq!(m.row_count, values.len() as u64);
        prop_assert_eq!(m.block_count, seg.blocks().len() as u64);
        prop_assert_eq!(
            m.compressed_bytes,
            seg.blocks().iter().map(|b| b.compressed_bytes() as u64).sum::<u64>()
        );

        // Merged column statistics vs a direct fold over the rows.
        let int_nulls = values.iter().filter(|r| r[0] == Value::Null).count() as u64;
        let ints: Vec<i64> = rows.iter().filter_map(|(i, _)| *i).collect();
        let col = m.column_stats(0).expect("non-empty segment has stats");
        prop_assert_eq!(col.null_count, int_nulls);
        match (&col.min, &col.max) {
            (Some(Value::Int(lo)), Some(Value::Int(hi))) => {
                prop_assert_eq!(*lo, *ints.iter().min().unwrap());
                prop_assert_eq!(*hi, *ints.iter().max().unwrap());
            }
            (None, None) => prop_assert!(ints.is_empty()),
            other => prop_assert!(false, "inconsistent int stats: {:?}", other),
        }
    }

    /// Schema join + tuple concat always produce conforming tuples.
    #[test]
    fn schema_join_soundness(a in 1usize..6, bcols in 1usize..6) {
        let left_fields: Vec<(String, DataType)> =
            (0..a).map(|i| (format!("l{i}"), DataType::Int)).collect();
        let right_fields: Vec<(String, DataType)> =
            (0..bcols).map(|i| (format!("c{i}"), DataType::Int)).collect();
        let lrefs: Vec<(&str, DataType)> = left_fields.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        let rrefs: Vec<(&str, DataType)> = right_fields.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        let ls = Schema::of(&lrefs);
        let rs = Schema::of(&rrefs);
        let joined = Arc::new(ls.join(&rs, "_r").unwrap());
        let lt = Tuple::new(ls.clone(), vec![Value::Int(1); a]).unwrap();
        let rt = Tuple::new(rs, vec![Value::Int(2); bcols]).unwrap();
        let cat = lt.concat(&rt, joined.clone()).unwrap();
        prop_assert_eq!(cat.values().len(), a + bcols);
        prop_assert_eq!(joined.arity(), a + bcols);
    }
}

// Pooled-executor equivalence runs real OS threads per case, so it gets a
// smaller case budget than the pure-data properties above.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The pool-scheduled live executor computes exactly what the
    /// simulator computes on randomized filter/join DAGs, across random
    /// parallelism, batch sizes, and mailbox capacities.
    #[test]
    fn pooled_live_matches_sim_on_random_dag(
        n in 1i64..300,
        dim_keys in 1i64..12,
        filter_mod in 2i64..7,
        workers in 1usize..4,
        batch in 1usize..64,
        capacity in 1usize..8,
        pool in 1usize..5,
    ) {
        let fact_schema = Schema::of(&[("id", DataType::Int), ("k", DataType::Int)]);
        let facts = Batch::from_rows(
            fact_schema,
            (0..n)
                .map(|i| vec![Value::Int(i), Value::Int(i % (2 * dim_keys))])
                .collect(),
        ).unwrap();
        let dim_schema = Schema::of(&[("k", DataType::Int), ("tag", DataType::Int)]);
        let dims = Batch::from_rows(
            dim_schema,
            (0..dim_keys).map(|k| vec![Value::Int(k), Value::Int(-k)]).collect(),
        ).unwrap();

        let build = || {
            let mut b = WorkflowBuilder::new();
            let fsrc = b.add(Arc::new(ScanOp::new("facts", facts.clone())), workers);
            let dsrc = b.add(Arc::new(ScanOp::new("dims", dims.clone())), 1);
            let m = filter_mod;
            let filt = b.add(
                Arc::new(FilterOp::new("filt", move |t| Ok(t.get_int("id")? % m != 0))),
                workers,
            );
            let join = b.add(Arc::new(HashJoinOp::new("join", &["k"], &["k"])), workers);
            let sink_op = SinkOp::new("sink");
            let handle = sink_op.handle();
            let sink = b.add(Arc::new(sink_op), 1);
            let by_k = PartitionStrategy::Hash(vec!["k".into()]);
            b.connect(fsrc, filt, 0, PartitionStrategy::RoundRobin);
            b.connect(dsrc, join, 0, by_k.clone());
            b.connect(filt, join, 1, by_k);
            b.connect(join, sink, 0, PartitionStrategy::Single);
            (b.build().unwrap(), handle)
        };
        let sorted = |handle: &scriptflow::workflow::ops::SinkHandle| {
            let mut rows: Vec<String> =
                handle.results().iter().map(|t| t.to_string()).collect();
            rows.sort_unstable();
            rows
        };

        let (wf_sim, h_sim) = build();
        SimExecutor::new(EngineConfig::default()).run(&wf_sim).unwrap();

        let (wf_live, h_live) = build();
        LiveExecutor::new(batch)
            .with_pool_size(pool)
            .with_channel_capacity(capacity)
            .run(&wf_live)
            .unwrap();

        prop_assert_eq!(sorted(&h_sim), sorted(&h_live));
    }

    /// Columnar batches are a pure layout change: on random filter/join
    /// DAGs over random data — including a zone-map-eligible range
    /// filter — the live executor produces identical rows with columnar
    /// sealing on and off, for any batch size and parallelism.
    #[test]
    fn live_columnar_matches_row_on_random_dag(
        n in 1i64..300,
        dim_keys in 1i64..12,
        threshold in 0i64..300,
        workers in 1usize..4,
        batch in 1usize..64,
        pool in 1usize..5,
    ) {
        let fact_schema = Schema::of(&[("id", DataType::Int), ("k", DataType::Int)]);
        let facts = Batch::from_rows(
            fact_schema,
            (0..n)
                .map(|i| vec![Value::Int(i), Value::Int(i % (2 * dim_keys))])
                .collect(),
        ).unwrap();
        let dim_schema = Schema::of(&[("k", DataType::Int), ("tag", DataType::Int)]);
        let dims = Batch::from_rows(
            dim_schema,
            (0..dim_keys).map(|k| vec![Value::Int(k), Value::Int(-k)]).collect(),
        ).unwrap();

        let build = || {
            let mut b = WorkflowBuilder::new();
            let fsrc = b.add(Arc::new(ScanOp::new("facts", facts.clone())), workers);
            let dsrc = b.add(Arc::new(ScanOp::new("dims", dims.clone())), 1);
            let filt = b.add(
                Arc::new(FilterOp::cmp("filt", "id", CmpOp::Lt, Value::Int(threshold))),
                workers,
            );
            let join = b.add(Arc::new(HashJoinOp::new("join", &["k"], &["k"])), workers);
            let sink_op = SinkOp::new("sink");
            let handle = sink_op.handle();
            let sink = b.add(Arc::new(sink_op), 1);
            let by_k = PartitionStrategy::Hash(vec!["k".into()]);
            b.connect(fsrc, filt, 0, PartitionStrategy::RoundRobin);
            b.connect(dsrc, join, 0, by_k.clone());
            b.connect(filt, join, 1, by_k);
            b.connect(join, sink, 0, PartitionStrategy::Single);
            (b.build().unwrap(), handle)
        };
        let run_mode = |columnar: bool| {
            let (wf, handle) = build();
            LiveExecutor::new(batch)
                .with_pool_size(pool)
                .with_columnar(columnar)
                .run(&wf)
                .unwrap();
            let mut rows: Vec<String> =
                handle.results().iter().map(|t| t.to_string()).collect();
            rows.sort_unstable();
            rows
        };
        prop_assert_eq!(run_mode(false), run_mode(true));
    }

    /// Chaos: any seeded fault plan against any random chain terminates
    /// (the drain path and stall detector always converge), keeps the
    /// final trace monotone (downstream input never exceeds upstream
    /// output), and leaves every operator in a terminal state.
    #[test]
    fn seeded_fault_plans_always_drain(seed in any::<u64>(), pool in 1usize..4) {
        use scriptflow::workflow::fault::{random_chain, FaultPlan};
        let (wf, _handle, names) = random_chain(seed);
        let plan = FaultPlan::random(seed, &names);
        let (trace, _result) = LiveExecutor::new(8)
            .with_pool_size(pool)
            .with_faults(plan)
            .run_observed(&wf);
        let (_, last) = trace.samples.last().expect("faulted runs keep a trace");
        for w in last.windows(2) {
            prop_assert!(
                w[1].input_tuples <= w[0].output_tuples,
                "{} read {} but {} wrote {}",
                w[1].name, w[1].input_tuples, w[0].name, w[0].output_tuples
            );
        }
        prop_assert!(last.iter().all(|s| s.state.is_terminal()));
    }

    /// Retry safety net over the same seeded chains: any retryable fault
    /// (panic, kill, poisoned mailbox) under a sufficient budget yields
    /// sorted rows identical to the fault-free run — the replayed
    /// quantum delivers every tuple exactly once — and every operator
    /// ends `Completed`.
    #[test]
    fn retryable_faults_with_budget_preserve_rows(seed in any::<u64>(), kind in 0usize..3) {
        use scriptflow::workflow::fault::{random_chain, FaultPlan};
        use scriptflow::workflow::{OperatorState, RetryConfig, RetryPolicy};
        let (wf, handle, _names) = random_chain(seed);
        let (_trace, clean) = LiveExecutor::new(8).with_pool_size(1).run_observed(&wf);
        prop_assert!(clean.is_ok());
        let mut want: Vec<String> =
            handle.results().iter().map(|t| t.to_string()).collect();
        want.sort_unstable();

        let plan = match kind {
            0 => FaultPlan::new(seed).panic_at("f0", 1 + seed % 50),
            1 => FaultPlan::new(seed).kill_worker("f0", 1 + seed % 50),
            _ => FaultPlan::new(seed).poison_mailbox("sink", 1 + seed % 3),
        };
        let (wf, handle, _names) = random_chain(seed);
        let (trace, result) = LiveExecutor::new(8)
            .with_pool_size(1)
            .with_faults(plan)
            .with_retry(RetryConfig::uniform(RetryPolicy::default()))
            .run_observed(&wf);
        prop_assert!(
            result.is_ok(),
            "the default budget absorbs the fault: {:?}",
            result.err()
        );
        let mut got: Vec<String> =
            handle.results().iter().map(|t| t.to_string()).collect();
        got.sort_unstable();
        prop_assert_eq!(got, want);
        let (_, last) = trace.samples.last().expect("retried runs keep a trace");
        prop_assert!(last.iter().all(|s| s.state == OperatorState::Completed));
    }
}
