//! Chaos suite for the multi-tenant [`scriptflow::workflow::service`]:
//! a seeded fault + retry storm inside one tenant's run must never
//! stall or corrupt a concurrently running neighbor on the shared
//! pool, admission rejections must be explicit (never silent drops),
//! the PR 4 "sink cleared per run" invariant must hold across
//! concurrent submissions, and — with a single pool thread — the same
//! seed must reproduce the identical failure fingerprint through the
//! service path that it produces through the solo executor path.
//!
//! CI (`scripts/ci.sh`) runs this suite twice, mirroring
//! `chaos_faults.rs`: `CHAOS_RETRIES=0` exercises the storm with
//! retries disabled, `CHAOS_RETRIES=1` arms a retry budget on the
//! noisy tenant so every replayed quantum parks on the service timer
//! instead of sleeping a shared worker.

use std::sync::Arc;
use std::time::Duration;

use scriptflow::datakit::{Batch, DataType, Schema, Value};
use scriptflow::workflow::fault::{random_chain, FaultPlan};
use scriptflow::workflow::ops::{FilterOp, ScanOp, SinkHandle, SinkOp};
use scriptflow::workflow::service::{
    RunOptions, ServiceConfig, SubmitError, TenantQuota, WorkflowService,
};
use scriptflow::workflow::{
    render_timeline, Backoff, LiveExecutor, OperatorState, PartitionStrategy, ProgressTrace,
    RetryConfig, RetryPolicy, Workflow, WorkflowBuilder,
};

/// `(name, state, input, output)` per operator in the final snapshot.
fn final_states(trace: &ProgressTrace) -> Vec<(String, OperatorState, u64, u64)> {
    let (_, last) = trace
        .samples
        .last()
        .expect("a faulted run still produces a trace");
    last.iter()
        .map(|s| (s.name.clone(), s.state, s.input_tuples, s.output_tuples))
        .collect()
}

/// Reproducible residue of a seeded single-thread run: final operator
/// states and counts, the error, and the rendered timeline minus its
/// wall-clock footer (the `(time)` line carries real seconds).
fn fingerprint(trace: &ProgressTrace, err: &str) -> String {
    let timeline: String = render_timeline(trace)
        .lines()
        .filter(|l| !l.starts_with("(time)"))
        .collect::<Vec<_>>()
        .join("\n");
    format!("{:?} | {} | {}", final_states(trace), err, timeline)
}

/// Live threads in this process (one `/proc/self/task` entry per task).
#[cfg(target_os = "linux")]
fn live_threads() -> usize {
    std::fs::read_dir("/proc/self/task")
        .expect("procfs is available on the test platform")
        .count()
}

/// Assert the process thread count returns to at most `baseline`,
/// polling briefly: service workers are joined when the
/// [`WorkflowService`] drops, but the OS may report the task entry a
/// beat longer.
#[cfg(target_os = "linux")]
fn assert_threads_drained(baseline: usize, context: &str) {
    use std::time::Instant;
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let now = live_threads();
        if now <= baseline {
            return;
        }
        if Instant::now() > deadline {
            panic!("{context}: {now} threads alive, baseline {baseline}");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Portable fallback: reaching the call at all proves the service's
/// `Drop` joined its workers — the count is meaningless off-Linux.
#[cfg(not(target_os = "linux"))]
fn live_threads() -> usize {
    0
}

#[cfg(not(target_os = "linux"))]
fn assert_threads_drained(_baseline: usize, _context: &str) {}

/// Sink rows as a sorted multiset of debug renderings — the
/// order-independent exactly-once comparison the isolation tests use.
fn sorted_rows(h: &SinkHandle) -> Vec<String> {
    let mut rows: Vec<String> = h.results().iter().map(|t| format!("{t:?}")).collect();
    rows.sort();
    rows
}

fn int_batch(rows: i64) -> Batch {
    let schema = Schema::of(&[("id", DataType::Int)]);
    Batch::from_rows(schema, (0..rows).map(|i| vec![Value::Int(i)]).collect()).unwrap()
}

/// scan → filter(even) → sink: the quiet tenant's well-behaved DAG.
fn quiet_chain(rows: i64, parallelism: usize) -> (Workflow, SinkHandle) {
    let mut b = WorkflowBuilder::new();
    let scan = b.add(Arc::new(ScanOp::new("scan", int_batch(rows))), 1);
    let filter = b.add(
        Arc::new(FilterOp::new("filter", |t| Ok(t.get_int("id")? % 2 == 0))),
        parallelism,
    );
    let sink_op = Arc::new(SinkOp::new("sink"));
    let handle = sink_op.handle();
    let sink = b.add(sink_op, 1);
    b.connect(scan, filter, 0, PartitionStrategy::RoundRobin);
    b.connect(filter, sink, 0, PartitionStrategy::Single);
    (b.build().unwrap(), handle)
}

/// True when `scripts/ci.sh` is running the retry-armed leg.
fn retries_armed() -> bool {
    std::env::var("CHAOS_RETRIES").is_ok_and(|v| v == "1")
}

/// A retry budget whose backoff is short enough for a test but long
/// enough that a sleeping replay would visibly wedge a 1–2 thread
/// pool if it slept in a worker instead of parking on the timer.
fn storm_retry() -> RetryConfig {
    RetryConfig::uniform(RetryPolicy::attempts(3).with_backoff(Backoff {
        base: Duration::from_millis(2),
        factor: 2,
        cap: Duration::from_millis(8),
    }))
}

/// The acceptance gate: across 32 seeds, a noisy tenant running a
/// seeded random fault plan (plus, on the armed leg, a retry storm)
/// shares a 2-thread pool with a quiet tenant — and the quiet tenant's
/// rows must be byte-identical to its solo-executor anchor every time.
#[test]
fn noisy_tenant_never_stalls_or_corrupts_quiet_neighbor_32_seeds() {
    let baseline = live_threads();
    let armed = retries_armed();

    // One solo anchor: the quiet DAG is the same for every seed.
    let (quiet_wf, quiet_sink) = quiet_chain(2_000, 2);
    let _ = LiveExecutor::new(64).with_pool_size(2).run(&quiet_wf);
    let solo = sorted_rows(&quiet_sink);
    assert_eq!(solo.len(), 1_000);

    for seed in 0..32u64 {
        quiet_sink.clear();
        let (noisy_wf, _noisy_sink, ops) = random_chain(seed);
        let plan = FaultPlan::random(seed, &ops);
        let mut noisy_opts = RunOptions::default().with_faults(plan);
        if armed {
            noisy_opts = noisy_opts.with_retry(storm_retry());
        }

        let svc = WorkflowService::new(
            ServiceConfig::default()
                .with_pool_size(2)
                .with_max_active_runs(4),
        );
        let noisy = svc.submit("noisy", &noisy_wf, noisy_opts).unwrap();
        let quiet = svc
            .submit("quiet", &quiet_wf, RunOptions::default())
            .unwrap();

        let quiet_report = quiet.wait();
        assert!(
            quiet_report.result.is_ok(),
            "seed {seed}: quiet neighbor failed: {:?}",
            quiet_report.result.err()
        );
        assert_eq!(
            sorted_rows(&quiet_sink),
            solo,
            "seed {seed}: quiet rows corrupted by the noisy tenant"
        );

        // The noisy run must also terminate — fail or succeed, never
        // wedge — or `wait` (and the service `Drop`) would hang.
        let noisy_report = noisy.wait();
        let trace = &noisy_report.trace;
        assert!(
            !trace.samples.is_empty(),
            "seed {seed}: noisy run lost its trace"
        );
        if noisy_report.result.is_err() {
            let st = final_states(trace);
            assert!(
                st.iter().any(|(_, s, _, _)| *s == OperatorState::Failed),
                "seed {seed}: failed noisy run pinned no operator: {st:?}"
            );
        }
        drop(svc);
    }
    assert_threads_drained(baseline, "32-seed isolation sweep");
}

/// Same-seed determinism through the service path: on a 1-thread pool
/// the identical kill reproduces the identical failure fingerprint,
/// and that fingerprint matches the solo executor's for the same DAG.
#[test]
fn same_seed_reproduces_identical_fingerprint_through_service() {
    let baseline = live_threads();
    let mut prints = Vec::new();
    for _ in 0..6 {
        let (wf, _h, _names) = random_chain(5);
        let plan = FaultPlan::new(5).kill_worker("f0", 10);
        let svc = WorkflowService::new(ServiceConfig::default().with_pool_size(1));
        let report = svc
            .submit("t", &wf, RunOptions::default().with_faults(plan))
            .unwrap()
            .wait();
        let err = report
            .result
            .expect_err("the kill fails the run")
            .to_string();
        prints.push(fingerprint(&report.trace, &err));
    }
    // Solo-executor anchor for the same seed and pool width.
    {
        let (wf, _h, _names) = random_chain(5);
        let plan = FaultPlan::new(5).kill_worker("f0", 10);
        let (trace, result) = LiveExecutor::new(8)
            .with_pool_size(1)
            .with_faults(plan)
            .run_observed(&wf);
        let err = result.expect_err("the kill fails the run").to_string();
        prints.push(fingerprint(&trace, &err));
    }
    for (i, w) in prints.windows(2).enumerate() {
        assert_eq!(
            w[0],
            w[1],
            "service runs {i} and {} diverged under the same seed",
            i + 1
        );
    }
    assert_threads_drained(baseline, "service same-seed determinism");
}

/// Regression for the PR 4 invariant under concurrency: two live runs
/// may not share one sink buffer (explicit [`SubmitError::SinkBusy`]),
/// and re-dispatching a workflow clears its sink rather than appending
/// — rows stay byte-identical run over run, never doubled.
#[test]
fn sink_state_cannot_leak_across_concurrent_runs() {
    let baseline = live_threads();
    let (wf, handle) = quiet_chain(20_000, 2);
    let svc = WorkflowService::new(
        ServiceConfig::default()
            .with_pool_size(1)
            .with_max_active_runs(4),
    );
    // A benign slow edge keeps the first run deterministically in
    // flight while the clashing submission is attempted.
    let slow = RunOptions::default().with_faults(FaultPlan::new(0).slow_edge("filter", 2_000));
    let first = svc.submit("t", &wf, slow).unwrap();
    match svc.submit("t", &wf, RunOptions::default()) {
        Err(SubmitError::SinkBusy { operator }) => assert_eq!(operator, "sink"),
        other => panic!("expected SinkBusy, got {other:?}"),
    }
    assert!(first.wait().result.is_ok());
    let first_rows = sorted_rows(&handle);
    assert_eq!(first_rows.len(), 10_000);

    // Sequential resubmission is allowed — and must reset, not append.
    let again = svc.submit("t", &wf, RunOptions::default()).unwrap();
    assert!(again.wait().result.is_ok());
    assert_eq!(
        sorted_rows(&handle),
        first_rows,
        "sink appended across runs"
    );
    drop(svc);
    assert_threads_drained(baseline, "sink leak regression");
}

/// Overload is an explicit, attributable rejection: a full admission
/// queue answers [`SubmitError::QueueFull`] and a tenant at its
/// in-flight quota answers [`SubmitError::TenantOverQuota`]; both are
/// charged to the tenant's `rejected` counter.
#[test]
fn overload_rejections_are_explicit_and_attributed() {
    let baseline = live_threads();
    let slow = || RunOptions::default().with_faults(FaultPlan::new(0).slow_edge("filter", 2_000));

    let svc = WorkflowService::new(
        ServiceConfig::default()
            .with_pool_size(1)
            .with_max_active_runs(1)
            .with_queue_capacity(1)
            .with_default_quota(TenantQuota::default().with_max_in_flight(2)),
    );
    let (wf0, _h0) = quiet_chain(20_000, 2);
    let a = svc.submit("big", &wf0, slow()).unwrap();
    let (wf1, _h1) = quiet_chain(10, 1);
    let b = svc.submit("small", &wf1, RunOptions::default()).unwrap();
    let (wf2, _h2) = quiet_chain(10, 1);
    match svc.submit("small", &wf2, RunOptions::default()) {
        Err(SubmitError::QueueFull { capacity: 1 }) => {}
        other => panic!("expected QueueFull, got {other:?}"),
    }
    assert!(a.wait().result.is_ok());
    assert!(b.wait().result.is_ok());
    assert_eq!(svc.tenant_stats("small").unwrap().rejected, 1);
    drop(svc);

    let svc = WorkflowService::new(
        ServiceConfig::default()
            .with_pool_size(1)
            .with_max_active_runs(1)
            .with_queue_capacity(16)
            .with_default_quota(TenantQuota::default().with_max_in_flight(2)),
    );
    let (wf_a, _ha) = quiet_chain(20_000, 2);
    let (wf_b, _hb) = quiet_chain(20_000, 2);
    let (wf_c, _hc) = quiet_chain(10, 1);
    let r1 = svc.submit("q", &wf_a, slow()).unwrap();
    let r2 = svc.submit("q", &wf_b, slow()).unwrap();
    match svc.submit("q", &wf_c, RunOptions::default()) {
        Err(SubmitError::TenantOverQuota { tenant, in_flight }) => {
            assert_eq!(tenant, "q");
            assert_eq!(in_flight, 2);
        }
        other => panic!("expected TenantOverQuota, got {other:?}"),
    }
    assert!(r1.wait().result.is_ok());
    assert!(r2.wait().result.is_ok());
    assert_eq!(svc.tenant_stats("q").unwrap().rejected, 1);
    drop(svc);
    assert_threads_drained(baseline, "explicit rejection");
}

/// A hash join whose build side overflows any tiny memory budget — the
/// noisy spiller's workload.
fn spill_join_chain() -> (Workflow, SinkHandle) {
    use scriptflow::workflow::ops::HashJoinOp;
    let bsch = Schema::of(&[("k", DataType::Int), ("tag", DataType::Str)]);
    let build = Batch::from_rows(
        bsch,
        (0..400i64)
            .map(|i| vec![Value::Int(i % 23), Value::Str(format!("b{i}"))])
            .collect(),
    )
    .unwrap();
    let psch = Schema::of(&[("k", DataType::Int), ("p", DataType::Str)]);
    let probe = Batch::from_rows(
        psch,
        (0..300i64)
            .map(|i| vec![Value::Int(i % 29), Value::Str(format!("p{i}"))])
            .collect(),
    )
    .unwrap();
    let mut b = WorkflowBuilder::new();
    let bs = b.add(Arc::new(ScanOp::new("build", build)), 1);
    let ps = b.add(Arc::new(ScanOp::new("probe", probe)), 1);
    let join = b.add(Arc::new(HashJoinOp::new("join", &["k"], &["k"])), 2);
    let sink_op = SinkOp::new("sink");
    let handle = sink_op.handle();
    let sink = b.add(Arc::new(sink_op), 1);
    let by_k = PartitionStrategy::Hash(vec!["k".into()]);
    b.connect(bs, join, 0, by_k.clone());
    b.connect(ps, join, 1, by_k);
    b.connect(join, sink, 0, PartitionStrategy::Single);
    (b.build().unwrap(), handle)
}

/// Disk is a shared resource too: a tenant whose budgeted runs keep
/// spilling to the block store burns through its cumulative spill-bytes
/// quota and gets an explicit, attributable
/// [`SubmitError::SpillOverQuota`] on the next submission — while a
/// quiet neighbor under the same default quota (who never spills) stays
/// admitted and computes exactly its solo rows.
#[test]
fn noisy_spiller_is_rejected_while_neighbor_stays_admitted() {
    let baseline = live_threads();
    let svc = WorkflowService::new(
        ServiceConfig::default()
            .with_pool_size(2)
            .with_max_active_runs(2)
            // Any spill at all exhausts the quota: the second spilling
            // submission must be turned away.
            .with_default_quota(TenantQuota::default().with_spill_budget(1)),
    );

    // The spiller's first run is admitted (no spill history yet) and
    // completes correctly despite the tiny memory budget.
    let (spill_wf, spill_sink) = spill_join_chain();
    let first = svc
        .submit(
            "spiller",
            &spill_wf,
            RunOptions::default().with_memory_budget(Some(512)),
        )
        .expect("first spilling run is admitted");
    assert!(first.wait().result.is_ok());
    let spilled = svc.tenant_stats("spiller").unwrap().spilled_bytes;
    assert!(spilled > 0, "the budgeted join must have spilled");
    let first_rows = sorted_rows(&spill_sink);
    assert!(!first_rows.is_empty());

    // Its next submission is over the cumulative spill quota: explicit
    // typed rejection, charged to the tenant.
    match svc.submit(
        "spiller",
        &spill_wf,
        RunOptions::default().with_memory_budget(Some(512)),
    ) {
        Err(SubmitError::SpillOverQuota {
            tenant,
            spilled_bytes,
            budget,
        }) => {
            assert_eq!(tenant, "spiller");
            assert_eq!(spilled_bytes, spilled);
            assert_eq!(budget, 1);
        }
        other => panic!("expected SpillOverQuota, got {other:?}"),
    }
    assert_eq!(svc.tenant_stats("spiller").unwrap().rejected, 1);

    // The neighbor shares the default quota but never spills — still
    // admitted, still correct.
    let (quiet_wf, quiet_sink) = quiet_chain(2_000, 2);
    let quiet = svc
        .submit("quiet", &quiet_wf, RunOptions::default())
        .expect("non-spilling neighbor stays admitted");
    assert!(quiet.wait().result.is_ok());
    assert_eq!(sorted_rows(&quiet_sink).len(), 1_000);
    assert_eq!(svc.tenant_stats("quiet").unwrap().spilled_bytes, 0);

    drop(svc);
    assert_threads_drained(baseline, "noisy spiller quota");
}

/// A retry storm on the armed leg parks on the service timer — the
/// replay still recovers every row exactly once, and the per-run stats
/// account the attempts, all while a neighbor drains undisturbed.
#[test]
fn retry_storm_recovers_exactly_once_while_neighbor_drains() {
    if !retries_armed() {
        // Disabled leg: a storm without a budget fails the noisy run
        // but still may not disturb the neighbor — covered by the
        // 32-seed sweep above. This test is the armed-leg complement.
        return;
    }
    let baseline = live_threads();
    let (noisy_wf, noisy_sink) = quiet_chain(2_000, 2);
    let plan = FaultPlan::new(5).panic_at("filter", 100);
    let (quiet_wf, quiet_sink) = quiet_chain(2_000, 2);
    let _ = LiveExecutor::new(64).with_pool_size(2).run(&quiet_wf);
    let solo = sorted_rows(&quiet_sink);
    quiet_sink.clear();

    let svc = WorkflowService::new(
        ServiceConfig::default()
            .with_pool_size(2)
            .with_max_active_runs(4),
    );
    let noisy = svc
        .submit(
            "noisy",
            &noisy_wf,
            RunOptions::default()
                .with_faults(plan)
                .with_retry(storm_retry()),
        )
        .unwrap();
    let quiet = svc
        .submit("quiet", &quiet_wf, RunOptions::default())
        .unwrap();

    assert!(quiet.wait().result.is_ok());
    assert_eq!(sorted_rows(&quiet_sink), solo);

    let report = noisy.wait();
    let res = report.result.expect("the budget salvages the storm");
    let stats = res.pool.expect("pooled stats");
    assert!(stats.retries_attempted >= 1);
    assert_eq!(stats.retries_succeeded, 1);
    assert_eq!(noisy_sink.len(), 1_000, "replay lost or duplicated rows");
    drop(svc);
    assert_threads_drained(baseline, "armed retry storm");
}
