//! Cross-feature integration: JSON workflow specs executed on both
//! executors, compared against the eager DataFrame pipeline computing
//! the same query.

use scriptflow::datakit::{Batch, DataFrame, DataType, MergeHow, Schema, Value};
use scriptflow::workflow::{spec, EngineConfig, LiveExecutor, SimExecutor};

/// One query, three engines: a declarative spec run (a) simulated and
/// (b) on real threads, versus (c) the pandas-style DataFrame — the
/// script paradigm's eager evaluation. All three must agree.
#[test]
fn spec_sim_live_and_dataframe_agree() {
    // Candidates join labels, keep big ones, count per label.
    let spec_text = r#"{
        "operators": [
            {"id": "facts", "type": "InlineScan", "workers": 2,
             "schema": [["k", "Int"], ["x", "Float"]],
             "rows": [[1, 5.0], [2, 0.5], [1, 7.0], [3, 9.0], [2, 8.0],
                      [1, 0.1], [3, 4.0], [2, 6.0]]},
            {"id": "dims", "type": "InlineScan",
             "schema": [["k", "Int"], ["label", "Str"]],
             "rows": [[1, "a"], [2, "b"], [3, "c"]]},
            {"id": "big", "type": "Filter",
             "predicate": {"column": "x", "op": ">", "value": 1.0}},
            {"id": "join", "type": "HashJoin", "probe": ["k"], "build": ["k"]},
            {"id": "agg", "type": "Aggregate", "group_by": ["label"],
             "aggregations": ["count as n", "sum(x)"]},
            {"id": "out", "type": "Sink"}
        ],
        "links": [
            {"from": "facts", "to": "big", "port": 0, "partition": "round-robin"},
            {"from": "dims", "to": "join", "port": 0, "partition": "hash", "keys": ["k"]},
            {"from": "big", "to": "join", "port": 1, "partition": "hash", "keys": ["k"]},
            {"from": "join", "to": "agg", "port": 0, "partition": "hash", "keys": ["label"]},
            {"from": "agg", "to": "out", "port": 0, "partition": "single"}
        ]
    }"#;

    let collect = |rows: Vec<(String, i64, f64)>| {
        let mut rows = rows;
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    };

    // (a) simulated.
    let sim_spec = spec::parse(spec_text).expect("valid spec");
    SimExecutor::new(EngineConfig::default())
        .run(&sim_spec.workflow)
        .expect("sim run");
    let sim_rows = collect(
        sim_spec.sinks["out"]
            .results()
            .iter()
            .map(|t| {
                (
                    t.get_str("label").unwrap().to_owned(),
                    t.get_int("n").unwrap(),
                    t.get_float("sum_x").unwrap(),
                )
            })
            .collect(),
    );

    // (b) live threads (fresh spec: sinks are per-instance).
    let live_spec = spec::parse(spec_text).expect("valid spec");
    LiveExecutor::new(4).run(&live_spec.workflow).expect("live run");
    let live_rows = collect(
        live_spec.sinks["out"]
            .results()
            .iter()
            .map(|t| {
                (
                    t.get_str("label").unwrap().to_owned(),
                    t.get_int("n").unwrap(),
                    t.get_float("sum_x").unwrap(),
                )
            })
            .collect(),
    );

    // (c) eager DataFrame (the script paradigm's pandas style).
    let facts = DataFrame::new(
        Batch::from_rows(
            Schema::of(&[("k", DataType::Int), ("x", DataType::Float)]),
            vec![
                vec![Value::Int(1), Value::Float(5.0)],
                vec![Value::Int(2), Value::Float(0.5)],
                vec![Value::Int(1), Value::Float(7.0)],
                vec![Value::Int(3), Value::Float(9.0)],
                vec![Value::Int(2), Value::Float(8.0)],
                vec![Value::Int(1), Value::Float(0.1)],
                vec![Value::Int(3), Value::Float(4.0)],
                vec![Value::Int(2), Value::Float(6.0)],
            ],
        )
        .unwrap(),
    );
    let dims = DataFrame::new(
        Batch::from_rows(
            Schema::of(&[("k", DataType::Int), ("label", DataType::Str)]),
            vec![
                vec![Value::Int(1), Value::Str("a".into())],
                vec![Value::Int(2), Value::Str("b".into())],
                vec![Value::Int(3), Value::Str("c".into())],
            ],
        )
        .unwrap(),
    );
    let joined = facts
        .filter(|t| Ok(t.get_float("x")? > 1.0))
        .unwrap()
        .merge(&dims, &["k"], &["k"], MergeHow::Inner)
        .unwrap();
    // Group sums via group_count for n, manual fold for sum.
    let mut df_rows: Vec<(String, i64, f64)> = Vec::new();
    for label in ["a", "b", "c"] {
        let group = joined
            .filter(|t| Ok(t.get_str("label")? == label))
            .unwrap();
        if group.is_empty() {
            continue;
        }
        let n = group.len() as i64;
        let sum: f64 = group
            .batch()
            .tuples()
            .iter()
            .map(|t| t.get_float("x").unwrap())
            .sum();
        df_rows.push((label.to_owned(), n, sum));
    }
    let df_rows = collect(df_rows);

    assert_eq!(sim_rows, live_rows, "sim vs live");
    assert_eq!(sim_rows.len(), df_rows.len());
    for (s, d) in sim_rows.iter().zip(&df_rows) {
        assert_eq!((s.0.as_str(), s.1), (d.0.as_str(), d.1));
        assert!((s.2 - d.2).abs() < 1e-9, "{s:?} vs {d:?}");
    }
}

/// Specs with UDF-free palettes still exercise pause/trace features.
#[test]
fn spec_run_with_trace_and_pause() {
    let text = r#"{
        "operators": [
            {"id": "src", "type": "InlineScan",
             "schema": [["v", "Int"]],
             "rows": [[1], [2], [3], [4], [5], [6], [7], [8]]},
            {"id": "keep", "type": "Filter",
             "predicate": {"column": "v", "op": "!=", "value": 4}},
            {"id": "out", "type": "Sink"}
        ],
        "links": [
            {"from": "src", "to": "keep", "port": 0},
            {"from": "keep", "to": "out", "port": 0, "partition": "single"}
        ]
    }"#;
    let spec = spec::parse(text).unwrap();
    let res = SimExecutor::new(EngineConfig::default())
        .with_trace(scriptflow::simcluster::SimDuration::from_millis(50))
        .with_worker_timeline()
        .run(&spec.workflow)
        .unwrap();
    assert_eq!(spec.sinks["out"].len(), 7);
    assert!(!res.trace.is_empty());
    assert!(res.trace.completion_sample().is_some());
    assert!(!res.worker_timeline.is_empty());
}
