//! Chaos suite for the bounded-memory spill path: seeded faults landing
//! while a grace hash join is mid-spill — build partitions sealed to the
//! compressed block store, probe streaming them back — must behave
//! exactly like faults on the in-memory path. Without a retry budget
//! the run fails and drains cleanly; with one, the replayed quanta
//! re-deliver every tuple exactly once, because the spilled partitions
//! live in operator-instance state that survives the replay.
//!
//! CI (`scripts/ci.sh`) runs this suite under both `CHAOS_RETRIES`
//! legs: the seed-sweep tests arm their own budgets and so run
//! identically in both, while [`spill_chaos_retries_env_matrix`] checks
//! the leg-specific behaviour.

use std::sync::Arc;

use scriptflow::datakit::{Batch, DataType, Schema, Value};
use scriptflow::workflow::ops::{HashJoinOp, ScanOp, SinkHandle, SinkOp};
use scriptflow::workflow::{
    FaultPlan, LiveExecutor, OperatorState, PartitionStrategy, ProgressTrace, RetryConfig,
    RetryPolicy, Workflow, WorkflowBuilder,
};

/// Build-side rows: at ~40+ bytes a tuple, hundreds of rows dwarf
/// [`BUDGET`], so every seed's run spills.
const BUILD_ROWS: i64 = 400;
const PROBE_ROWS: i64 = 300;
/// Per-operator memory budget in bytes — far below the build footprint.
const BUDGET: usize = 512;

/// A hash join whose build side must spill under [`BUDGET`]. The seed
/// perturbs the key distribution so the 32-seed sweep exercises
/// different partition mixes and flush boundaries.
fn spill_join(seed: u64) -> (Workflow, SinkHandle) {
    let shift = (seed % 7) as i64;
    let bsch = Schema::of(&[("k", DataType::Int), ("tag", DataType::Str)]);
    let build = Batch::from_rows(
        bsch,
        (0..BUILD_ROWS)
            .map(|i| vec![Value::Int((i + shift) % 23), Value::Str(format!("b{i}"))])
            .collect(),
    )
    .expect("build rows conform");
    let psch = Schema::of(&[("k", DataType::Int), ("p", DataType::Str)]);
    let probe = Batch::from_rows(
        psch,
        (0..PROBE_ROWS)
            .map(|i| vec![Value::Int((i + shift) % 29), Value::Str(format!("p{i}"))])
            .collect(),
    )
    .expect("probe rows conform");
    let mut b = WorkflowBuilder::new();
    let bs = b.add(Arc::new(ScanOp::new("build", build)), 1);
    let ps = b.add(Arc::new(ScanOp::new("probe", probe)), 1);
    let join = b.add(Arc::new(HashJoinOp::new("join", &["k"], &["k"])), 2);
    let sink_op = SinkOp::new("sink");
    let handle = sink_op.handle();
    let sink = b.add(Arc::new(sink_op), 1);
    let by_k = PartitionStrategy::Hash(vec!["k".into()]);
    b.connect(bs, join, 0, by_k.clone());
    b.connect(ps, join, 1, by_k);
    b.connect(join, sink, 0, PartitionStrategy::Single);
    (b.build().expect("spill join is a valid DAG"), handle)
}

fn sorted_rows(h: &SinkHandle) -> Vec<String> {
    let mut rows: Vec<String> = h.results().iter().map(|t| format!("{t:?}")).collect();
    rows.sort();
    rows
}

fn final_states(trace: &ProgressTrace) -> Vec<(String, OperatorState)> {
    let (_, last) = trace
        .samples
        .last()
        .expect("a faulted run still produces a trace");
    last.iter().map(|s| (s.name.clone(), s.state)).collect()
}

/// Fault-free budgeted reference: proves the workload really spills and
/// returns the exactly-once row multiset.
fn clean_spilling_rows(seed: u64) -> Vec<String> {
    let (wf, h) = spill_join(seed);
    let (_trace, res) = LiveExecutor::new(16)
        .with_pool_size(1)
        .with_memory_budget(Some(BUDGET))
        .run_observed(&wf);
    let run = res.expect("fault-free budgeted run succeeds");
    let stats = run.pool.expect("pooled mode reports stats");
    assert!(
        stats.spilled_blocks > 0,
        "seed {seed}: the chaos workload must actually spill: {stats:?}"
    );
    sorted_rows(&h)
}

#[test]
fn budgeted_rows_match_unbounded_rows() {
    for seed in [0u64, 11, 31] {
        let (wf, h) = spill_join(seed);
        LiveExecutor::new(16)
            .with_pool_size(2)
            .run(&wf)
            .expect("unbounded run succeeds");
        let unbounded = sorted_rows(&h);
        assert_eq!(
            clean_spilling_rows(seed),
            unbounded,
            "seed {seed}: spilling must not change the join result"
        );
    }
}

/// The tentpole chaos sweep: 32 seeds × {panic, kill}, each fault
/// landing on the join while its build side is spilling (early tuple
/// offsets) or while probe streams spilled partitions back (late
/// offsets). Under the default retry budget every run must converge to
/// the exactly-once row multiset with every operator `Completed`.
#[test]
fn faults_mid_spill_recover_exactly_once_across_32_seeds() {
    for seed in 0..32u64 {
        let clean = clean_spilling_rows(seed);
        // Even seeds fault during build ingestion (mid-spill-write);
        // odd seeds fault after the build is sealed, while probe reads
        // spilled partitions back.
        let at = if seed % 2 == 0 {
            5 + seed % (BUILD_ROWS as u64 / 2)
        } else {
            BUILD_ROWS as u64 + 10 + seed % (PROBE_ROWS as u64 / 2)
        };
        for kind in ["panic", "kill"] {
            let plan = match kind {
                "panic" => FaultPlan::new(seed).panic_at("join", at),
                _ => FaultPlan::new(seed).kill_worker("join", at),
            };
            let (wf, h) = spill_join(seed);
            let (trace, result) = LiveExecutor::new(16)
                .with_pool_size(1 + (seed % 2) as usize)
                .with_memory_budget(Some(BUDGET))
                .with_faults(plan)
                .with_retry(RetryConfig::uniform(RetryPolicy::default()))
                .run_observed(&wf);
            result.unwrap_or_else(|e| panic!("seed {seed} {kind}@{at}: {e}"));
            assert_eq!(
                sorted_rows(&h),
                clean,
                "seed {seed} {kind}@{at}: replay over spilled partitions is exactly-once"
            );
            let st = final_states(&trace);
            assert!(
                st.iter().all(|(_, s)| *s == OperatorState::Completed),
                "seed {seed} {kind}@{at}: {st:?}"
            );
        }
    }
}

/// Without a retry budget a fault mid-spill fails the run — but it must
/// still drain: every operator terminal, the join pinned `Failed`, and
/// the same seed reproducing the same final states.
#[test]
fn unbudgeted_faults_mid_spill_drain_cleanly() {
    for seed in [2u64, 9, 21] {
        let mut prints = Vec::new();
        for _ in 0..2 {
            let (wf, _h) = spill_join(seed);
            let plan = FaultPlan::new(seed).panic_at("join", 20 + seed % 100);
            let (trace, result) = LiveExecutor::new(16)
                .with_pool_size(1)
                .with_memory_budget(Some(BUDGET))
                .with_faults(plan)
                .run_observed(&wf);
            let err = result.expect_err("no budget: the panic fails the run");
            let st = final_states(&trace);
            assert!(
                st.iter()
                    .any(|(n, s)| n == "join" && *s == OperatorState::Failed),
                "seed {seed}: {st:?}"
            );
            assert!(st.iter().all(|(_, s)| s.is_terminal()), "seed {seed}: {st:?}");
            prints.push(format!("{st:?} | {err}"));
        }
        assert_eq!(prints[0], prints[1], "seed {seed}: deterministic drain");
    }
}

/// Leg-specific behaviour under the CI `CHAOS_RETRIES` matrix: the
/// disabled leg pins that an explicit `disabled()` policy is identical
/// to no policy for a kill mid-spill; the armed leg proves zero rows
/// are lost once the same kill runs under a budget.
#[test]
fn spill_chaos_retries_env_matrix() {
    let armed = std::env::var("CHAOS_RETRIES").is_ok_and(|v| v == "1");
    let seed = 13u64;
    if !armed {
        let fp = |retry: Option<RetryConfig>| {
            let (wf, _h) = spill_join(seed);
            let mut exec = LiveExecutor::new(16)
                .with_pool_size(1)
                .with_memory_budget(Some(BUDGET))
                .with_faults(FaultPlan::new(seed).kill_worker("join", 30));
            if let Some(r) = retry {
                exec = exec.with_retry(r);
            }
            let (trace, result) = exec.run_observed(&wf);
            let err = result.expect_err("no budget: the kill fails").to_string();
            format!("{:?} | {err}", final_states(&trace))
        };
        assert_eq!(
            fp(Some(RetryConfig::uniform(RetryPolicy::disabled()))),
            fp(None),
            "disabled retries mid-spill are byte-identical to no policy"
        );
        return;
    }
    let clean = clean_spilling_rows(seed);
    let (wf, h) = spill_join(seed);
    let (_trace, result) = LiveExecutor::new(16)
        .with_pool_size(1)
        .with_memory_budget(Some(BUDGET))
        .with_faults(FaultPlan::new(seed).kill_worker("join", 30))
        .with_retry(RetryConfig::uniform(RetryPolicy::default()))
        .run_observed(&wf);
    result.unwrap_or_else(|e| panic!("armed leg: {e}"));
    assert_eq!(sorted_rows(&h), clean, "armed leg: zero lost rows");
}
