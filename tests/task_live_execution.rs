//! Drive a full task DAG on the **live** (real OS threads) executor and
//! check it produces the same MACCROBAT-EE output as the oracle and the
//! simulated run — the heaviest cross-executor workout in the suite
//! (two sources, a three-way split, a two-key hash join, a three-port
//! union, and a blocking broadcast-build link operator).

use scriptflow::core::Calibration;
use scriptflow::tasks::dice::{self, workflow::build_dice_workflow, DiceParams};
use scriptflow::tasks::gotta::{self, workflow::build_gotta_workflow, GottaParams};
use scriptflow::workflow::LiveExecutor;

fn live_rows(params: &DiceParams, cal: &Calibration) -> Vec<String> {
    let (wf, handle) = build_dice_workflow(params, cal).expect("valid DAG");
    LiveExecutor::new(64).run(&wf).expect("live run");
    let mut rows: Vec<String> = handle
        .results()
        .iter()
        .map(|t| {
            dice::row_fingerprint(
                t.get_int("doc_id").unwrap(),
                t.get("sent_idx").unwrap().as_int(),
                t.get_str("key").unwrap(),
                t.get_str("kind").unwrap(),
                t.get_str("ann_type").unwrap(),
                t.get("text").unwrap().as_str(),
                t.get("sentence").unwrap().as_str(),
            )
        })
        .collect();
    rows.sort_unstable();
    rows
}

#[test]
fn dice_workflow_runs_on_real_threads() {
    let cal = Calibration::paper();
    for (pairs, workers) in [(8, 1), (15, 3)] {
        let params = DiceParams::new(pairs, workers);
        let expected = dice::oracle(&params.dataset());
        assert_eq!(
            live_rows(&params, &cal),
            expected,
            "pairs={pairs} workers={workers}"
        );
    }
}

#[test]
fn gotta_workflow_runs_on_real_threads() {
    let cal = Calibration::paper();
    let params = GottaParams::new(6, 2);
    let (wf, handle) = build_gotta_workflow(&params, &cal).expect("valid DAG");
    LiveExecutor::new(8).run(&wf).expect("live run");
    let mut rows: Vec<String> = handle
        .results()
        .iter()
        .map(|t| t.get_str("row").unwrap().to_owned())
        .collect();
    rows.sort_unstable();
    let expected = gotta::script::run_script(&params, &cal).expect("script").output;
    assert_eq!(rows, expected);
    assert!(gotta::exact_match_of(&rows) > 0.5);
}

#[test]
fn dice_live_is_repeatable() {
    let cal = Calibration::paper();
    let params = DiceParams::new(10, 4);
    let a = live_rows(&params, &cal);
    let b = live_rows(&params, &cal);
    assert_eq!(a, b, "thread scheduling must not change the data");
    assert_eq!(a.len(), params.dataset().annotation_count());
}
